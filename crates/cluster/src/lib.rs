//! `pmck-cluster` — a replication-aware multi-node tier over the
//! chipkill memory service.
//!
//! The paper's chipkill-correct design stops at a single rank: a failed
//! chip is healed by local RS erasure decoding, and an error pattern
//! beyond the combined VLEW+RS capability is an uncorrectable crash.
//! Once the same data lives on several nodes, both verdicts soften —
//! a local decode fallback can be *re-encoded from a healthy replica*
//! (read-repair), and an uncorrectable block is only lost when every
//! replica fails. [`Cluster`] models that layer: K virtual nodes, each
//! an independent protection stack (typically a
//! [`pmck_service::ShardedService`]), with replicated block placement,
//! quorum reads/writes, read-repair, and scrub-driven anti-entropy
//! sweeps.
//!
//! # Placement
//!
//! Logical address `a` (of `N` logical blocks) keeps `R` replicas.
//! Replica `r` lives on node `(a + r) % K` at local address
//! `r * span + a / K`, where `span = ceil(N / K)`. Consecutive logical
//! blocks therefore spread across nodes (load), and the `R` replicas of
//! one block always land on `R` distinct nodes (fault isolation).
//!
//! # Quorum and read-repair
//!
//! A write goes to every replica in placement order; replicas on down
//! or suspended nodes (or whose write errored) are marked **stale** in
//! a per-node dirty bitmap. The write succeeds iff at least
//! [`ClusterConfig::write_quorum`] replicas acknowledged.
//!
//! A read walks replicas in placement order, skipping down nodes and
//! stale replicas, and serves the first successful decode — stopping
//! early once [`ClusterConfig::read_quorum`] replicas decoded and one
//! of them was *healthy* ([`ReadPath::Clean`], [`ReadPath::RsCorrected`]
//! or [`ReadPath::BitCorrected`]). A replica that decoded through the
//! degraded paths ([`ReadPath::VlewFallback`],
//! [`ReadPath::VlewListDecoded`], [`ReadPath::ChipkillErasure`]) or
//! returned an error, and every stale replica the walk stepped over, is
//! **read-repaired**: the served data is written back, re-encoding both
//! ECC tiers from a good copy. Replicas the walk never reached are left
//! to the anti-entropy sweep. When no replica decodes, the read fails
//! with [`pmck_core::ClusterFailure::ReplicasExhausted`] carrying the
//! last per-node error as its `source()`.
//!
//! # Determinism
//!
//! The cluster introduces no randomness and no timing dependence: nodes
//! and replicas are always visited in index/placement order, each node
//! is driven through the synchronous [`Submitter::submit`] edge of the
//! unified submission surface, and broadcast responses merge in node
//! index order with [`pmck_core::merge_broadcast`] — the same
//! order-sensitive fold the sharded service uses. Under identical node
//! seeds and identical request/fault streams, cluster contents are
//! therefore bit-identical to a single-node sequential replay, which
//! the harness differential campaign pins.
//!
//! # Examples
//!
//! ```
//! use pmck_cluster::{Cluster, ClusterConfig};
//!
//! let mut cluster = Cluster::local(3, 48, 7, ClusterConfig::default());
//! cluster.write_block(5, &[0xAB; 64]).unwrap();
//! let out = cluster.read_block(5).unwrap();
//! assert_eq!(out.data, [0xAB; 64]);
//!
//! // Survives a node loss: the remaining replica serves the block.
//! cluster.kill_node(0);
//! for a in 0..48 {
//!     let _ = cluster.read_block(a);
//! }
//! ```

use pmck_core::{
    merge_broadcast, ChipkillConfig, ClusterError, ClusterFailure, CoreError, EagerTickets,
    ReadOutcome, ReadPath, Request, Response, Stack, StackBuilder, SubmitTicket, Submitter,
};
use pmck_rt::metrics::MetricsRegistry;
use pmck_rt::rng::stream_seed;
use pmck_service::ShardedService;

/// Replication parameters for a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Replicas kept per logical block (`1..=nodes`).
    pub replicas: usize,
    /// Replicas that must acknowledge a write (`1..=replicas`).
    pub write_quorum: usize,
    /// Replicas that must decode for a read to succeed
    /// (`1..=replicas`). With the default of 1 a read stops at the
    /// first healthy replica — the allocation-free fast path.
    pub read_quorum: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 2,
            write_quorum: 1,
            read_quorum: 1,
        }
    }
}

/// Administrative state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Serving reads and writes.
    Up,
    /// Temporarily unresponsive (the slow-replica scenario): skipped
    /// like a down node, but expected back. Writes it misses are
    /// tracked stale and healed on [`Cluster::resume_node`] + sweep.
    Suspended,
    /// Lost. Its content is assumed gone until
    /// [`Cluster::revive_node`] / [`Cluster::rebuild_node`].
    Down,
}

/// One virtual node: a transport plus its replica-staleness bitmap.
struct NodeState<S> {
    inner: S,
    status: NodeStatus,
    /// One bit per local block; set = this replica missed a write (or
    /// failed one) and must not serve reads until re-written.
    dirty: Vec<u64>,
    dirty_count: u64,
}

impl<S> NodeState<S> {
    fn new(inner: S, local_blocks: u64) -> Self {
        NodeState {
            inner,
            status: NodeStatus::Up,
            dirty: vec![0u64; local_blocks.div_ceil(64) as usize],
            dirty_count: 0,
        }
    }

    fn is_dirty(&self, local: u64) -> bool {
        self.dirty[(local / 64) as usize] >> (local % 64) & 1 == 1
    }

    fn set_dirty(&mut self, local: u64) {
        let word = &mut self.dirty[(local / 64) as usize];
        let mask = 1u64 << (local % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.dirty_count += 1;
        }
    }

    fn clear_dirty(&mut self, local: u64) {
        let word = &mut self.dirty[(local / 64) as usize];
        let mask = 1u64 << (local % 64);
        if *word & mask != 0 {
            *word &= !mask;
            self.dirty_count -= 1;
        }
    }
}

/// Counters the cluster tier accumulates (its own traffic only; each
/// node's stacks keep their own [`pmck_core::CoreStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Successful quorum reads.
    pub reads: u64,
    /// Successful quorum writes.
    pub writes: u64,
    /// Replica decodes that went through a degraded path (VLEW
    /// fallback, list decode, or chipkill erasure).
    pub degraded_reads: u64,
    /// Replicas re-written from a healthy copy during reads.
    pub read_repairs: u64,
    /// Writes that failed their quorum.
    pub quorum_failures: u64,
    /// Stale replicas healed by [`Cluster::rebuild_node`].
    pub rebuilt_blocks: u64,
    /// Anti-entropy sweeps completed.
    pub sweeps: u64,
    /// Per-replica scrubs issued by sweeps.
    pub scrubbed: u64,
}

/// A successful cluster read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterRead {
    /// The 64 B block contents.
    pub data: [u8; 64],
    /// Decode path on the serving replica.
    pub path: ReadPath,
    /// Which replica (placement index, not node index) served.
    pub replica: usize,
    /// Replicas repaired (re-written) as a side effect of this read.
    pub repaired: u32,
}

/// Report of one [`Cluster::anti_entropy_sweep`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Logical blocks visited.
    pub blocks: u64,
    /// Replicas re-written (stale heals plus degraded repairs).
    pub repaired: u64,
    /// Per-replica scrubs issued.
    pub scrubbed: u64,
    /// Logical blocks that could not be served by any replica.
    pub unreadable: u64,
}

/// Replicas are tracked in a fixed-width bitmask on the read path so
/// the clean path stays allocation-free.
const MAX_REPLICAS: usize = 32;

/// K virtual nodes with replicated placement, quorum reads/writes,
/// read-repair, and anti-entropy. Generic over the node transport —
/// any [`Submitter`] works, which is the point of the unified
/// submission surface: the same tier drives in-process [`Stack`]s
/// (tests, benches) and multi-threaded [`ShardedService`]s (soak,
/// production shape) without a line of transport-specific code.
pub struct Cluster<S> {
    nodes: Vec<NodeState<S>>,
    blocks: u64,
    span: u64,
    replicas: usize,
    write_quorum: usize,
    read_quorum: usize,
    stats: ClusterStats,
    /// Ticket bookkeeping for the eager [`Submitter`] surface.
    tickets: EagerTickets,
}

impl<S: Submitter> Cluster<S> {
    /// Wraps pre-built node transports. `blocks` is the *logical*
    /// capacity; every node must hold at least
    /// `cfg.replicas * ceil(blocks / nodes)` local blocks.
    ///
    /// # Panics
    ///
    /// Panics on an empty node set, a zero capacity, quorum/replica
    /// parameters out of range, or an undersized node.
    pub fn from_nodes(nodes: Vec<S>, blocks: u64, cfg: ClusterConfig) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        assert!(blocks > 0, "capacity must be nonzero");
        assert!(
            (1..=nodes.len()).contains(&cfg.replicas),
            "replicas must be in 1..=nodes"
        );
        assert!(
            cfg.replicas <= MAX_REPLICAS,
            "at most {MAX_REPLICAS} replicas"
        );
        assert!(
            (1..=cfg.replicas).contains(&cfg.write_quorum),
            "write quorum must be in 1..=replicas"
        );
        assert!(
            (1..=cfg.replicas).contains(&cfg.read_quorum),
            "read quorum must be in 1..=replicas"
        );
        let span = blocks.div_ceil(nodes.len() as u64);
        let local_blocks = cfg.replicas as u64 * span;
        let nodes: Vec<NodeState<S>> = nodes
            .into_iter()
            .enumerate()
            .map(|(n, inner)| {
                assert!(
                    inner.num_blocks() >= local_blocks,
                    "node {n} holds {} blocks, needs {local_blocks}",
                    inner.num_blocks()
                );
                NodeState::new(inner, local_blocks)
            })
            .collect();
        Cluster {
            nodes,
            blocks,
            span,
            replicas: cfg.replicas,
            write_quorum: cfg.write_quorum,
            read_quorum: cfg.read_quorum,
            stats: ClusterStats::default(),
            tickets: EagerTickets::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Logical capacity in blocks.
    pub fn num_blocks(&self) -> u64 {
        self.blocks
    }

    /// Replicas kept per logical block.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The `(node, local address)` placement of replica `r` of logical
    /// block `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= replicas` or `addr` is out of range.
    pub fn place(&self, addr: u64, r: usize) -> (usize, u64) {
        assert!(r < self.replicas && addr < self.blocks);
        let k = self.nodes.len() as u64;
        let node = ((addr + r as u64) % k) as usize;
        (node, r as u64 * self.span + addr / k)
    }

    /// The logical address whose replica `r` lives at `local` on node
    /// `n`, or `None` for padding slots past the logical capacity.
    fn unplace(&self, n: usize, r: usize, j: u64) -> Option<u64> {
        let k = self.nodes.len() as u64;
        let addr = j * k + ((n as u64 + k - r as u64) % k);
        (addr < self.blocks).then_some(addr)
    }

    /// One node's administrative status.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node_status(&self, n: usize) -> NodeStatus {
        self.nodes[n].status
    }

    /// Stale replicas currently tracked on node `n`.
    pub fn node_stale_blocks(&self, n: usize) -> u64 {
        self.nodes[n].dirty_count
    }

    /// Direct access to one node's transport — the maintenance and
    /// fault-injection hatch (e.g. submitting a [`Request::Fault`] to a
    /// *single* node, where the cluster-level broadcast would disturb
    /// every node). Mutations made here bypass the staleness tracking.
    pub fn node_mut(&mut self, n: usize) -> &mut S {
        &mut self.nodes[n].inner
    }

    /// Marks replica `r` of `addr` stale, as a missed write would — the
    /// deterministic hook behind the read-repair bench and tests.
    pub fn mark_replica_stale(&mut self, addr: u64, r: usize) {
        let (n, local) = self.place(addr, r);
        self.nodes[n].set_dirty(local);
    }

    /// Takes node `n` down. Its content freezes; writes it misses are
    /// tracked stale, so a later [`Cluster::revive_node`] serves only
    /// what is still current.
    pub fn kill_node(&mut self, n: usize) {
        self.nodes[n].status = NodeStatus::Down;
    }

    /// Brings node `n` back with whatever content it held. Replicas
    /// that missed writes while it was away are still marked stale and
    /// heal through reads, [`Cluster::rebuild_node`], or a sweep.
    pub fn revive_node(&mut self, n: usize) {
        self.nodes[n].status = NodeStatus::Up;
    }

    /// Marks node `n` temporarily unresponsive (the slow-replica
    /// scenario). Identical skip semantics to a down node.
    pub fn suspend_node(&mut self, n: usize) {
        self.nodes[n].status = NodeStatus::Suspended;
    }

    /// Ends a suspension.
    pub fn resume_node(&mut self, n: usize) {
        self.nodes[n].status = NodeStatus::Up;
    }

    /// Heals every stale replica on node `n` by reading each affected
    /// logical block — the walk's read-repair re-writes the stale copy
    /// from a healthy peer. Returns replicas healed.
    ///
    /// # Errors
    ///
    /// The first block whose peers cannot serve it
    /// ([`ClusterFailure::ReplicasExhausted`]).
    pub fn rebuild_node(&mut self, n: usize) -> Result<u64, CoreError> {
        let before = self.nodes[n].dirty_count;
        for r in 0..self.replicas {
            for j in 0..self.span {
                let local = r as u64 * self.span + j;
                if !self.nodes[n].is_dirty(local) {
                    continue;
                }
                let Some(addr) = self.unplace(n, r, j) else {
                    continue;
                };
                self.read_block_thorough(addr)?;
            }
        }
        let healed = before - self.nodes[n].dirty_count;
        self.stats.rebuilt_blocks += healed;
        Ok(healed)
    }

    /// Quorum write: every replica in placement order, stale-marking
    /// the ones that miss (down, suspended, or erroring). Returns the
    /// acknowledgement count (`>= write_quorum`).
    ///
    /// # Errors
    ///
    /// [`ClusterFailure::QuorumLost`] (carrying the last per-node error
    /// as `source()`, when one exists) if fewer than
    /// [`ClusterConfig::write_quorum`] replicas acknowledged;
    /// [`CoreError::OutOfRange`] past the logical capacity.
    pub fn write_block(&mut self, addr: u64, data: &[u8; 64]) -> Result<usize, CoreError> {
        self.write_like(&Request::Write { addr, data: *data })
    }

    /// Quorum read with read-repair; see the module docs for the walk.
    ///
    /// # Errors
    ///
    /// [`ClusterFailure::ReplicasExhausted`] when no replica decodes,
    /// [`ClusterFailure::QuorumLost`] when fewer than
    /// [`ClusterConfig::read_quorum`] replicas decoded,
    /// [`CoreError::OutOfRange`] past the logical capacity.
    pub fn read_block(&mut self, addr: u64) -> Result<ClusterRead, CoreError> {
        self.read_walk(addr, false)
    }

    /// [`Cluster::read_block`] without the quorum early exit: every
    /// replica is visited and every stale, degraded, or erroring one
    /// repaired — the walk [`Cluster::rebuild_node`] and
    /// [`Cluster::anti_entropy_sweep`] run, where healing outranks
    /// latency. Same result and errors as the fast walk.
    pub fn read_block_thorough(&mut self, addr: u64) -> Result<ClusterRead, CoreError> {
        self.read_walk(addr, true)
    }

    fn read_walk(&mut self, addr: u64, thorough: bool) -> Result<ClusterRead, CoreError> {
        if addr >= self.blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        let mut healthy: Option<(usize, ReadOutcome)> = None;
        let mut degraded: Option<(usize, ReadOutcome)> = None;
        let mut decoded = 0usize;
        let mut repair_mask = 0u32;
        let mut last_err: Option<CoreError> = None;
        for r in 0..self.replicas {
            let (n, local) = self.place(addr, r);
            let node = &mut self.nodes[n];
            if node.status != NodeStatus::Up {
                continue;
            }
            if node.is_dirty(local) {
                // Stale: never served, healed below once good data is
                // in hand.
                repair_mask |= 1 << r;
                continue;
            }
            match node.inner.submit(&Request::Read(local)) {
                Ok(resp) => {
                    let out = resp.read().expect("read request yields a read response");
                    decoded += 1;
                    match out.path {
                        ReadPath::Clean
                        | ReadPath::RsCorrected { .. }
                        | ReadPath::BitCorrected { .. } => {
                            if healthy.is_none() {
                                healthy = Some((r, out));
                            }
                        }
                        ReadPath::VlewFallback { .. }
                        | ReadPath::VlewListDecoded { .. }
                        | ReadPath::ChipkillErasure { .. } => {
                            self.stats.degraded_reads += 1;
                            repair_mask |= 1 << r;
                            if degraded.is_none() {
                                degraded = Some((r, out));
                            }
                        }
                    }
                }
                Err(e) => {
                    // An uncorrectable (or transport-failed) replica is
                    // re-written from a good copy, like a degraded one.
                    repair_mask |= 1 << r;
                    last_err = Some(e);
                }
            }
            if !thorough && healthy.is_some() && decoded >= self.read_quorum {
                break;
            }
        }
        let (replica, out) = match healthy.or(degraded) {
            Some(served) => served,
            None => {
                let kind = ClusterFailure::ReplicasExhausted;
                return Err(CoreError::Cluster(match last_err {
                    Some(e) => ClusterError::with_source(kind, e),
                    None => ClusterError::new(kind),
                }));
            }
        };
        if decoded < self.read_quorum {
            return Err(CoreError::cluster(ClusterFailure::QuorumLost {
                needed: self.read_quorum,
                got: decoded,
            }));
        }
        // Read-repair: re-write every replica the walk found wanting,
        // re-encoding both ECC tiers from the served (good) data.
        let mut repaired = 0u32;
        if repair_mask != 0 {
            for r in 0..self.replicas {
                if repair_mask >> r & 1 == 0 {
                    continue;
                }
                let (n, local) = self.place(addr, r);
                let node = &mut self.nodes[n];
                if node.status != NodeStatus::Up {
                    continue;
                }
                let req = Request::Write {
                    addr: local,
                    data: out.data,
                };
                match node.inner.submit(&req) {
                    Ok(_) => {
                        node.clear_dirty(local);
                        repaired += 1;
                    }
                    Err(_) => node.set_dirty(local),
                }
            }
            self.stats.read_repairs += u64::from(repaired);
        }
        self.stats.reads += 1;
        Ok(ClusterRead {
            data: out.data,
            path: out.path,
            replica,
            repaired,
        })
    }

    /// Scrubs every current (up, non-stale) replica of `addr` in place.
    ///
    /// # Errors
    ///
    /// [`ClusterFailure::ReplicasExhausted`] when no replica could be
    /// scrubbed; [`CoreError::OutOfRange`] past the logical capacity.
    pub fn scrub_block(&mut self, addr: u64) -> Result<Response, CoreError> {
        if addr >= self.blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        let mut ok = 0usize;
        let mut last_err: Option<CoreError> = None;
        for r in 0..self.replicas {
            let (n, local) = self.place(addr, r);
            let node = &mut self.nodes[n];
            if node.status != NodeStatus::Up || node.is_dirty(local) {
                continue;
            }
            match node.inner.submit(&Request::Scrub(local)) {
                Ok(_) => {
                    ok += 1;
                    self.stats.scrubbed += 1;
                }
                Err(e) => {
                    // A replica too corrupt to scrub is stale until a
                    // read or sweep re-writes it.
                    node.set_dirty(local);
                    last_err = Some(e);
                }
            }
        }
        if ok == 0 {
            let kind = ClusterFailure::ReplicasExhausted;
            return Err(CoreError::Cluster(match last_err {
                Some(e) => ClusterError::with_source(kind, e),
                None => ClusterError::new(kind),
            }));
        }
        Ok(Response::Scrubbed)
    }

    /// One anti-entropy pass over the whole logical address space: each
    /// block is read (healing stale and degraded replicas through
    /// read-repair) and each surviving replica scrubbed in place (the
    /// scrub-driven half: latent errors are corrected before they
    /// accumulate past the local ECC budget). Blocks no replica can
    /// serve are counted, not fatal — anti-entropy is a patrol, and one
    /// lost block must not stop the sweep from healing the rest.
    pub fn anti_entropy_sweep(&mut self) -> SweepReport {
        let mut report = SweepReport::default();
        let repairs_before = self.stats.read_repairs;
        let scrubbed_before = self.stats.scrubbed;
        for addr in 0..self.blocks {
            report.blocks += 1;
            if self.read_block_thorough(addr).is_err() {
                report.unreadable += 1;
                continue;
            }
            let _ = self.scrub_block(addr);
        }
        report.repaired = self.stats.read_repairs - repairs_before;
        report.scrubbed = self.stats.scrubbed - scrubbed_before;
        self.stats.sweeps += 1;
        report
    }

    /// Submits a whole-device request to every up node, merging the
    /// per-node responses in node index order
    /// ([`pmck_core::merge_broadcast`]).
    ///
    /// # Errors
    ///
    /// The merged error (first failing node in index order wins), or
    /// [`ClusterFailure::ReplicasExhausted`] when no node is up.
    pub fn broadcast(&mut self, req: &Request) -> Result<Response, CoreError> {
        debug_assert!(
            req.addr().is_none(),
            "broadcast takes whole-device requests"
        );
        let mut acc: Option<Result<Response, CoreError>> = None;
        for node in self.nodes.iter_mut() {
            if node.status != NodeStatus::Up {
                continue;
            }
            let res = node.inner.submit(req);
            match acc.as_mut() {
                None => acc = Some(res),
                Some(a) => merge_broadcast(a, res),
            }
        }
        acc.unwrap_or_else(|| Err(CoreError::cluster(ClusterFailure::ReplicasExhausted)))
    }

    /// Whether every up node's stored code bits are consistent with its
    /// stored data (the post-recovery decodability check).
    ///
    /// # Errors
    ///
    /// As [`Cluster::broadcast`].
    pub fn verify_all(&mut self) -> Result<bool, CoreError> {
        Ok(self
            .broadcast(&Request::Verify)?
            .verified()
            .expect("verify request yields a verdict"))
    }

    /// The cluster tier's own counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Publishes the cluster counters under `<prefix>.*` plus the
    /// topology gauges (`nodes`, `replicas`, per-node `staleN`).
    pub fn publish_metrics(&self, reg: &MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.reads"), self.stats.reads);
        reg.set_counter(&format!("{prefix}.writes"), self.stats.writes);
        reg.set_counter(
            &format!("{prefix}.degraded_reads"),
            self.stats.degraded_reads,
        );
        reg.set_counter(&format!("{prefix}.read_repairs"), self.stats.read_repairs);
        reg.set_counter(
            &format!("{prefix}.quorum_failures"),
            self.stats.quorum_failures,
        );
        reg.set_counter(
            &format!("{prefix}.rebuilt_blocks"),
            self.stats.rebuilt_blocks,
        );
        reg.set_counter(&format!("{prefix}.sweeps"), self.stats.sweeps);
        reg.set_counter(&format!("{prefix}.scrubbed"), self.stats.scrubbed);
        reg.set_gauge(&format!("{prefix}.nodes"), self.nodes.len() as f64);
        reg.set_gauge(&format!("{prefix}.replicas"), self.replicas as f64);
        for (n, node) in self.nodes.iter().enumerate() {
            reg.set_gauge(&format!("{prefix}.stale{n}"), node.dirty_count as f64);
        }
    }

    /// Shared body of the conventional and bitwise-sum write paths.
    /// A [`Request::WriteSum`] additionally skips stale replicas — the
    /// delta assumes the old content, which a stale replica lost.
    fn write_like(&mut self, req: &Request) -> Result<usize, CoreError> {
        let addr = req.addr().expect("write request carries an address");
        if addr >= self.blocks {
            return Err(CoreError::OutOfRange(addr));
        }
        let sum = matches!(req, Request::WriteSum { .. });
        let mut acks = 0usize;
        let mut last_err: Option<CoreError> = None;
        for r in 0..self.replicas {
            let (n, local) = self.place(addr, r);
            let node = &mut self.nodes[n];
            if node.status != NodeStatus::Up || (sum && node.is_dirty(local)) {
                node.set_dirty(local);
                continue;
            }
            match node.inner.submit(&req.with_addr(local)) {
                Ok(_) => {
                    node.clear_dirty(local);
                    acks += 1;
                }
                Err(e) => {
                    node.set_dirty(local);
                    last_err = Some(e);
                }
            }
        }
        if acks < self.write_quorum {
            self.stats.quorum_failures += 1;
            let kind = ClusterFailure::QuorumLost {
                needed: self.write_quorum,
                got: acks,
            };
            return Err(CoreError::Cluster(match last_err {
                Some(e) => ClusterError::with_source(kind, e),
                None => ClusterError::new(kind),
            }));
        }
        self.stats.writes += 1;
        Ok(acks)
    }
}

/// The unified submission surface over the whole cluster: addressed
/// requests run the quorum read/write/scrub protocols, whole-device
/// requests broadcast to every up node. Eager — tickets are
/// immediately redeemable and backpressure never occurs. A `Cluster`
/// is thereby itself a node transport: tiers compose.
impl<S: Submitter> Submitter for Cluster<S> {
    fn num_blocks(&self) -> u64 {
        self.blocks
    }

    fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        match req {
            Request::Read(a) => self.read_block(*a).map(|out| {
                Response::Read(ReadOutcome {
                    data: out.data,
                    path: out.path,
                })
            }),
            Request::Write { .. } | Request::WriteSum { .. } => {
                self.write_like(req).map(|_| Response::Written)
            }
            Request::Scrub(a) => self.scrub_block(*a),
            _ => self.broadcast(req),
        }
    }

    fn try_submit(&mut self, req: &Request) -> Result<SubmitTicket, CoreError> {
        let res = Submitter::submit(self, req);
        Ok(self.tickets.issue(res))
    }

    fn poll(&mut self, ticket: SubmitTicket) -> Option<Result<Response, CoreError>> {
        self.tickets.claim(ticket)
    }
}

impl Cluster<Stack> {
    /// A thread-free cluster of in-process proposal [`Stack`]s — the
    /// deterministic workhorse for tests and benches. Node `n` is
    /// seeded with stream `n` of `seed` ([`stream_seed`]).
    pub fn local(nodes: usize, blocks: u64, seed: u64, cfg: ClusterConfig) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        let span = blocks.div_ceil(nodes as u64);
        let local_blocks = cfg.replicas as u64 * span;
        let stacks: Vec<Stack> = (0..nodes)
            .map(|n| {
                StackBuilder::proposal(local_blocks, ChipkillConfig::default())
                    .seed(stream_seed(seed, n as u64))
                    .build()
            })
            .collect();
        Cluster::from_nodes(stacks, blocks, cfg)
    }
}

impl Cluster<ShardedService> {
    /// A cluster of multi-threaded sharded services — the production
    /// shape. Node `n` gets its own [`ShardedService`] over `shards`
    /// proposal stacks, seeded with stream `n` of `seed`; each service
    /// derives its per-shard seeds from that stream in turn, so the
    /// whole topology is reproducible from one seed.
    pub fn sharded(
        nodes: usize,
        shards: usize,
        blocks: u64,
        seed: u64,
        cfg: ClusterConfig,
    ) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        let span = blocks.div_ceil(nodes as u64);
        let per_shard = (cfg.replicas as u64 * span).div_ceil(shards as u64);
        let services: Vec<ShardedService> = (0..nodes)
            .map(|n| {
                ShardedService::new(shards, stream_seed(seed, n as u64), move |_, s| {
                    StackBuilder::proposal(per_shard, ChipkillConfig::default())
                        .seed(s)
                        .build()
                })
            })
            .collect();
        Cluster::from_nodes(services, blocks, cfg)
    }

    /// Shuts down every node's shard workers (the services drain and
    /// join; see [`ShardedService::shutdown`]).
    pub fn shutdown_nodes(&mut self) {
        for node in self.nodes.iter_mut() {
            node.inner.shutdown();
        }
    }
}

impl<S> std::fmt::Debug for Cluster<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("blocks", &self.blocks)
            .field("replicas", &self.replicas)
            .field("write_quorum", &self.write_quorum)
            .field("read_quorum", &self.read_quorum)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_nvram::{ChipFailureKind, FaultEvent, FaultKind};
    use std::error::Error as _;

    fn pattern(addr: u64, salt: u8) -> [u8; 64] {
        let mut b = [0u8; 64];
        for (i, x) in b.iter_mut().enumerate() {
            *x = (addr as u8).wrapping_mul(31) ^ (i as u8) ^ salt;
        }
        b
    }

    fn fill(cluster: &mut Cluster<Stack>, salt: u8) -> Vec<[u8; 64]> {
        (0..cluster.num_blocks())
            .map(|a| {
                let b = pattern(a, salt);
                cluster.write_block(a, &b).unwrap();
                b
            })
            .collect()
    }

    #[test]
    fn replicated_round_trip_hits_first_replica_clean() {
        let cfg = ClusterConfig {
            replicas: 2,
            write_quorum: 2,
            read_quorum: 1,
        };
        let mut cluster = Cluster::local(3, 48, 5, cfg);
        let truth = fill(&mut cluster, 0);
        for (a, want) in truth.iter().enumerate() {
            let out = cluster.read_block(a as u64).unwrap();
            assert_eq!(&out.data, want, "block {a}");
            assert_eq!(out.path, ReadPath::Clean);
            assert_eq!(out.replica, 0);
            assert_eq!(out.repaired, 0);
        }
        // Replicas of one block live on distinct nodes.
        for a in 0..48 {
            let (n0, _) = cluster.place(a, 0);
            let (n1, _) = cluster.place(a, 1);
            assert_ne!(n0, n1, "block {a}");
        }
        assert_eq!(cluster.stats().reads, 48);
        assert_eq!(cluster.stats().writes, 48);
        assert!(cluster.verify_all().unwrap());
    }

    #[test]
    fn node_loss_tracks_staleness_and_rebuild_heals_every_replica() {
        let cfg = ClusterConfig {
            replicas: 2,
            write_quorum: 1,
            read_quorum: 1,
        };
        let mut cluster = Cluster::local(3, 48, 6, cfg);
        let mut truth = fill(&mut cluster, 0);
        cluster.kill_node(1);
        // Writes keep succeeding on the surviving replica; the dead
        // node's copies go stale.
        for a in 0..48u64 {
            let b = pattern(a, 0xE1);
            cluster.write_block(a, &b).unwrap();
            truth[a as usize] = b;
        }
        assert!(cluster.node_stale_blocks(1) > 0);
        // Reads survive the loss and never serve the dead node.
        for (a, want) in truth.iter().enumerate() {
            assert_eq!(&cluster.read_block(a as u64).unwrap().data, want);
        }
        cluster.revive_node(1);
        let healed = cluster.rebuild_node(1).unwrap();
        assert!(healed > 0);
        assert_eq!(cluster.node_stale_blocks(1), 0);
        // Post-repair decodability: every replica on every node serves
        // its block directly, and code bits check out everywhere.
        for a in 0..48u64 {
            for r in 0..2 {
                let (n, local) = cluster.place(a, r);
                let out = cluster
                    .node_mut(n)
                    .submit(&Request::Read(local))
                    .unwrap()
                    .read()
                    .unwrap();
                assert_eq!(out.data, truth[a as usize], "block {a} replica {r}");
            }
        }
        assert!(cluster.verify_all().unwrap());
    }

    #[test]
    fn write_quorum_loss_is_an_error_with_stable_display() {
        let cfg = ClusterConfig {
            replicas: 2,
            write_quorum: 2,
            read_quorum: 1,
        };
        let mut cluster = Cluster::local(2, 16, 7, cfg);
        fill(&mut cluster, 0);
        cluster.kill_node(0);
        let err = cluster.write_block(3, &[1; 64]).unwrap_err();
        assert_eq!(
            err,
            CoreError::cluster(ClusterFailure::QuorumLost { needed: 2, got: 1 })
        );
        assert_eq!(
            err.to_string(),
            "cluster request failed: quorum not reached (1 of 2 replicas)"
        );
        assert_eq!(cluster.stats().quorum_failures, 1);
    }

    #[test]
    fn stale_replica_is_skipped_then_healed_on_read() {
        let cfg = ClusterConfig {
            replicas: 2,
            write_quorum: 1,
            read_quorum: 1,
        };
        let mut cluster = Cluster::local(3, 48, 8, cfg);
        fill(&mut cluster, 0);
        // Node holding replica 0 of block 0 goes down; the block moves on.
        let (n0, _) = cluster.place(0, 0);
        cluster.kill_node(n0);
        let fresh = pattern(0, 0x5C);
        cluster.write_block(0, &fresh).unwrap();
        cluster.revive_node(n0);
        // The revived node holds stale data: the read must skip it,
        // serve the fresh copy from replica 1, and heal replica 0.
        let out = cluster.read_block(0).unwrap();
        assert_eq!(out.data, fresh);
        assert_eq!(out.replica, 1);
        assert_eq!(out.repaired, 1);
        assert_eq!(cluster.stats().read_repairs, 1);
        // Healed: the next read is served by replica 0 again.
        let again = cluster.read_block(0).unwrap();
        assert_eq!(again.replica, 0);
        assert_eq!(again.data, fresh);
    }

    #[test]
    fn chip_failure_degrades_then_remote_and_local_repair_race_converges() {
        let cfg = ClusterConfig {
            replicas: 2,
            write_quorum: 2,
            read_quorum: 1,
        };
        let mut cluster = Cluster::local(3, 48, 9, cfg);
        let truth = fill(&mut cluster, 0);
        // A whole chip dies on node 0 only (per-node injection hatch).
        cluster
            .node_mut(0)
            .submit(&Request::Fault(FaultEvent {
                at_cycle: 0,
                kind: FaultKind::ChipKill {
                    chip: 4,
                    kind: ChipFailureKind::RandomGarbage,
                },
            }))
            .unwrap();
        // Remote repair loses the first leg of the race: blocks whose
        // first replica sits on node 0 decode through the erasure path
        // there, the healthy peer serves, and the attempted write-back
        // bounces — a rank with a known-failed chip is read-only
        // (writes report [`CoreError::Uncorrectable`]) — so the replica
        // is marked stale instead. Data stays correct throughout.
        for (a, want) in truth.iter().enumerate() {
            let out = cluster.read_block(a as u64).unwrap();
            assert_eq!(&out.data, want, "block {a}");
            assert_eq!(out.repaired, 0, "write-back cannot land on a dead chip");
        }
        assert!(
            cluster.stats().degraded_reads > 0,
            "chip failure never surfaced"
        );
        assert!(
            cluster.node_stale_blocks(0) > 0,
            "bounced write-backs go stale"
        );
        // Local repair wins: rebuild the chip through RS erasure inside
        // node 0, then the sweep lands the deferred remote heals.
        let repaired = cluster.node_mut(0).submit(&Request::Repair).unwrap();
        assert_eq!(repaired, Response::Repaired { chip: Some(4) });
        let report = cluster.anti_entropy_sweep();
        assert!(report.repaired > 0);
        assert_eq!(report.unreadable, 0);
        assert_eq!(cluster.node_stale_blocks(0), 0);
        for (a, want) in truth.iter().enumerate() {
            let out = cluster.read_block(a as u64).unwrap();
            assert_eq!(&out.data, want);
            assert_eq!(out.path, ReadPath::Clean, "block {a} after repair");
        }
        assert!(cluster.verify_all().unwrap());
    }

    #[test]
    fn suspension_behaves_like_loss_and_sweep_heals_on_resume() {
        let cfg = ClusterConfig {
            replicas: 3,
            write_quorum: 2,
            read_quorum: 1,
        };
        let mut cluster = Cluster::local(3, 24, 10, cfg);
        let mut truth = fill(&mut cluster, 0);
        cluster.suspend_node(2);
        for a in 0..24u64 {
            let b = pattern(a, 0x77);
            cluster.write_block(a, &b).unwrap();
            truth[a as usize] = b;
        }
        assert!(cluster.node_stale_blocks(2) > 0);
        cluster.resume_node(2);
        let report = cluster.anti_entropy_sweep();
        assert_eq!(report.blocks, 24);
        assert!(report.repaired > 0);
        assert_eq!(report.unreadable, 0);
        assert_eq!(cluster.node_stale_blocks(2), 0);
        for (a, want) in truth.iter().enumerate() {
            assert_eq!(&cluster.read_block(a as u64).unwrap().data, want);
        }
        assert!(cluster.verify_all().unwrap());
    }

    #[test]
    fn cluster_is_itself_a_submitter() {
        let mut cluster = Cluster::local(3, 48, 11, ClusterConfig::default());
        let req = Request::Write {
            addr: 7,
            data: [0xCD; 64],
        };
        let t = cluster.try_submit(&req).unwrap();
        assert_eq!(cluster.poll(t), Some(Ok(Response::Written)));
        let out = Submitter::submit(&mut cluster, &Request::Read(7))
            .unwrap()
            .read()
            .unwrap();
        assert_eq!(out.data, [0xCD; 64]);
        let verified = Submitter::submit(&mut cluster, &Request::Verify).unwrap();
        assert_eq!(verified.verified(), Some(true));
        assert_eq!(Submitter::num_blocks(&cluster), 48);
        assert_eq!(
            Submitter::submit(&mut cluster, &Request::Read(99)),
            Err(CoreError::OutOfRange(99))
        );
    }

    #[test]
    fn error_chain_reaches_the_transport_layer() {
        // One node, one replica, over a real sharded service: shut the
        // service down underneath the cluster, then watch the failure
        // climb the whole ladder.
        let cfg = ClusterConfig {
            replicas: 1,
            write_quorum: 1,
            read_quorum: 1,
        };
        let mut cluster = Cluster::sharded(1, 2, 16, 12, cfg);
        cluster.write_block(0, &[9; 64]).unwrap();
        cluster.node_mut(0).shutdown();
        let err = cluster.read_block(0).unwrap_err();
        // Level 0: the cluster verdict.
        assert_eq!(
            err.to_string(),
            "cluster request failed: every replica failed to serve the block"
        );
        // Level 1: the ClusterError payload.
        let cluster_err = err.source().expect("cluster error payload");
        assert_eq!(
            cluster_err.to_string(),
            "cluster request failed: every replica failed to serve the block"
        );
        // Level 2: the per-node CoreError that sank the last replica —
        // byte-identical to the service's own Display string.
        let node_err = cluster_err.source().expect("per-node cause");
        assert_eq!(
            node_err.to_string(),
            "memory service unavailable: shard request queue is closed"
        );
        // Levels 3+: through the ServiceError into the pool fault.
        let service_err = node_err.source().expect("service error payload");
        let pool_err = service_err.source().expect("transport-level cause");
        assert!(pool_err.source().is_none(), "chain ends at the transport");
        // And the write-side verdict wraps the same cause.
        let werr = cluster.write_block(0, &[1; 64]).unwrap_err();
        assert_eq!(
            werr,
            CoreError::cluster(ClusterFailure::QuorumLost { needed: 1, got: 0 })
        );
        assert!(werr.source().unwrap().source().is_some());
    }

    #[test]
    fn sharded_cluster_round_trips_and_shuts_down() {
        let mut cluster = Cluster::sharded(3, 2, 48, 13, ClusterConfig::default());
        for a in 0..48u64 {
            cluster.write_block(a, &pattern(a, 3)).unwrap();
        }
        for a in 0..48u64 {
            assert_eq!(cluster.read_block(a).unwrap().data, pattern(a, 3));
        }
        assert!(cluster.verify_all().unwrap());
        cluster.shutdown_nodes();
        assert!(matches!(cluster.read_block(0), Err(CoreError::Cluster(_))));
    }

    #[test]
    fn metrics_publish_cluster_counters() {
        let mut cluster = Cluster::local(3, 24, 14, ClusterConfig::default());
        fill(&mut cluster, 0);
        cluster.mark_replica_stale(0, 0);
        cluster.read_block(0).unwrap();
        let reg = MetricsRegistry::new();
        cluster.publish_metrics(&reg, "cluster");
        assert_eq!(reg.counter("cluster.writes"), 24);
        assert_eq!(reg.counter("cluster.read_repairs"), 1);
    }
}
