//! Proves the ring-based service's steady-state submission path performs
//! zero heap allocations after warm-up, extending the
//! `alloc_free_read` pattern from `pmck-core` across the whole
//! transport: routing, ticket issue, SPSC push, completion drain,
//! latency telemetry, and response collection.
//!
//! This file intentionally holds a single `#[test]`: the allocation
//! counter is process-global. The shard workers run concurrently inside
//! the measurement window, so the property proven here is stronger than
//! the single-threaded one — neither the client path *nor* the worker
//! path (clean reads through the stack) may allocate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pmck_core::{ChipkillConfig, Request, Response, StackBuilder};
use pmck_service::ShardedService;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    f();
    ALLOC_CALLS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_submission_is_allocation_free_after_warmup() {
    let shards = 4usize;
    let mut svc = ShardedService::with_clients(shards, 1, 13, |_, s| {
        StackBuilder::proposal(32, ChipkillConfig::default())
            .seed(s)
            .build()
    });
    let total = svc.num_blocks();

    // Populate every block, then warm both planes: the first batches
    // grow the reusable response Vec, the client's batch FIFO, and each
    // shard's lazily-built engine scratch.
    let writes: Vec<Request> = (0..total)
        .map(|a| Request::Write {
            addr: a,
            data: [a as u8; 64],
        })
        .collect();
    let mut out = Vec::new();
    svc.submit_batch_into(&writes, &mut out);
    assert!(out.iter().all(|r| *r == Ok(Response::Written)));

    let reads: Vec<Request> = (0..total).map(Request::Read).collect();
    for _ in 0..4 {
        svc.submit_batch_into(&reads, &mut out);
        assert!(out.iter().all(|r| r.is_ok()));
    }

    // --- Batched plane: clean reads through reused buffers. ---
    let batch_allocs = count_allocs(|| {
        for _ in 0..4 {
            svc.submit_batch_into(&reads, &mut out);
            for (a, r) in out.iter().enumerate() {
                let data = r.as_ref().unwrap().read().unwrap().data;
                assert_eq!(data[0], a as u8);
            }
        }
    });
    assert_eq!(
        batch_allocs,
        0,
        "steady-state submit_batch_into must not allocate after warm-up \
         (counted {batch_allocs} allocations over {} requests)",
        4 * total
    );

    // --- Streaming plane: ticket issue + redemption, windowed. ---
    let mut client = svc.take_client().expect("one spare lane");
    // Warm the client's own lane (slots, FIFO capacity, parker).
    for a in 0..total {
        let t = client.try_submit(&Request::Read(a)).unwrap();
        client.wait_response(t).unwrap();
    }
    let stream_allocs = count_allocs(|| {
        for _ in 0..4 {
            // Keep a small window in flight to exercise out-of-order
            // completion drains, not just ping-pong.
            let mut pending = [None; 8];
            for a in 0..total {
                let i = (a % 8) as usize;
                if let Some(t) = pending[i].take() {
                    let r: Result<Response, _> = client.wait_response(t);
                    r.unwrap().read().unwrap();
                }
                pending[i] = Some(client.try_submit(&Request::Read(a)).unwrap());
            }
            for t in pending.into_iter().flatten() {
                client.wait_response(t).unwrap().read().unwrap();
            }
        }
    });
    assert_eq!(
        stream_allocs,
        0,
        "steady-state try_submit/wait_response must not allocate after \
         warm-up (counted {stream_allocs} allocations over {} tickets)",
        4 * total
    );

    svc.shutdown();
}
