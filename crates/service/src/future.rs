//! A dependency-free async/await adapter over the ticket plane.
//!
//! [`ServiceClient::submit_async`] wraps one request as a hand-rolled
//! [`Future`]: the first poll submits through
//! [`ServiceClient::try_submit`] (re-arming the waker and staying
//! `Pending` under [`pmck_core::ServiceFailure::Backpressure`]), later
//! polls claim the response through
//! [`ServiceClient::poll_response`]. No runtime, no channels, no
//! allocation beyond the future itself living on the caller's stack —
//! any executor works, including the minimal [`block_on`] below.
//!
//! The future borrows the client mutably, so one client drives one
//! async submission at a time — the streaming form for overlapping
//! requests remains the ticket API or
//! [`ServiceClient::submit_batch_into`]. The adapter exists to let
//! async code `await` a service response without hand-writing the
//! poll loop, which is exactly the ROADMAP item 3 leftover.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use pmck_core::{CoreError, Request, Response};

use crate::client::{is_backpressure, Ticket};
use crate::ServiceClient;

/// State machine behind [`ServiceClient::submit_async`].
enum FutureState {
    /// Not yet admitted (fresh, or pushed back by backpressure).
    Unsubmitted,
    /// Admitted; the ticket claims the eventual response.
    InFlight(Ticket),
    /// Response handed out; polling again is a contract violation.
    Done,
}

/// A single in-flight request as a [`Future`]. Created by
/// [`ServiceClient::submit_async`]; resolves to the same
/// `Result<Response, CoreError>` the synchronous paths produce.
///
/// The future is `Unpin` (its state lives inline, nothing
/// self-referential), re-arms its waker whenever it returns `Pending`
/// (progress depends on shard workers, not on an external event the
/// executor could subscribe to), and must not be polled after
/// completion.
pub struct SubmitFuture<'c> {
    client: &'c mut ServiceClient,
    req: Request,
    state: FutureState,
}

impl Future for SubmitFuture<'_> {
    type Output = Result<Response, CoreError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        loop {
            match this.state {
                FutureState::Unsubmitted => match this.client.try_submit(&this.req) {
                    Ok(ticket) => this.state = FutureState::InFlight(ticket),
                    Err(e) if is_backpressure(&e) => {
                        cx.waker().wake_by_ref();
                        return Poll::Pending;
                    }
                    Err(e) => {
                        this.state = FutureState::Done;
                        return Poll::Ready(Err(e));
                    }
                },
                FutureState::InFlight(ticket) => match this.client.poll_response(ticket) {
                    Some(res) => {
                        this.state = FutureState::Done;
                        return Poll::Ready(res);
                    }
                    None => {
                        cx.waker().wake_by_ref();
                        return Poll::Pending;
                    }
                },
                FutureState::Done => panic!("SubmitFuture polled after completion"),
            }
        }
    }
}

impl ServiceClient {
    /// Submits one request as an awaitable [`SubmitFuture`]. See the
    /// module docs for the polling contract; errors are exactly those
    /// of [`ServiceClient::try_submit`] /
    /// [`ServiceClient::poll_response`], with retryable backpressure
    /// absorbed into `Pending`.
    pub fn submit_async(&mut self, req: &Request) -> SubmitFuture<'_> {
        SubmitFuture {
            client: self,
            req: *req,
            state: FutureState::Unsubmitted,
        }
    }
}

/// Drives one future to completion on the current thread: poll, and
/// park until the waker fires. Self-waking futures (like
/// [`SubmitFuture`]) degrade this into a polling loop, which is the
/// intended minimal-executor behavior — no reactor exists to do better
/// without a dependency.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl std::task::Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            // A wake that raced ahead of this park left the thread's
            // unpark token set, so the park returns immediately — no
            // lost wakeups.
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedService;
    use pmck_core::{ChipkillConfig, ReadPath, ServiceFailure, StackBuilder};
    use pmck_rt::rng::{Rng, StdRng};

    fn svc(shards: usize, blocks_per_shard: u64, seed: u64) -> ShardedService {
        ShardedService::with_clients(shards, 1, seed, |_, s| {
            StackBuilder::proposal(blocks_per_shard, ChipkillConfig::default())
                .seed(s)
                .build()
        })
    }

    #[test]
    fn seeded_async_round_trips_match_written_data() {
        let mut svc = svc(3, 32, 11);
        let mut client = svc.take_client().expect("spare lane");
        let blocks = pmck_core::Submitter::num_blocks(&client);
        let mut rng = StdRng::seed_from_u64(0xA57);
        let mut truth = vec![[0u8; 64]; blocks as usize];
        for _ in 0..96 {
            let addr = rng.gen_range(0..blocks);
            let mut data = [0u8; 64];
            for b in data.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            let res = block_on(client.submit_async(&Request::Write { addr, data }));
            assert_eq!(res, Ok(Response::Written));
            truth[addr as usize] = data;
        }
        for (addr, want) in truth.iter().enumerate() {
            let res = block_on(client.submit_async(&Request::Read(addr as u64))).unwrap();
            let out = res.read().unwrap();
            assert_eq!(&out.data, want, "block {addr}");
            assert_eq!(out.path, ReadPath::Clean);
        }
        svc.shutdown();
    }

    #[test]
    fn async_broadcast_and_error_paths_resolve() {
        let mut svc = svc(2, 16, 12);
        let mut client = svc.take_client().expect("spare lane");
        let verified = block_on(client.submit_async(&Request::Verify)).unwrap();
        assert_eq!(verified.verified(), Some(true));
        let out_of_range = block_on(client.submit_async(&Request::Read(10_000)));
        assert_eq!(out_of_range, Err(CoreError::OutOfRange(10_000)));
        svc.shutdown();
        // Post-shutdown the future resolves to the service failure
        // instead of pending forever.
        let dead = block_on(client.submit_async(&Request::Read(0)));
        assert_eq!(dead, Err(CoreError::service(ServiceFailure::QueueClosed)));
    }
}
