//! `pmck-service` — a sharded, multi-threaded memory service over the
//! chipkill protection stack.
//!
//! The paper's runtime path (per-block RS threshold decode with VLEW
//! fallback) is embarrassingly parallel across independent 64 B blocks.
//! [`ShardedService`] exploits that: it owns N independent
//! [`pmck_core::Stack`]s, partitions the block address space across them
//! by interleave (global address `a` lives on shard `a % N` at local
//! address `a / N`), and drives them with `pmck-rt`'s [`PinnedPool`] —
//! one persistent worker thread per shard, so each shard keeps its
//! engine-lifetime scratch buffers and the zero-allocation read fast
//! path while different shards decode in parallel.
//!
//! Clients speak the [`Request`]/[`Response`] vocabulary from
//! `pmck-core` in batches: [`ShardedService::submit_batch`] routes each
//! addressed request to its owning shard, broadcasts whole-device
//! requests (patrol step, fault injection, verify, …) to every shard,
//! and returns responses in request order.
//!
//! # Determinism
//!
//! Results are independent of thread scheduling: shard `s` is seeded
//! from stream `s` of the service seed ([`pmck_rt::rng::stream_seed`]),
//! each shard executes its requests in staged order, and batch results
//! are collected shard-by-shard in index order. Replaying the same
//! per-shard request streams sequentially against identically-seeded
//! single `Stack`s therefore produces bit-identical block contents and
//! stats — the equivalence the top-level `service_equivalence` test
//! checks.
//!
//! # Examples
//!
//! ```
//! use pmck_core::{ChipkillConfig, Request, Response, StackBuilder};
//! use pmck_service::ShardedService;
//!
//! let mut svc = ShardedService::new(4, 7, |_, seed| {
//!     StackBuilder::proposal(64, ChipkillConfig::default())
//!         .seed(seed)
//!         .build()
//! });
//! assert_eq!(svc.num_blocks(), 256);
//! let reqs = [
//!     Request::Write { addr: 5, data: [0xAB; 64] },
//!     Request::Read(5),
//! ];
//! let out = svc.submit_batch(&reqs);
//! assert_eq!(out[0], Ok(Response::Written));
//! assert_eq!(out[1].clone().unwrap().read().unwrap().data, [0xAB; 64]);
//! ```

use std::sync::Arc;

use pmck_core::{
    CoreError, CoreStats, LayerId, LayerStats, ProtectionTier, Request, Response, ServiceError,
    ServiceFailure, Stack, TierReport,
};
use pmck_rt::metrics::MetricsRegistry;
use pmck_rt::pool::{PinnedPool, PoolError};
use pmck_rt::rng::stream_seed;

/// One request tagged with its position in the submitted batch.
type Job = (u32, Request);
/// The shard's answer, tagged with the same position.
type JobResult = (u32, Result<Response, CoreError>);

/// A sharded, multi-threaded front end over N independent [`Stack`]s.
///
/// See the crate docs for the sharding and determinism model.
pub struct ShardedService {
    pool: PinnedPool<Stack, Job, JobResult>,
    /// Per-shard capacity in blocks (local addresses).
    shard_blocks: Vec<u64>,
    /// Whether `out[i]` holds a real response yet (reused per batch).
    filled: Vec<bool>,
}

impl ShardedService {
    /// Builds `shards` stacks with `make(shard, shard_seed)` and spawns
    /// one pinned worker per shard. `shard_seed` is stream `shard` of
    /// `seed` ([`stream_seed`]), so a shard's behavior is reproducible
    /// by seeding a standalone `Stack` the same way.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, seed: u64, mut make: impl FnMut(usize, u64) -> Stack) -> Self {
        assert!(shards > 0, "service needs at least one shard");
        let stacks: Vec<Stack> = (0..shards)
            .map(|s| make(s, stream_seed(seed, s as u64)))
            .collect();
        Self::from_stacks(stacks)
    }

    /// Wraps pre-built stacks directly (one shard per stack).
    ///
    /// # Panics
    ///
    /// Panics if `stacks` is empty.
    pub fn from_stacks(stacks: Vec<Stack>) -> Self {
        let shard_blocks: Vec<u64> = stacks.iter().map(Stack::num_blocks).collect();
        let pool = PinnedPool::new(stacks, |_, stack: &mut Stack, (idx, req): Job| {
            (idx, stack.submit(&req))
        });
        ShardedService {
            pool,
            shard_blocks,
            filled: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_blocks.len()
    }

    /// Total capacity in blocks across all shards.
    pub fn num_blocks(&self) -> u64 {
        self.shard_blocks.iter().sum()
    }

    /// The shard and local address owning global address `addr`, or
    /// `None` if `addr` is beyond the interleaved address space.
    pub fn route(&self, addr: u64) -> Option<(usize, u64)> {
        let n = self.shard_blocks.len() as u64;
        let shard = (addr % n) as usize;
        let local = addr / n;
        (local < self.shard_blocks[shard]).then_some((shard, local))
    }

    /// Executes a batch: addressed requests run on their owning shard
    /// (in parallel across shards, in batch order within a shard);
    /// whole-device requests are broadcast to every shard and their
    /// per-shard responses merged. `out` is cleared and filled with one
    /// result per request, in request order; reusing the same `out`
    /// across batches keeps the steady state allocation-free.
    pub fn submit_batch_into(
        &mut self,
        reqs: &[Request],
        out: &mut Vec<Result<Response, CoreError>>,
    ) {
        const PENDING: Result<Response, CoreError> = Err(CoreError::Unsupported("pending"));
        out.clear();
        out.resize(reqs.len(), PENDING);
        self.filled.clear();
        self.filled.resize(reqs.len(), false);
        let shards = self.shards();
        for (i, req) in reqs.iter().enumerate() {
            let idx = u32::try_from(i).expect("batch longer than u32::MAX");
            match req.addr() {
                Some(addr) => match self.route(addr) {
                    Some((shard, local)) => self.pool.stage(shard, (idx, req.with_addr(local))),
                    None => {
                        out[i] = Err(CoreError::OutOfRange(addr));
                        self.filled[i] = true;
                    }
                },
                None => {
                    for shard in 0..shards {
                        self.pool.stage(shard, (idx, *req));
                    }
                }
            }
        }
        let filled = &mut self.filled;
        let run = self.pool.run(|_, (idx, res)| {
            let i = idx as usize;
            if filled[i] {
                merge_broadcast(&mut out[i], res);
            } else {
                out[i] = res;
                filled[i] = true;
            }
        });
        if let Err(pool_err) = run {
            // The batch is indivisible from the client's view: if the
            // pool failed, every slot reports the service failure.
            let err = CoreError::Service(ServiceError::with_source(
                match pool_err {
                    PoolError::Closed => ServiceFailure::QueueClosed,
                    PoolError::WorkerPanicked => ServiceFailure::WorkerLost,
                },
                Arc::new(pool_err),
            ));
            for slot in out.iter_mut() {
                *slot = Err(err.clone());
            }
        }
    }

    /// [`ShardedService::submit_batch_into`] returning a fresh `Vec`.
    pub fn submit_batch(&mut self, reqs: &[Request]) -> Vec<Result<Response, CoreError>> {
        let mut out = Vec::new();
        self.submit_batch_into(reqs, &mut out);
        out
    }

    /// Executes one request (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`Stack::submit`], plus [`CoreError::Service`] when the pool
    /// is shut down or a shard worker died.
    pub fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        let mut out = Vec::with_capacity(1);
        self.submit_batch_into(std::slice::from_ref(req), &mut out);
        out.pop().expect("one request yields one response")
    }

    /// Runs `f` against one shard's stack (blocks while that shard is
    /// mid-batch). For maintenance that needs a concrete shard — e.g.
    /// repairing a chip failure localized to it.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&mut Stack) -> T) -> T {
        self.pool.with_state(shard, f)
    }

    /// Engine counters summed across shards (`None` if no shard has a
    /// chipkill engine).
    pub fn core_stats(&self) -> Option<CoreStats> {
        let mut total: Option<CoreStats> = None;
        for s in 0..self.shards() {
            if let Some(st) = self.pool.with_state(s, |stack| stack.core_stats()) {
                total.get_or_insert_with(CoreStats::default).merge(&st);
            }
        }
        total
    }

    /// Per-layer stats summed across shards, in each layer's first-seen
    /// order on the lowest shard that saw it.
    pub fn layers(&self) -> Vec<(LayerId, LayerStats)> {
        let mut merged: Vec<(LayerId, LayerStats)> = Vec::new();
        for s in 0..self.shards() {
            self.pool.with_state(s, |stack| {
                for &(id, st) in stack.layers() {
                    match merged.iter_mut().find(|(mid, _)| *mid == id) {
                        Some((_, acc)) => acc.merge(&st),
                        None => merged.push((id, st)),
                    }
                }
            });
        }
        merged
    }

    /// Fleet-wide tier census merged across shards (`None` if no shard
    /// runs a tiered base). The blended storage cost is region-weighted,
    /// so it matches what a single tiered rank of the same composition
    /// would report.
    pub fn tier_report(&self) -> Option<TierReport> {
        let mut total: Option<TierReport> = None;
        for s in 0..self.shards() {
            if let Some(r) = self.pool.with_state(s, |stack| stack.tier_report()) {
                match total.as_mut() {
                    Some(acc) => acc.merge(&r),
                    None => total = Some(r),
                }
            }
        }
        total
    }

    /// Publishes the aggregated cross-shard view — per-layer counters
    /// under `<prefix>.layer.<label>.*`, engine counters under
    /// `<prefix>.engine.*` (same keys as [`Stack::publish_metrics`]) —
    /// plus the shard count under `<prefix>.shards` and, for tiered
    /// fleets, the per-tier and blended storage costs.
    pub fn publish_metrics(&self, reg: &MetricsRegistry, prefix: &str) {
        for (id, stats) in self.layers() {
            stats.publish_metrics(reg, &format!("{prefix}.layer.{id}"));
        }
        if let Some(core) = self.core_stats() {
            core.publish_metrics(reg, &format!("{prefix}.engine"));
        }
        reg.set_counter(&format!("{prefix}.shards"), self.shards() as u64);
        if let Some(report) = self.tier_report() {
            for tier in ProtectionTier::ALL {
                reg.set_gauge(
                    &format!("{prefix}.tier_cost.{}", tier.as_str()),
                    tier.layout().total_storage_cost(),
                );
            }
            reg.set_gauge(
                &format!("{prefix}.total_storage_cost"),
                report.blended_cost(),
            );
        }
    }

    /// Stops and joins the shard workers. Subsequent batches fail with
    /// [`ServiceFailure::QueueClosed`]; per-shard state stays readable
    /// through [`ShardedService::with_shard`] and the stats accessors.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.shards())
            .field("num_blocks", &self.num_blocks())
            .finish()
    }
}

/// Folds one more shard's answer to a broadcast request into the
/// accumulated response, in shard order.
fn merge_broadcast(acc: &mut Result<Response, CoreError>, next: Result<Response, CoreError>) {
    match (&mut *acc, next) {
        // The first error (in shard order) wins and sticks.
        (Err(_), _) => {}
        (Ok(_), Err(e)) => *acc = Err(e),
        (Ok(have), Ok(got)) => match (have, got) {
            (Response::Patrolled(a), Response::Patrolled(b)) => {
                a.blocks_scrubbed += b.blocks_scrubbed;
                a.blocks_skipped += b.blocks_skipped;
                // The service-level pass completes when every shard's
                // scrubber wrapped.
                a.completed_pass &= b.completed_pass;
            }
            (Response::Injected { bits: a }, Response::Injected { bits: b }) => *a += b,
            (Response::BootScrubbed(a), Response::BootScrubbed(b)) => {
                a.stripes_scrubbed += b.stripes_scrubbed;
                a.bits_corrected += b.bits_corrected;
                a.words_with_errors += b.words_with_errors;
                a.list_rescues += b.list_rescues;
                if a.chip_rebuilt.is_none() {
                    a.chip_rebuilt = b.chip_rebuilt;
                }
            }
            (Response::Verified(a), Response::Verified(b)) => *a &= b,
            (Response::Repaired { chip: a }, Response::Repaired { chip: b }) if a.is_none() => {
                *a = b;
            }
            (Response::Flushed { lines: a }, Response::Flushed { lines: b }) => *a += b,
            (Response::PowerLost { lost_lines: a }, Response::PowerLost { lost_lines: b }) => {
                *a += b;
            }
            (Response::Recovered(a), Response::Recovered(b)) => a.merge(&b),
            (Response::Tiered(a), Response::Tiered(b)) => a.merge(&b),
            // Identical unit responses (Written/Scrubbed/Restriped):
            // the first one already says it all.
            _ => {}
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_core::{ChipkillConfig, ReadPath, StackBuilder};
    use std::error::Error as _;

    fn svc(shards: usize, blocks_per_shard: u64, seed: u64) -> ShardedService {
        ShardedService::new(shards, seed, |_, s| {
            StackBuilder::proposal(blocks_per_shard, ChipkillConfig::default())
                .seed(s)
                .build()
        })
    }

    #[test]
    fn interleaved_round_trip_across_shards() {
        let mut svc = svc(4, 32, 1);
        assert_eq!(svc.num_blocks(), 128);
        let writes: Vec<Request> = (0..128u64)
            .map(|a| Request::Write {
                addr: a,
                data: [a as u8; 64],
            })
            .collect();
        for r in svc.submit_batch(&writes) {
            assert_eq!(r, Ok(Response::Written));
        }
        let reads: Vec<Request> = (0..128u64).map(Request::Read).collect();
        for (a, r) in svc.submit_batch(&reads).into_iter().enumerate() {
            let out = r.unwrap().read().unwrap();
            assert_eq!(out.data, [a as u8; 64], "block {a}");
            assert_eq!(out.path, ReadPath::Clean);
        }
        let stats = svc.core_stats().unwrap();
        assert_eq!(stats.reads, 128);
        assert_eq!(stats.writes, 128);
    }

    #[test]
    fn out_of_range_is_answered_inline() {
        let mut svc = svc(2, 32, 2);
        let out = svc.submit_batch(&[Request::Read(3), Request::Read(64), Request::Read(999)]);
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err(CoreError::OutOfRange(64)));
        assert_eq!(out[2], Err(CoreError::OutOfRange(999)));
    }

    #[test]
    fn broadcasts_merge_across_shards() {
        let mut svc = svc(4, 32, 3);
        let fills: Vec<Request> = (0..128u64)
            .map(|a| Request::Write {
                addr: a,
                data: [0x5A; 64],
            })
            .collect();
        svc.submit_batch(&fills);
        // Verify is AND across shards.
        assert_eq!(svc.submit(&Request::Verify), Ok(Response::Verified(true)));
        // Injection sums the per-shard flips (4 shards at a rate that
        // flips a fair number of bits each).
        let bits = svc
            .submit(&Request::InjectRber(1e-3))
            .unwrap()
            .injected_bits()
            .unwrap();
        assert!(bits > 100, "4 shards x 32 blocks at 1e-3: got {bits}");
        // Boot scrub sums its counters.
        let report = svc
            .submit(&Request::BootScrub)
            .unwrap()
            .boot_scrubbed()
            .unwrap();
        assert!(report.bits_corrected > 0);
        // A patrol step sums scrubbed blocks; every shard's 16-block
        // increment wraps its 16-block device, so the pass completes.
        let p = svc
            .submit(&Request::PatrolStep)
            .map(|r| r.patrolled())
            .unwrap_err();
        // No patrol layer in this stack: the first shard's error wins.
        assert_eq!(p, CoreError::Unsupported("patrol_step"));
    }

    #[test]
    fn boot_scrub_broadcast_merges_list_rescues() {
        use pmck_core::{AccessContext, ChipkillMemory, DecodePolicy};
        // Each shard carries one chip word with t + 1 = 23 bit errors —
        // recoverable only by the unraveling list decoder. The broadcast
        // scrub must batch-decode each shard and sum the rescue counts.
        let stacks = (0..2u64)
            .map(|shard| {
                let cfg = ChipkillConfig {
                    decode_policy: DecodePolicy::BeyondBound,
                    ..ChipkillConfig::default()
                };
                let mut mem = ChipkillMemory::new(32, cfg);
                for a in 0..mem.num_blocks() {
                    mem.write_block(a, &[shard as u8; 64]).unwrap();
                }
                for i in 0..23u64 {
                    mem.corrupt_chip_byte(0, i, 0, 1);
                }
                Stack::from_parts(Box::new(mem), AccessContext::new(shard))
            })
            .collect();
        let mut svc = ShardedService::from_stacks(stacks);
        let report = svc
            .submit(&Request::BootScrub)
            .unwrap()
            .boot_scrubbed()
            .unwrap();
        assert_eq!(report.stripes_scrubbed, 2);
        assert_eq!(report.words_with_errors, 2);
        assert_eq!(report.list_rescues, 2);
        assert_eq!(report.bits_corrected, 46);
        assert_eq!(report.chip_rebuilt, None);
        assert_eq!(svc.submit(&Request::Verify), Ok(Response::Verified(true)));
        // The rescues also surface through the aggregated engine stats.
        assert_eq!(svc.core_stats().unwrap().list_rescues, 2);
    }

    #[test]
    fn patrol_step_broadcast_sums_increments() {
        let mut svc = ShardedService::new(2, 9, |_, s| {
            StackBuilder::proposal(32, ChipkillConfig::default())
                .patrolled(32, 0)
                .seed(s)
                .build()
        });
        let r = svc
            .submit(&Request::PatrolStep)
            .unwrap()
            .patrolled()
            .unwrap();
        assert_eq!(r.blocks_scrubbed, 64);
        assert!(r.completed_pass);
    }

    #[test]
    fn flush_cut_recover_broadcasts_sum_across_persistent_shards() {
        let mut svc = ShardedService::new(4, 11, |_, s| {
            StackBuilder::proposal(16, ChipkillConfig::default())
                .persistent(pmck_core::PmemConfig::default())
                .seed(s)
                .build()
        });
        let writes: Vec<Request> = (0..64u64)
            .map(|a| Request::Write {
                addr: a,
                data: [a as u8 ^ 0x5a; 64],
            })
            .collect();
        for r in svc.submit_batch(&writes) {
            assert_eq!(r, Ok(Response::Written));
        }
        let flushed = svc
            .submit(&Request::Flush)
            .unwrap()
            .flushed_lines()
            .unwrap();
        assert!(flushed > 0, "dirty writes must flush lines");
        // Everything is fenced, so a power cut loses nothing...
        let lost = match svc.submit(&Request::PowerCut).unwrap() {
            Response::PowerLost { lost_lines } => lost_lines,
            other => panic!("expected PowerLost, got {other:?}"),
        };
        assert_eq!(lost, 0);
        let rec = svc.submit(&Request::Recover).unwrap().recovered().unwrap();
        assert!(!rec.restriped);
        // ...and every block reads back clean after recovery.
        let reads: Vec<Request> = (0..64u64).map(Request::Read).collect();
        for (a, r) in svc.submit_batch(&reads).into_iter().enumerate() {
            let out = r.unwrap().read().unwrap();
            assert_eq!(out.data, [a as u8 ^ 0x5a; 64], "block {a}");
        }
    }

    #[test]
    fn shutdown_fails_batches_with_full_error_chain() {
        let mut svc = svc(2, 8, 4);
        svc.shutdown();
        let out = svc.submit_batch(&[Request::Read(0)]);
        let err = out[0].clone().unwrap_err();
        let CoreError::Service(ref se) = err else {
            panic!("expected service error, got {err:?}");
        };
        assert_eq!(se.kind(), ServiceFailure::QueueClosed);
        // Display stays stable for corpus replay...
        assert_eq!(
            err.to_string(),
            "memory service unavailable: shard request queue is closed"
        );
        // ...while source() exposes the transport chain.
        let source = err.source().expect("service error has a source");
        let transport = source.source().expect("chain reaches the pool error");
        assert_eq!(transport.to_string(), PoolError::Closed.to_string());
        // Shard state is still reachable for post-mortem stats.
        assert_eq!(svc.core_stats().unwrap().reads, 0);
    }

    #[test]
    fn aggregated_metrics_match_summed_layers() {
        let mut svc = svc(2, 8, 5);
        let reqs: Vec<Request> = (0..16u64)
            .map(|a| Request::Write {
                addr: a,
                data: [1; 64],
            })
            .chain((0..16u64).map(Request::Read))
            .collect();
        svc.submit_batch(&reqs);
        let reg = MetricsRegistry::new();
        svc.publish_metrics(&reg, "svc");
        assert_eq!(reg.counter("svc.layer.chipkill.reads"), 16);
        assert_eq!(reg.counter("svc.engine.writes"), 16);
        assert_eq!(reg.counter("svc.shards"), 2);
        let chipkill = svc
            .layers()
            .into_iter()
            .find(|(id, _)| *id == LayerId::Chipkill)
            .unwrap()
            .1;
        assert_eq!(chipkill.reads, 16);
        assert_eq!(chipkill.writes, 16);
    }

    #[test]
    fn tiered_fleet_merges_census_and_publishes_blended_cost() {
        use pmck_core::TierPolicy;
        let mut svc = ShardedService::new(2, 12, |_, s| {
            StackBuilder::proposal(64, ChipkillConfig::default())
                .tiered(2, TierPolicy::default())
                .seed(s)
                .build()
        });
        // Before any step, every region boots at the paper tier.
        let boot = svc.tier_report().unwrap();
        assert_eq!(boot.regions, 4);
        assert_eq!(boot.paper_regions, 4);
        // A broadcast tier step sums census and migrations across the
        // fleet: pristine regions (measured RBER 0) all step down to
        // the RS-only tier.
        let report = svc.submit(&Request::TierStep).unwrap().tiered().unwrap();
        assert_eq!(report.regions, 4);
        assert_eq!(report.rs_only_regions, 4);
        assert_eq!(report.migrations, 4);
        let reg = MetricsRegistry::new();
        svc.publish_metrics(&reg, "svc");
        let paper = ProtectionTier::Paper.layout().total_storage_cost();
        let rs_only = ProtectionTier::RsOnly.layout().total_storage_cost();
        let blended = reg.gauge("svc.total_storage_cost").unwrap();
        assert!(
            (blended - rs_only).abs() < 1e-4,
            "all-rs_only fleet: {blended}"
        );
        assert_eq!(reg.gauge("svc.tier_cost.paper"), Some(paper));
        assert_eq!(reg.gauge("svc.tier_cost.rs_only"), Some(rs_only));
        assert!(reg.gauge("svc.tier_cost.dense").unwrap() > paper);
    }

    #[test]
    fn batch_reuse_keeps_results_in_request_order() {
        let mut svc = svc(3, 8, 6);
        let mut out = Vec::new();
        for round in 0..10u64 {
            let reqs: Vec<Request> = (0..24u64)
                .map(|a| Request::Write {
                    addr: (a + round) % 24,
                    data: [round as u8; 64],
                })
                .collect();
            svc.submit_batch_into(&reqs, &mut out);
            assert_eq!(out.len(), 24);
            assert!(out.iter().all(|r| *r == Ok(Response::Written)));
        }
    }
}
