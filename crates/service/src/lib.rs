//! `pmck-service` — a sharded, multi-threaded memory service over the
//! chipkill protection stack.
//!
//! The paper's runtime path (per-block RS threshold decode with VLEW
//! fallback) is embarrassingly parallel across independent 64 B blocks.
//! [`ShardedService`] exploits that: it owns N independent
//! [`pmck_core::Stack`]s, partitions the block address space across them
//! by interleave (global address `a` lives on shard `a % N` at local
//! address `a / N`), and drives them with `pmck-rt`'s lock-free
//! [`ShardPool`] — one persistent worker thread per shard fed through
//! per-client SPSC rings, so each shard keeps its engine-lifetime
//! scratch buffers and the zero-allocation read fast path while
//! different shards decode in parallel and different producers never
//! contend.
//!
//! Two submission planes share the same routing and merge rules:
//!
//! * **Batched** ([`ShardedService::submit_batch`]): routes each
//!   addressed request to its owning shard, broadcasts whole-device
//!   requests (patrol step, fault injection, verify, …) to every shard,
//!   and returns responses in request order. Internally this *streams*:
//!   requests are submitted ahead up to the ticket window and redeemed
//!   in order, so no whole-batch barrier exists.
//! * **Streaming** ([`ServiceClient`], from
//!   [`ShardedService::take_client`]): `try_submit` → [`Ticket`] →
//!   `poll_response`/`wait_response`, with explicit
//!   [`pmck_core::ServiceFailure::Backpressure`] admission control.
//!   Each client owns a private lane of rings, so N producer threads
//!   drive the shards with zero shared locks.
//!
//! The completion path records per-request latency into a lossy MPSC
//! telemetry ring; [`ShardedService::publish_metrics`] folds the
//! samples into per-shard HDR histograms (p50/p99/p999).
//!
//! The batched `PinnedPool` transport survives as
//! [`baseline::BatchService`] — the measuring stick the `saturate`
//! bench compares against.
//!
//! # Determinism
//!
//! Results are independent of thread scheduling: shard `s` is seeded
//! from stream `s` of the service seed ([`pmck_rt::rng::stream_seed`]),
//! each `(client, shard)` ring is FIFO so a shard executes one client's
//! requests in submission order, and broadcast responses are buffered
//! per shard and merged in shard index order once complete. Replaying
//! the same per-shard request streams sequentially against
//! identically-seeded single `Stack`s therefore produces bit-identical
//! block contents and stats — the equivalence the top-level
//! `service_equivalence` test checks, including under backpressure.
//!
//! # Examples
//!
//! ```
//! use pmck_core::{ChipkillConfig, Request, Response, StackBuilder};
//! use pmck_service::ShardedService;
//!
//! let mut svc = ShardedService::new(4, 7, |_, seed| {
//!     StackBuilder::proposal(64, ChipkillConfig::default())
//!         .seed(seed)
//!         .build()
//! });
//! assert_eq!(svc.num_blocks(), 256);
//! let reqs = [
//!     Request::Write { addr: 5, data: [0xAB; 64] },
//!     Request::Read(5),
//! ];
//! let out = svc.submit_batch(&reqs);
//! assert_eq!(out[0], Ok(Response::Written));
//! assert_eq!(out[1].clone().unwrap().read().unwrap().data, [0xAB; 64]);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pmck_core::{
    CoreError, CoreStats, LayerId, LayerStats, ProtectionTier, Request, Response, Stack, TierReport,
};
use pmck_rt::metrics::{Histogram, MetricsRegistry};
use pmck_rt::pool::ShardPool;
use pmck_rt::ring::{mpsc, MpscConsumer};
use pmck_rt::rng::stream_seed;

pub mod baseline;
mod client;
mod future;

pub use client::{ServiceClient, Ticket};
pub use future::{block_on, SubmitFuture};

use client::{Comp, Job, LatencySample, BROADCAST_SHARD, SUBMIT_DEPTH, TICKET_WINDOW};

/// Capacity of the service-wide latency telemetry ring. Lossy by
/// design: overflow increments a drop counter instead of stalling.
const TELEMETRY_DEPTH: usize = 4096;

/// The shard and local address owning global `addr` under block
/// interleave, or `None` when `addr` is beyond the address space.
pub(crate) fn route_addr(shard_blocks: &[u64], addr: u64) -> Option<(usize, u64)> {
    let n = shard_blocks.len() as u64;
    let shard = (addr % n) as usize;
    let local = addr / n;
    (local < shard_blocks[shard]).then_some((shard, local))
}

/// Latency histograms folded from the telemetry ring (cold path: only
/// touched by `publish_metrics` / `latency_report`).
struct Telemetry {
    rx: MpscConsumer<LatencySample>,
    per_shard: Vec<Histogram>,
    broadcast: Histogram,
}

impl Telemetry {
    fn drain(&mut self) {
        while let Some(sample) = self.rx.try_pop() {
            if sample.shard == BROADCAST_SHARD {
                self.broadcast.record(sample.ns);
            } else {
                self.per_shard[sample.shard as usize].record(sample.ns);
            }
        }
    }
}

/// A sharded, multi-threaded front end over N independent [`Stack`]s.
///
/// See the crate docs for the sharding, streaming, and determinism
/// model.
pub struct ShardedService {
    pool: ShardPool<Stack>,
    /// The service's own lane, backing the batched API.
    primary: ServiceClient,
    /// Extra lanes created up front, claimable via `take_client`.
    spare: Vec<ServiceClient>,
    shard_blocks: Arc<[u64]>,
    telemetry: Mutex<Telemetry>,
    dropped_samples: Arc<AtomicU64>,
}

impl ShardedService {
    /// Builds `shards` stacks with `make(shard, shard_seed)` and spawns
    /// one pinned worker per shard. `shard_seed` is stream `shard` of
    /// `seed` ([`stream_seed`]), so a shard's behavior is reproducible
    /// by seeding a standalone `Stack` the same way.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, seed: u64, make: impl FnMut(usize, u64) -> Stack) -> Self {
        Self::with_clients(shards, 0, seed, make)
    }

    /// As [`ShardedService::new`], but also provisions `clients` extra
    /// streaming lanes claimable with [`ShardedService::take_client`] —
    /// one per producer thread.
    pub fn with_clients(
        shards: usize,
        clients: usize,
        seed: u64,
        mut make: impl FnMut(usize, u64) -> Stack,
    ) -> Self {
        assert!(shards > 0, "service needs at least one shard");
        let stacks: Vec<Stack> = (0..shards)
            .map(|s| make(s, stream_seed(seed, s as u64)))
            .collect();
        Self::from_stacks_with_clients(stacks, clients)
    }

    /// Wraps pre-built stacks directly (one shard per stack).
    ///
    /// # Panics
    ///
    /// Panics if `stacks` is empty.
    pub fn from_stacks(stacks: Vec<Stack>) -> Self {
        Self::from_stacks_with_clients(stacks, 0)
    }

    /// [`ShardedService::from_stacks`] plus `clients` extra streaming
    /// lanes.
    pub fn from_stacks_with_clients(stacks: Vec<Stack>, clients: usize) -> Self {
        let shard_blocks: Arc<[u64]> = stacks.iter().map(Stack::num_blocks).collect();
        let shards = shard_blocks.len();
        let (pool, raw_clients) = ShardPool::with_clients(
            stacks,
            1 + clients,
            SUBMIT_DEPTH,
            TICKET_WINDOW,
            |_, stack: &mut Stack, (slot, req): Job| -> Comp { (slot, stack.submit(&req)) },
        );
        let (telemetry_tx, telemetry_rx) = mpsc::<LatencySample>(TELEMETRY_DEPTH);
        let dropped_samples = Arc::new(AtomicU64::new(0));
        let mut lanes = raw_clients.into_iter().map(|raw| {
            ServiceClient::new(
                raw,
                Arc::clone(&shard_blocks),
                telemetry_tx.clone(),
                Arc::clone(&dropped_samples),
            )
        });
        let primary = lanes.next().expect("at least one lane");
        let spare: Vec<ServiceClient> = lanes.collect();
        ShardedService {
            pool,
            primary,
            spare,
            shard_blocks,
            telemetry: Mutex::new(Telemetry {
                rx: telemetry_rx,
                per_shard: (0..shards).map(|_| Histogram::new()).collect(),
                broadcast: Histogram::new(),
            }),
            dropped_samples,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_blocks.len()
    }

    /// Total capacity in blocks across all shards.
    pub fn num_blocks(&self) -> u64 {
        self.shard_blocks.iter().sum()
    }

    /// The shard and local address owning global address `addr`, or
    /// `None` if `addr` is beyond the interleaved address space.
    pub fn route(&self, addr: u64) -> Option<(usize, u64)> {
        route_addr(&self.shard_blocks, addr)
    }

    /// Claims one of the streaming lanes provisioned at construction
    /// (`None` once all are taken). The returned client is `Send`:
    /// move it to its producer thread and drive the shards directly,
    /// concurrently with this service's own batched API.
    pub fn take_client(&mut self) -> Option<ServiceClient> {
        self.spare.pop()
    }

    /// Streaming lanes still claimable.
    pub fn spare_clients(&self) -> usize {
        self.spare.len()
    }

    /// Executes a batch: addressed requests run on their owning shard
    /// (in parallel across shards, in batch order within a shard);
    /// whole-device requests are broadcast to every shard and their
    /// per-shard responses merged in shard index order. `out` is
    /// cleared and filled with one result per request, in request
    /// order; reusing the same `out` across batches keeps the steady
    /// state allocation-free. Submission streams ahead up to the ticket
    /// window — there is no whole-batch barrier.
    pub fn submit_batch_into(
        &mut self,
        reqs: &[Request],
        out: &mut Vec<Result<Response, CoreError>>,
    ) {
        self.primary.submit_batch_into(reqs, out);
    }

    /// [`ShardedService::submit_batch_into`] returning a fresh `Vec`.
    pub fn submit_batch(&mut self, reqs: &[Request]) -> Vec<Result<Response, CoreError>> {
        let mut out = Vec::new();
        self.submit_batch_into(reqs, &mut out);
        out
    }

    /// Executes one request (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`Stack::submit`], plus [`CoreError::Service`] when the pool
    /// is shut down or a shard worker died.
    pub fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        let mut out = Vec::with_capacity(1);
        self.submit_batch_into(std::slice::from_ref(req), &mut out);
        out.pop().expect("one request yields one response")
    }

    /// Runs `f` against one shard's stack (blocks while that shard is
    /// mid-burst). For maintenance that needs a concrete shard — e.g.
    /// repairing a chip failure localized to it.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&mut Stack) -> T) -> T {
        self.pool.with_state(shard, f)
    }

    /// Engine counters summed across shards (`None` if no shard has a
    /// chipkill engine).
    pub fn core_stats(&self) -> Option<CoreStats> {
        let mut total: Option<CoreStats> = None;
        for s in 0..self.shards() {
            if let Some(st) = self.pool.with_state(s, |stack| stack.core_stats()) {
                total.get_or_insert_with(CoreStats::default).merge(&st);
            }
        }
        total
    }

    /// Per-layer stats summed across shards, in each layer's first-seen
    /// order on the lowest shard that saw it.
    pub fn layers(&self) -> Vec<(LayerId, LayerStats)> {
        let mut merged: Vec<(LayerId, LayerStats)> = Vec::new();
        for s in 0..self.shards() {
            self.pool.with_state(s, |stack| {
                for &(id, st) in stack.layers() {
                    match merged.iter_mut().find(|(mid, _)| *mid == id) {
                        Some((_, acc)) => acc.merge(&st),
                        None => merged.push((id, st)),
                    }
                }
            });
        }
        merged
    }

    /// Fleet-wide tier census merged across shards (`None` if no shard
    /// runs a tiered base). The blended storage cost is region-weighted,
    /// so it matches what a single tiered rank of the same composition
    /// would report.
    pub fn tier_report(&self) -> Option<TierReport> {
        let mut total: Option<TierReport> = None;
        for s in 0..self.shards() {
            if let Some(r) = self.pool.with_state(s, |stack| stack.tier_report()) {
                match total.as_mut() {
                    Some(acc) => acc.merge(&r),
                    None => total = Some(r),
                }
            }
        }
        total
    }

    /// Folds pending telemetry samples and returns the completion-path
    /// latency histograms: `(per_shard, broadcast)`, in nanoseconds.
    pub fn latency_report(&self) -> (Vec<Histogram>, Histogram) {
        let mut tel = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
        tel.drain();
        (tel.per_shard.clone(), tel.broadcast.clone())
    }

    /// Latency samples dropped because the telemetry ring was full
    /// (lossy by design; the data path never stalls on telemetry).
    pub fn dropped_samples(&self) -> u64 {
        self.dropped_samples.load(Ordering::Relaxed)
    }

    /// Publishes the aggregated cross-shard view — per-layer counters
    /// under `<prefix>.layer.<label>.*`, engine counters under
    /// `<prefix>.engine.*` (same keys as [`Stack::publish_metrics`]) —
    /// plus the shard count under `<prefix>.shards`, the completion
    /// latency histograms under `<prefix>.latency.*` (per shard,
    /// broadcast, and merged `all`, each with p50/p99/p999), and, for
    /// tiered fleets, the per-tier and blended storage costs.
    pub fn publish_metrics(&self, reg: &MetricsRegistry, prefix: &str) {
        for (id, stats) in self.layers() {
            stats.publish_metrics(reg, &format!("{prefix}.layer.{id}"));
        }
        if let Some(core) = self.core_stats() {
            core.publish_metrics(reg, &format!("{prefix}.engine"));
        }
        reg.set_counter(&format!("{prefix}.shards"), self.shards() as u64);
        {
            let mut tel = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
            tel.drain();
            let mut all = Histogram::new();
            for (s, hist) in tel.per_shard.iter().enumerate() {
                all.merge(hist);
                reg.set_histogram(&format!("{prefix}.latency.shard{s}"), hist);
            }
            all.merge(&tel.broadcast);
            reg.set_histogram(&format!("{prefix}.latency.broadcast"), &tel.broadcast);
            reg.set_histogram(&format!("{prefix}.latency.all"), &all);
            reg.set_counter(
                &format!("{prefix}.latency.dropped_samples"),
                self.dropped_samples.load(Ordering::Relaxed),
            );
        }
        if let Some(report) = self.tier_report() {
            for tier in ProtectionTier::ALL {
                reg.set_gauge(
                    &format!("{prefix}.tier_cost.{}", tier.as_str()),
                    tier.layout().total_storage_cost(),
                );
            }
            reg.set_gauge(
                &format!("{prefix}.total_storage_cost"),
                report.blended_cost(),
            );
        }
    }

    /// Stops accepting new work, **drains** queued requests (their
    /// tickets stay redeemable), and joins the shard workers.
    /// Subsequent batches fail with
    /// [`pmck_core::ServiceFailure::QueueClosed`]; per-shard state stays
    /// readable through [`ShardedService::with_shard`] and the stats
    /// accessors.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }
}

/// The unified submission surface, backed by the service's primary
/// streaming lane: `try_submit`/`poll` stream through the same rings as
/// [`ShardedService::submit_batch`], so tickets obtained here interleave
/// correctly with batched traffic on the same lane. Existing call sites
/// keep resolving to the inherent methods of the same names.
impl pmck_core::Submitter for ShardedService {
    fn num_blocks(&self) -> u64 {
        ShardedService::num_blocks(self)
    }

    fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        ShardedService::submit(self, req)
    }

    fn try_submit(&mut self, req: &Request) -> Result<pmck_core::SubmitTicket, CoreError> {
        pmck_core::Submitter::try_submit(&mut self.primary, req)
    }

    fn poll(&mut self, ticket: pmck_core::SubmitTicket) -> Option<Result<Response, CoreError>> {
        pmck_core::Submitter::poll(&mut self.primary, ticket)
    }

    fn wait(&mut self, ticket: pmck_core::SubmitTicket) -> Result<Response, CoreError> {
        pmck_core::Submitter::wait(&mut self.primary, ticket)
    }
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.shards())
            .field("num_blocks", &self.num_blocks())
            .field("spare_clients", &self.spare.len())
            .finish()
    }
}

// The broadcast fold moved into pmck-core (`pmck_core::merge_broadcast`)
// so the cluster tier can merge node answers with the same
// order-sensitive rules; re-imported here for the client and baseline.
pub(crate) use pmck_core::merge_broadcast;

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_core::{ChipkillConfig, ReadPath, ServiceFailure, StackBuilder};
    use std::error::Error as _;

    fn svc(shards: usize, blocks_per_shard: u64, seed: u64) -> ShardedService {
        ShardedService::new(shards, seed, |_, s| {
            StackBuilder::proposal(blocks_per_shard, ChipkillConfig::default())
                .seed(s)
                .build()
        })
    }

    #[test]
    fn interleaved_round_trip_across_shards() {
        let mut svc = svc(4, 32, 1);
        assert_eq!(svc.num_blocks(), 128);
        let writes: Vec<Request> = (0..128u64)
            .map(|a| Request::Write {
                addr: a,
                data: [a as u8; 64],
            })
            .collect();
        for r in svc.submit_batch(&writes) {
            assert_eq!(r, Ok(Response::Written));
        }
        let reads: Vec<Request> = (0..128u64).map(Request::Read).collect();
        for (a, r) in svc.submit_batch(&reads).into_iter().enumerate() {
            let out = r.unwrap().read().unwrap();
            assert_eq!(out.data, [a as u8; 64], "block {a}");
            assert_eq!(out.path, ReadPath::Clean);
        }
        let stats = svc.core_stats().unwrap();
        assert_eq!(stats.reads, 128);
        assert_eq!(stats.writes, 128);
    }

    #[test]
    fn out_of_range_is_answered_inline() {
        let mut svc = svc(2, 32, 2);
        let out = svc.submit_batch(&[Request::Read(3), Request::Read(64), Request::Read(999)]);
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err(CoreError::OutOfRange(64)));
        assert_eq!(out[2], Err(CoreError::OutOfRange(999)));
    }

    #[test]
    fn broadcasts_merge_across_shards() {
        let mut svc = svc(4, 32, 3);
        let fills: Vec<Request> = (0..128u64)
            .map(|a| Request::Write {
                addr: a,
                data: [0x5A; 64],
            })
            .collect();
        svc.submit_batch(&fills);
        // Verify is AND across shards.
        assert_eq!(svc.submit(&Request::Verify), Ok(Response::Verified(true)));
        // Injection sums the per-shard flips (4 shards at a rate that
        // flips a fair number of bits each).
        let bits = svc
            .submit(&Request::InjectRber(1e-3))
            .unwrap()
            .injected_bits()
            .unwrap();
        assert!(bits > 100, "4 shards x 32 blocks at 1e-3: got {bits}");
        // Boot scrub sums its counters.
        let report = svc
            .submit(&Request::BootScrub)
            .unwrap()
            .boot_scrubbed()
            .unwrap();
        assert!(report.bits_corrected > 0);
        // A patrol step sums scrubbed blocks; every shard's 16-block
        // increment wraps its 16-block device, so the pass completes.
        let p = svc
            .submit(&Request::PatrolStep)
            .map(|r| r.patrolled())
            .unwrap_err();
        // No patrol layer in this stack: the first shard's error wins.
        assert_eq!(p, CoreError::Unsupported("patrol_step"));
    }

    #[test]
    fn boot_scrub_broadcast_merges_list_rescues() {
        use pmck_core::{AccessContext, ChipkillMemory, DecodePolicy};
        // Each shard carries one chip word with t + 1 = 23 bit errors —
        // recoverable only by the unraveling list decoder. The broadcast
        // scrub must batch-decode each shard and sum the rescue counts.
        let stacks = (0..2u64)
            .map(|shard| {
                let cfg = ChipkillConfig {
                    decode_policy: DecodePolicy::BeyondBound,
                    ..ChipkillConfig::default()
                };
                let mut mem = ChipkillMemory::new(32, cfg);
                for a in 0..mem.num_blocks() {
                    mem.write_block(a, &[shard as u8; 64]).unwrap();
                }
                for i in 0..23u64 {
                    mem.corrupt_chip_byte(0, i, 0, 1);
                }
                Stack::from_parts(Box::new(mem), AccessContext::new(shard))
            })
            .collect();
        let mut svc = ShardedService::from_stacks(stacks);
        let report = svc
            .submit(&Request::BootScrub)
            .unwrap()
            .boot_scrubbed()
            .unwrap();
        assert_eq!(report.stripes_scrubbed, 2);
        assert_eq!(report.words_with_errors, 2);
        assert_eq!(report.list_rescues, 2);
        assert_eq!(report.bits_corrected, 46);
        assert_eq!(report.chip_rebuilt, None);
        assert_eq!(svc.submit(&Request::Verify), Ok(Response::Verified(true)));
        // The rescues also surface through the aggregated engine stats.
        assert_eq!(svc.core_stats().unwrap().list_rescues, 2);
    }

    #[test]
    fn patrol_step_broadcast_sums_increments() {
        let mut svc = ShardedService::new(2, 9, |_, s| {
            StackBuilder::proposal(32, ChipkillConfig::default())
                .patrolled(32, 0)
                .seed(s)
                .build()
        });
        let r = svc
            .submit(&Request::PatrolStep)
            .unwrap()
            .patrolled()
            .unwrap();
        assert_eq!(r.blocks_scrubbed, 64);
        assert!(r.completed_pass);
    }

    #[test]
    fn flush_cut_recover_broadcasts_sum_across_persistent_shards() {
        let mut svc = ShardedService::new(4, 11, |_, s| {
            StackBuilder::proposal(16, ChipkillConfig::default())
                .persistent(pmck_core::PmemConfig::default())
                .seed(s)
                .build()
        });
        let writes: Vec<Request> = (0..64u64)
            .map(|a| Request::Write {
                addr: a,
                data: [a as u8 ^ 0x5a; 64],
            })
            .collect();
        for r in svc.submit_batch(&writes) {
            assert_eq!(r, Ok(Response::Written));
        }
        let flushed = svc
            .submit(&Request::Flush)
            .unwrap()
            .flushed_lines()
            .unwrap();
        assert!(flushed > 0, "dirty writes must flush lines");
        // Everything is fenced, so a power cut loses nothing...
        let lost = match svc.submit(&Request::PowerCut).unwrap() {
            Response::PowerLost { lost_lines } => lost_lines,
            other => panic!("expected PowerLost, got {other:?}"),
        };
        assert_eq!(lost, 0);
        let rec = svc.submit(&Request::Recover).unwrap().recovered().unwrap();
        assert!(!rec.restriped);
        // ...and every block reads back clean after recovery.
        let reads: Vec<Request> = (0..64u64).map(Request::Read).collect();
        for (a, r) in svc.submit_batch(&reads).into_iter().enumerate() {
            let out = r.unwrap().read().unwrap();
            assert_eq!(out.data, [a as u8 ^ 0x5a; 64], "block {a}");
        }
    }

    #[test]
    fn shutdown_fails_batches_with_full_error_chain() {
        let mut svc = svc(2, 8, 4);
        svc.shutdown();
        let out = svc.submit_batch(&[Request::Read(0)]);
        let err = out[0].clone().unwrap_err();
        let CoreError::Service(ref se) = err else {
            panic!("expected service error, got {err:?}");
        };
        assert_eq!(se.kind(), ServiceFailure::QueueClosed);
        // Display stays stable for corpus replay...
        assert_eq!(
            err.to_string(),
            "memory service unavailable: shard request queue is closed"
        );
        // ...while source() exposes the transport chain.
        let source = err.source().expect("service error has a source");
        let transport = source.source().expect("chain reaches the pool error");
        assert_eq!(
            transport.to_string(),
            pmck_rt::pool::PoolError::Closed.to_string()
        );
        // Shard state is still reachable for post-mortem stats.
        assert_eq!(svc.core_stats().unwrap().reads, 0);
    }

    #[test]
    fn aggregated_metrics_match_summed_layers() {
        let mut svc = svc(2, 8, 5);
        let reqs: Vec<Request> = (0..16u64)
            .map(|a| Request::Write {
                addr: a,
                data: [1; 64],
            })
            .chain((0..16u64).map(Request::Read))
            .collect();
        svc.submit_batch(&reqs);
        let reg = MetricsRegistry::new();
        svc.publish_metrics(&reg, "svc");
        assert_eq!(reg.counter("svc.layer.chipkill.reads"), 16);
        assert_eq!(reg.counter("svc.engine.writes"), 16);
        assert_eq!(reg.counter("svc.shards"), 2);
        let chipkill = svc
            .layers()
            .into_iter()
            .find(|(id, _)| *id == LayerId::Chipkill)
            .unwrap()
            .1;
        assert_eq!(chipkill.reads, 16);
        assert_eq!(chipkill.writes, 16);
    }

    #[test]
    fn tiered_fleet_merges_census_and_publishes_blended_cost() {
        use pmck_core::TierPolicy;
        let mut svc = ShardedService::new(2, 12, |_, s| {
            StackBuilder::proposal(64, ChipkillConfig::default())
                .tiered(2, TierPolicy::default())
                .seed(s)
                .build()
        });
        // Before any step, every region boots at the paper tier.
        let boot = svc.tier_report().unwrap();
        assert_eq!(boot.regions, 4);
        assert_eq!(boot.paper_regions, 4);
        // A broadcast tier step sums census and migrations across the
        // fleet: pristine regions (measured RBER 0) all step down to
        // the RS-only tier.
        let report = svc.submit(&Request::TierStep).unwrap().tiered().unwrap();
        assert_eq!(report.regions, 4);
        assert_eq!(report.rs_only_regions, 4);
        assert_eq!(report.migrations, 4);
        let reg = MetricsRegistry::new();
        svc.publish_metrics(&reg, "svc");
        let paper = ProtectionTier::Paper.layout().total_storage_cost();
        let rs_only = ProtectionTier::RsOnly.layout().total_storage_cost();
        let blended = reg.gauge("svc.total_storage_cost").unwrap();
        assert!(
            (blended - rs_only).abs() < 1e-4,
            "all-rs_only fleet: {blended}"
        );
        assert_eq!(reg.gauge("svc.tier_cost.paper"), Some(paper));
        assert_eq!(reg.gauge("svc.tier_cost.rs_only"), Some(rs_only));
        assert!(reg.gauge("svc.tier_cost.dense").unwrap() > paper);
    }

    #[test]
    fn batch_reuse_keeps_results_in_request_order() {
        let mut svc = svc(3, 8, 6);
        let mut out = Vec::new();
        for round in 0..10u64 {
            let reqs: Vec<Request> = (0..24u64)
                .map(|a| Request::Write {
                    addr: (a + round) % 24,
                    data: [round as u8; 64],
                })
                .collect();
            svc.submit_batch_into(&reqs, &mut out);
            assert_eq!(out.len(), 24);
            assert!(out.iter().all(|r| *r == Ok(Response::Written)));
        }
    }

    #[test]
    fn streaming_tickets_redeem_in_any_order() {
        let mut svc = ShardedService::with_clients(2, 1, 21, |_, s| {
            StackBuilder::proposal(16, ChipkillConfig::default())
                .seed(s)
                .build()
        });
        let mut client = svc.take_client().expect("one spare lane");
        assert!(svc.take_client().is_none());
        let t0 = client
            .try_submit(&Request::Write {
                addr: 0,
                data: [7; 64],
            })
            .unwrap();
        let t1 = client
            .try_submit(&Request::Write {
                addr: 1,
                data: [8; 64],
            })
            .unwrap();
        let t2 = client.try_submit(&Request::Read(0)).unwrap();
        assert_eq!(client.in_flight(), 3);
        // Redeem newest-first: order must not matter.
        let r2 = client.wait_response(t2);
        assert_eq!(r2.unwrap().read().unwrap().data, [7; 64]);
        assert_eq!(client.wait_response(t1), Ok(Response::Written));
        assert_eq!(client.wait_response(t0), Ok(Response::Written));
        assert_eq!(client.in_flight(), 0);
        // An out-of-range submit still yields a (failing) ticket.
        let t = client.try_submit(&Request::Read(1 << 40)).unwrap();
        assert_eq!(client.wait_response(t), Err(CoreError::OutOfRange(1 << 40)));
        // Broadcasts stream too.
        let tv = client.try_submit(&Request::Verify).unwrap();
        assert_eq!(client.wait_response(tv), Ok(Response::Verified(true)));
    }

    #[test]
    fn streaming_window_reports_backpressure() {
        let mut svc = ShardedService::with_clients(1, 1, 22, |_, s| {
            StackBuilder::proposal(8, ChipkillConfig::default())
                .seed(s)
                .build()
        });
        let mut client = svc.take_client().unwrap();
        let mut tickets = Vec::new();
        // Fill the whole ticket window without redeeming: at some point
        // admission control must push back (window or ring, whichever
        // first), and the error must be retryable Backpressure.
        let err = loop {
            match client.try_submit(&Request::Read(0)) {
                Ok(t) => tickets.push(t),
                Err(e) => break e,
            }
            assert!(tickets.len() <= client.window(), "window overran");
        };
        let CoreError::Service(se) = &err else {
            panic!("expected service error, got {err:?}");
        };
        assert_eq!(se.kind(), ServiceFailure::Backpressure);
        // Redeeming the backlog clears the pressure.
        for t in tickets.drain(..) {
            client.wait_response(t).unwrap();
        }
        assert_eq!(client.in_flight(), 0);
        let t = client.try_submit(&Request::Read(0)).unwrap();
        client.wait_response(t).unwrap();
    }

    #[test]
    fn worker_panic_fails_every_outstanding_ticket() {
        use pmck_core::{Access, AccessContext, AccessOutcome, BlockDevice};
        // A device that panics when block 3 is read: shard 1 dies mid
        // stream while earlier requests are still in flight.
        struct Grenade {
            blocks: u64,
        }
        impl BlockDevice for Grenade {
            fn id(&self) -> LayerId {
                LayerId::Chipkill
            }
            fn num_blocks(&self) -> u64 {
                self.blocks
            }
            fn access(
                &mut self,
                access: Access,
                _ctx: &mut AccessContext,
            ) -> Result<AccessOutcome, CoreError> {
                if let Access::Read(addr) = access {
                    assert!(addr != 3, "boom");
                }
                Ok(AccessOutcome::Written)
            }
        }
        let stacks: Vec<Stack> = (0..2)
            .map(|s| {
                Stack::from_parts(
                    Box::new(Grenade { blocks: 8 }),
                    pmck_core::AccessContext::new(s),
                )
            })
            .collect();
        let mut svc = ShardedService::from_stacks_with_clients(stacks, 1);
        let mut client = svc.take_client().unwrap();
        // Request stream: a few benign ops, the grenade, more ops.
        let mut tickets = Vec::new();
        for addr in [0u64, 1, 2, 7, 6] {
            tickets.push(client.try_submit(&Request::Read(addr)).unwrap());
        }
        let mut outcomes = Vec::new();
        for t in tickets {
            outcomes.push(client.wait_response(t));
        }
        // Global address 7 routes to shard 1 local 3 -> panic. Every
        // ticket resolves: benign ones may have completed, but at least
        // the post-panic ones surface WorkerLost instead of hanging.
        let lost = outcomes
            .iter()
            .filter(|r| {
                matches!(r, Err(CoreError::Service(se)) if se.kind() == ServiceFailure::WorkerLost)
            })
            .count();
        assert!(lost >= 1, "no ticket surfaced WorkerLost: {outcomes:?}");
        // The batched plane reports the poisoned pool too.
        let out = svc.submit_batch(&[Request::Read(0)]);
        assert!(
            matches!(&out[0], Err(CoreError::Service(se)) if se.kind() == ServiceFailure::WorkerLost),
            "batched plane after panic: {out:?}"
        );
    }

    #[test]
    fn shutdown_drains_submitted_requests() {
        let mut svc = ShardedService::with_clients(2, 1, 23, |_, s| {
            StackBuilder::proposal(16, ChipkillConfig::default())
                .seed(s)
                .build()
        });
        let mut client = svc.take_client().unwrap();
        let mut tickets = Vec::new();
        for a in 0..16u64 {
            tickets.push(
                client
                    .try_submit(&Request::Write {
                        addr: a,
                        data: [a as u8; 64],
                    })
                    .unwrap(),
            );
        }
        // Shut down while the writes may still be queued: the drain
        // contract says every accepted request completes.
        svc.shutdown();
        for t in tickets {
            assert_eq!(client.wait_response(t), Ok(Response::Written));
        }
        // New submissions are refused.
        let err = client.try_submit(&Request::Read(0)).unwrap_err();
        let CoreError::Service(se) = &err else {
            panic!("expected service error, got {err:?}");
        };
        assert_eq!(se.kind(), ServiceFailure::QueueClosed);
        // The drained writes really landed in the shard state.
        assert_eq!(svc.core_stats().unwrap().writes, 16);
    }

    #[test]
    fn latency_histograms_are_published() {
        let mut svc = svc(2, 16, 24);
        let reqs: Vec<Request> = (0..32u64)
            .map(|a| Request::Write {
                addr: a,
                data: [3; 64],
            })
            .chain((0..32u64).map(Request::Read))
            .collect();
        svc.submit_batch(&reqs);
        svc.submit(&Request::Verify).unwrap();
        let reg = MetricsRegistry::new();
        svc.publish_metrics(&reg, "svc");
        let all = reg.histogram("svc.latency.all").expect("latency.all");
        assert_eq!(all.count(), 65, "64 addressed + 1 broadcast");
        let p50 = all.quantile(0.50);
        let p99 = all.quantile(0.99);
        let p999 = all.quantile(0.999);
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        let bcast = reg.histogram("svc.latency.broadcast").unwrap();
        assert_eq!(bcast.count(), 1);
        assert_eq!(reg.counter("svc.latency.dropped_samples"), 0);
        let (per_shard, _) = svc.latency_report();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(per_shard[0].count() + per_shard[1].count(), 64);
    }
}
