//! The streaming submission client: tickets, backpressure, out-of-band
//! completion.
//!
//! A [`ServiceClient`] owns one private lane of SPSC rings to every
//! shard worker ([`pmck_rt::pool::ShardPool`]). Submission is a single
//! ring push; the response comes back later through the completion ring
//! and is claimed with a [`Ticket`]:
//!
//! * [`ServiceClient::try_submit`] never blocks — a full submission ring
//!   or an exhausted ticket window reports
//!   [`ServiceFailure::Backpressure`] and the caller retries after
//!   redeeming tickets;
//! * [`ServiceClient::submit`] blocks on *ring* backpressure with the
//!   spin-then-park admission control (window exhaustion still errors:
//!   only the caller can redeem tickets);
//! * [`ServiceClient::poll_response`] / [`ServiceClient::wait_response`]
//!   claim a ticket's response; tickets may be redeemed in any order.
//!
//! # Determinism
//!
//! Each `(client, shard)` pair is one FIFO ring, so a shard executes one
//! client's requests exactly in submission order — the same order a
//! sequential replay uses. Completion *claiming* is out of band, but a
//! response is computed entirely by its shard's deterministic stack, and
//! broadcast responses are buffered per shard and merged in shard index
//! order once complete, so the merged value never depends on arrival
//! timing. That is the whole determinism argument: scheduling decides
//! *when* a response is claimed, never *what* it contains.
//!
//! # The ticket window
//!
//! A client holds at most [`ServiceClient::window`] unredeemed tickets.
//! Each shard's completion ring is sized to that window, so a worker's
//! completion push always finds room (a ticket occupies at most one
//! completion slot per shard); workers therefore never block on a slow
//! client, which is what keeps one stalled producer from convoying the
//! whole service.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pmck_core::{CoreError, Request, Response, ServiceError, ServiceFailure};
use pmck_rt::pool::{PoolClient, PoolError, TrySendError};
use pmck_rt::ring::MpscProducer;

use crate::{merge_broadcast, route_addr};

/// One request tagged with the client-side slot that will absorb its
/// completion.
pub(crate) type Job = (u32, Request);
/// A shard's answer, tagged with that slot.
pub(crate) type Comp = (u32, Result<Response, CoreError>);

/// One latency sample recorded when a ticket is redeemed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LatencySample {
    /// Owning shard for addressed requests; [`BROADCAST_SHARD`] for
    /// whole-device requests.
    pub shard: u32,
    /// Submit-to-redeem latency in nanoseconds.
    pub ns: u64,
}

/// Shard tag used for broadcast latency samples.
pub(crate) const BROADCAST_SHARD: u32 = u32::MAX;

/// Unredeemed tickets a client may hold (and the per-shard completion
/// ring capacity backing them).
pub(crate) const TICKET_WINDOW: usize = 256;
/// Per-`(client, shard)` submission ring depth — the backpressure knob.
pub(crate) const SUBMIT_DEPTH: usize = 64;
/// Broadcast responses that may be in flight per client at once (each
/// needs a per-shard reassembly buffer).
const BCAST_SLOTS: usize = 16;

const NO_BCAST: u32 = u32::MAX;

/// A claim on one in-flight request's response. Redeem with
/// [`ServiceClient::poll_response`] or [`ServiceClient::wait_response`];
/// tickets from one client may be redeemed in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    slot: u32,
    seq: u64,
}

/// One ticket-window slot: where an in-flight request's completion(s)
/// land until the ticket is redeemed.
struct Slot {
    /// Which ticket generation occupies this slot (stale-ticket guard).
    seq: u64,
    busy: bool,
    /// Per-shard completions still expected before the response is
    /// ready (1 for addressed requests, `shards` for broadcasts).
    remaining: u32,
    /// Reassembly buffer index for broadcasts, else [`NO_BCAST`].
    bcast: u32,
    /// Owning shard (latency attribution); [`BROADCAST_SHARD`] for
    /// broadcasts and out-of-range rejections.
    shard: u32,
    /// Failure that pre-empts the merged response (partial broadcast
    /// submission after the pool closed mid-loop).
    fail: Option<CoreError>,
    /// Submission time; `None` for immediately-answered requests.
    started: Option<Instant>,
    ready: Option<Result<Response, CoreError>>,
}

impl Slot {
    fn vacant() -> Self {
        Slot {
            seq: 0,
            busy: false,
            remaining: 0,
            bcast: NO_BCAST,
            shard: BROADCAST_SHARD,
            fail: None,
            started: None,
            ready: None,
        }
    }
}

/// Per-shard reassembly buffer for one in-flight broadcast: responses
/// park here until every shard reported, then merge in shard index
/// order (several merge rules are order-sensitive — first error wins,
/// first rebuilt chip wins, the tier census rounds per fold).
struct BcastBuf {
    parts: Vec<Option<Result<Response, CoreError>>>,
}

/// A streaming submission endpoint. `Send` — move it to the producer
/// thread that owns it; clients never contend with each other.
pub struct ServiceClient {
    client: PoolClient<Job, Comp>,
    shard_blocks: Arc<[u64]>,
    next_seq: u64,
    outstanding: usize,
    slots: Box<[Slot]>,
    free_slots: Vec<u32>,
    bufs: Vec<BcastBuf>,
    free_bufs: Vec<u32>,
    /// Ticket FIFO scratch for [`ServiceClient::submit_batch_into`]
    /// (kept on self so the steady state is allocation-free).
    batch_fifo: VecDeque<Ticket>,
    telemetry: MpscProducer<LatencySample>,
    dropped_samples: Arc<AtomicU64>,
}

impl ServiceClient {
    pub(crate) fn new(
        client: PoolClient<Job, Comp>,
        shard_blocks: Arc<[u64]>,
        telemetry: MpscProducer<LatencySample>,
        dropped_samples: Arc<AtomicU64>,
    ) -> Self {
        let shards = shard_blocks.len();
        ServiceClient {
            client,
            shard_blocks,
            next_seq: 0,
            outstanding: 0,
            slots: (0..TICKET_WINDOW).map(|_| Slot::vacant()).collect(),
            free_slots: (0..TICKET_WINDOW as u32).rev().collect(),
            bufs: (0..BCAST_SLOTS)
                .map(|_| BcastBuf {
                    parts: vec![None; shards],
                })
                .collect(),
            free_bufs: (0..BCAST_SLOTS as u32).rev().collect(),
            batch_fifo: VecDeque::new(),
            telemetry,
            dropped_samples,
        }
    }

    /// Number of shards this client can reach.
    pub fn shards(&self) -> usize {
        self.shard_blocks.len()
    }

    /// Total capacity in blocks across all shards.
    pub fn num_blocks(&self) -> u64 {
        self.shard_blocks.iter().sum()
    }

    /// The shard and local address owning global address `addr`.
    pub fn route(&self, addr: u64) -> Option<(usize, u64)> {
        route_addr(&self.shard_blocks, addr)
    }

    /// Unredeemed tickets currently held.
    pub fn in_flight(&self) -> usize {
        self.outstanding
    }

    /// Maximum unredeemed tickets this client may hold.
    pub fn window(&self) -> usize {
        self.slots.len()
    }

    /// Submits one request without blocking and returns a [`Ticket`]
    /// for its eventual response. Out-of-range addresses still yield a
    /// ticket (redeeming it reports [`CoreError::OutOfRange`]), so batch
    /// bookkeeping stays uniform.
    ///
    /// # Errors
    ///
    /// [`ServiceFailure::Backpressure`] when the destination ring, the
    /// ticket window, or (for broadcasts) a reassembly buffer is
    /// exhausted — nothing was enqueued, retry after redeeming;
    /// [`ServiceFailure::QueueClosed`] / [`ServiceFailure::WorkerLost`]
    /// once the service is shut down or poisoned.
    pub fn try_submit(&mut self, req: &Request) -> Result<Ticket, CoreError> {
        if self.free_slots.is_empty() {
            return Err(backpressure());
        }
        match req.addr() {
            Some(addr) => match route_addr(&self.shard_blocks, addr) {
                None => Ok(self.issue_immediate(Err(CoreError::OutOfRange(addr)))),
                Some((shard, local)) => {
                    let slot = *self.free_slots.last().expect("checked non-empty");
                    match self.client.try_send(shard, (slot, req.with_addr(local))) {
                        Ok(()) => Ok(self.issue(shard as u32, NO_BCAST, 1)),
                        Err(e) => Err(send_error(&e)),
                    }
                }
            },
            None => self.try_submit_broadcast(req),
        }
    }

    /// [`ServiceClient::try_submit`] that blocks (spin, yield, park) on
    /// *ring* backpressure. Window or broadcast-buffer exhaustion still
    /// returns [`ServiceFailure::Backpressure`]: only redemption can
    /// free those, and only the caller holds the tickets.
    pub fn submit(&mut self, req: &Request) -> Result<Ticket, CoreError> {
        loop {
            let self_inflicted =
                self.free_slots.is_empty() || (req.addr().is_none() && self.free_bufs.is_empty());
            match self.try_submit(req) {
                Ok(t) => return Ok(t),
                Err(e) if is_backpressure(&e) => {
                    if self_inflicted {
                        return Err(e);
                    }
                    let watch = req
                        .addr()
                        .and_then(|a| route_addr(&self.shard_blocks, a))
                        .map(|(s, _)| s);
                    self.client.wait_progress(watch);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Claims `ticket`'s response if it is ready, without blocking.
    /// Returns `None` while the request is still in flight (or if the
    /// ticket was already redeemed). Once the service is shut down or a
    /// worker died and no completion can arrive any more, outstanding
    /// tickets resolve to the corresponding [`CoreError::Service`]
    /// instead of pending forever.
    pub fn poll_response(&mut self, ticket: Ticket) -> Option<Result<Response, CoreError>> {
        self.drain_completions();
        let idx = ticket.slot as usize;
        let slot = &mut self.slots[idx];
        if !slot.busy || slot.seq != ticket.seq {
            return None; // stale or double-redeemed ticket
        }
        if slot.ready.is_none() {
            // Still waiting on completions; if the workers are gone the
            // wait would be forever — surface the pool failure on this
            // (and by induction every) outstanding ticket.
            let pool_err = self.client.pool_error()?;
            if !self.client.workers_gone() {
                return None; // completions may still drain
            }
            self.drain_completions();
            let slot = &mut self.slots[idx];
            if slot.ready.is_none() {
                slot.ready = Some(Err(service_error(pool_err)));
                if slot.bcast != NO_BCAST {
                    self.release_buf(idx);
                }
            }
        }
        self.redeem(idx)
    }

    /// Claims `ticket`'s response, blocking (spin, yield, park) until it
    /// is ready or the service fails.
    pub fn wait_response(&mut self, ticket: Ticket) -> Result<Response, CoreError> {
        loop {
            if let Some(res) = self.poll_response(ticket) {
                return res;
            }
            self.client.wait_progress(None);
        }
    }

    /// Streams a whole batch: submits ahead up to the window, redeems in
    /// request order, and fills `out` with one result per request.
    /// Clearing and refilling the same `out` keeps the steady state
    /// allocation-free. On a service failure (shutdown, worker lost) the
    /// batch is indivisible: every slot reports the failure.
    pub fn submit_batch_into(
        &mut self,
        reqs: &[Request],
        out: &mut Vec<Result<Response, CoreError>>,
    ) {
        out.clear();
        let mut next = 0usize;
        let mut fatal: Option<CoreError> = None;
        while out.len() < reqs.len() {
            // Redeem the oldest ticket first so `out` stays in request
            // order and window slots recycle as fast as possible.
            if let Some(&front) = self.batch_fifo.front() {
                if let Some(res) = self.poll_response(front) {
                    self.batch_fifo.pop_front();
                    out.push(res);
                    continue;
                }
            }
            if next < reqs.len() {
                match self.try_submit(&reqs[next]) {
                    Ok(t) => {
                        self.batch_fifo.push_back(t);
                        next += 1;
                        continue;
                    }
                    Err(e) if is_backpressure(&e) => {}
                    Err(e) => {
                        fatal = Some(e);
                        break;
                    }
                }
            }
            // No progress possible right now: the front ticket is in
            // flight and submission is backpressured.
            assert!(
                !self.batch_fifo.is_empty() || !self.free_slots.is_empty(),
                "ticket window exhausted by tickets not owned by this batch"
            );
            self.client.wait_progress(None);
        }
        if let Some(err) = fatal {
            // Drain the tickets already issued (they resolve — workers
            // drain on shutdown, die on panic) so the window recycles,
            // then report the indivisible failure on every slot.
            while let Some(t) = self.batch_fifo.pop_front() {
                let _ = self.wait_response(t);
            }
            out.clear();
            out.resize(reqs.len(), Err(err));
        }
    }

    /// [`ServiceClient::submit_batch_into`] returning a fresh `Vec`.
    pub fn submit_batch(&mut self, reqs: &[Request]) -> Vec<Result<Response, CoreError>> {
        let mut out = Vec::new();
        self.submit_batch_into(reqs, &mut out);
        out
    }

    // --- internals -------------------------------------------------

    fn issue(&mut self, shard: u32, bcast: u32, remaining: u32) -> Ticket {
        let idx = self.free_slots.pop().expect("window checked by caller") as usize;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding += 1;
        let slot = &mut self.slots[idx];
        slot.seq = seq;
        slot.busy = true;
        slot.remaining = remaining;
        slot.bcast = bcast;
        slot.shard = shard;
        slot.fail = None;
        slot.started = Some(Instant::now());
        slot.ready = None;
        Ticket {
            slot: idx as u32,
            seq,
        }
    }

    fn issue_immediate(&mut self, res: Result<Response, CoreError>) -> Ticket {
        let t = self.issue(BROADCAST_SHARD, NO_BCAST, 0);
        let slot = &mut self.slots[t.slot as usize];
        slot.started = None; // never reached a shard: no latency sample
        slot.ready = Some(res);
        t
    }

    fn try_submit_broadcast(&mut self, req: &Request) -> Result<Ticket, CoreError> {
        let shards = self.shards();
        if self.free_bufs.is_empty() {
            return Err(backpressure());
        }
        // Reserve a slot in every shard's ring up front so a broadcast
        // is all-or-nothing under backpressure. The client is the only
        // producer on its rings, so reserved space cannot vanish.
        for s in 0..shards {
            if self.client.free_slots(s) == 0 {
                return Err(backpressure());
            }
        }
        if let Some(pe) = self.client.pool_error() {
            return Err(service_error(pe));
        }
        let buf = self.free_bufs.pop().expect("checked non-empty");
        let ticket = self.issue(BROADCAST_SHARD, buf, shards as u32);
        let slot_idx = ticket.slot;
        let mut sent = 0u32;
        let mut fail: Option<CoreError> = None;
        for s in 0..shards {
            match self.client.try_send_quiet(s, (slot_idx, *req)) {
                Ok(()) => sent += 1,
                Err(e @ (TrySendError::Closed(_) | TrySendError::WorkerLost(_))) => {
                    // The pool closed between the check above and this
                    // push: the ticket absorbs the copies already sent
                    // and resolves to the failure.
                    fail = Some(send_error(&e));
                    break;
                }
                Err(TrySendError::Full(_)) => {
                    unreachable!("broadcast ring overflow despite reservation")
                }
            }
        }
        for s in 0..sent as usize {
            self.client.signal(s);
        }
        let slot = &mut self.slots[slot_idx as usize];
        slot.remaining = sent;
        slot.fail = fail.clone();
        if sent == 0 {
            if let Some(err) = fail {
                slot.ready = Some(Err(err));
                slot.started = None;
            }
        }
        Ok(ticket)
    }

    /// Pops every claimable completion into its window slot; finished
    /// broadcasts merge in shard index order.
    fn drain_completions(&mut self) {
        while let Some((shard, (slot_idx, res))) = self.client.try_recv() {
            let idx = slot_idx as usize;
            let slot = &mut self.slots[idx];
            debug_assert!(slot.busy, "completion for a vacant slot");
            if slot.bcast == NO_BCAST {
                slot.remaining = 0;
                slot.ready = Some(res);
                continue;
            }
            self.bufs[slot.bcast as usize].parts[shard] = Some(res);
            slot.remaining -= 1;
            if slot.remaining == 0 {
                self.finish_broadcast(idx);
            }
        }
    }

    /// Merges a completed broadcast's per-shard parts in shard index
    /// order and releases the reassembly buffer.
    fn finish_broadcast(&mut self, idx: usize) {
        let buf = self.slots[idx].bcast as usize;
        let mut acc: Option<Result<Response, CoreError>> = None;
        for part in self.bufs[buf].parts.iter_mut() {
            if let Some(res) = part.take() {
                match acc.as_mut() {
                    None => acc = Some(res),
                    Some(a) => merge_broadcast(a, res),
                }
            }
        }
        let slot = &mut self.slots[idx];
        slot.ready = Some(match (slot.fail.take(), acc) {
            // A partial submission pre-empts whatever did complete.
            (Some(err), _) => Err(err),
            (None, Some(res)) => res,
            (None, None) => Err(CoreError::service(ServiceFailure::QueueClosed)),
        });
        slot.bcast = NO_BCAST;
        self.free_bufs.push(buf as u32);
    }

    /// Releases a dead ticket's reassembly buffer without merging.
    fn release_buf(&mut self, idx: usize) {
        let buf = self.slots[idx].bcast;
        if buf != NO_BCAST {
            for part in self.bufs[buf as usize].parts.iter_mut() {
                *part = None;
            }
            self.slots[idx].bcast = NO_BCAST;
            self.free_bufs.push(buf);
        }
    }

    /// Hands the ready response out and recycles the slot.
    fn redeem(&mut self, idx: usize) -> Option<Result<Response, CoreError>> {
        let slot = &mut self.slots[idx];
        let res = slot.ready.take()?;
        let shard = slot.shard;
        let started = slot.started.take();
        slot.busy = false;
        slot.seq = 0;
        self.outstanding -= 1;
        self.free_slots.push(idx as u32);
        if let Some(t0) = started {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let sample = LatencySample { shard, ns };
            if self.telemetry.try_push(sample).is_err() {
                // Telemetry is lossy by design: dropping a sample must
                // never stall the data path, only be counted.
                self.dropped_samples.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(res)
    }
}

/// The streaming side of the unified submission surface. The inherent
/// methods of the same names keep winning method resolution, so
/// existing `client.submit(..) -> Ticket` call sites are untouched; the
/// trait maps [`Ticket`] to the transport-generic
/// [`pmck_core::SubmitTicket`] (`tag` = window slot, `seq` = ticket
/// generation) and back.
impl pmck_core::Submitter for ServiceClient {
    fn num_blocks(&self) -> u64 {
        ServiceClient::num_blocks(self)
    }

    fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        let ticket = ServiceClient::submit(self, req)?;
        self.wait_response(ticket)
    }

    fn try_submit(&mut self, req: &Request) -> Result<pmck_core::SubmitTicket, CoreError> {
        ServiceClient::try_submit(self, req)
            .map(|t| pmck_core::SubmitTicket::from_parts(t.slot, t.seq))
    }

    fn poll(&mut self, ticket: pmck_core::SubmitTicket) -> Option<Result<Response, CoreError>> {
        self.poll_response(Ticket {
            slot: ticket.tag(),
            seq: ticket.seq(),
        })
    }

    fn wait(&mut self, ticket: pmck_core::SubmitTicket) -> Result<Response, CoreError> {
        self.wait_response(Ticket {
            slot: ticket.tag(),
            seq: ticket.seq(),
        })
    }
}

impl std::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient")
            .field("shards", &self.shards())
            .field("in_flight", &self.outstanding)
            .field("window", &self.slots.len())
            .finish()
    }
}

fn backpressure() -> CoreError {
    CoreError::service(ServiceFailure::Backpressure)
}

/// Whether an error is retryable admission-control backpressure.
pub(crate) fn is_backpressure(e: &CoreError) -> bool {
    matches!(e, CoreError::Service(se) if se.kind() == ServiceFailure::Backpressure)
}

fn service_error(pool_err: PoolError) -> CoreError {
    CoreError::Service(ServiceError::with_source(
        match pool_err {
            PoolError::Closed => ServiceFailure::QueueClosed,
            PoolError::WorkerPanicked => ServiceFailure::WorkerLost,
        },
        Arc::new(pool_err),
    ))
}

fn send_error<J>(e: &TrySendError<J>) -> CoreError {
    match e.pool_error() {
        Some(pe) => service_error(pe),
        None => backpressure(),
    }
}
