//! The batched `PinnedPool` service — kept as the measuring stick.
//!
//! [`BatchService`] is the PR 5 transport: `Mutex`+`Condvar` mailboxes,
//! one lock per shard per batch, and a whole-batch barrier (the caller
//! blocks until the slowest shard drains). It is correct and simple,
//! which is exactly what a baseline should be: the `saturate` bench runs
//! the same workloads against [`BatchService`] and the ring-based
//! [`crate::ShardedService`] and reports the throughput ratio.
//!
//! The request routing, broadcast merge, and determinism model are
//! identical to the streaming service (both delegate to the same
//! helpers), so any measured difference is the transport.

use std::sync::Arc;

use pmck_core::{CoreError, CoreStats, Request, Response, ServiceError, ServiceFailure, Stack};
use pmck_rt::pool::{PinnedPool, PoolError};
use pmck_rt::rng::stream_seed;

use crate::{merge_broadcast, route_addr};

/// One request tagged with its position in the submitted batch.
type Job = (u32, Request);
/// The shard's answer, tagged with the same position.
type JobResult = (u32, Result<Response, CoreError>);

/// A sharded front end over N independent [`Stack`]s with **batched**
/// submission: every batch takes each shard's mailbox lock once, wakes
/// the workers through a condvar, and waits for the whole batch before
/// returning.
pub struct BatchService {
    pool: PinnedPool<Stack, Job, JobResult>,
    /// Per-shard capacity in blocks (local addresses).
    shard_blocks: Vec<u64>,
    /// Whether `out[i]` holds a real response yet (reused per batch).
    filled: Vec<bool>,
    /// Ticket bookkeeping for the eager [`pmck_core::Submitter`] surface.
    tickets: pmck_core::EagerTickets,
}

impl BatchService {
    /// Builds `shards` stacks with `make(shard, shard_seed)` and spawns
    /// one pinned worker per shard; `shard_seed` is stream `shard` of
    /// `seed` ([`stream_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, seed: u64, mut make: impl FnMut(usize, u64) -> Stack) -> Self {
        assert!(shards > 0, "service needs at least one shard");
        let stacks: Vec<Stack> = (0..shards)
            .map(|s| make(s, stream_seed(seed, s as u64)))
            .collect();
        Self::from_stacks(stacks)
    }

    /// Wraps pre-built stacks directly (one shard per stack).
    ///
    /// # Panics
    ///
    /// Panics if `stacks` is empty.
    pub fn from_stacks(stacks: Vec<Stack>) -> Self {
        let shard_blocks: Vec<u64> = stacks.iter().map(Stack::num_blocks).collect();
        let pool = PinnedPool::new(stacks, |_, stack: &mut Stack, (idx, req): Job| {
            (idx, stack.submit(&req))
        });
        BatchService {
            pool,
            shard_blocks,
            filled: Vec::new(),
            tickets: pmck_core::EagerTickets::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_blocks.len()
    }

    /// Total capacity in blocks across all shards.
    pub fn num_blocks(&self) -> u64 {
        self.shard_blocks.iter().sum()
    }

    /// The shard and local address owning global address `addr`.
    pub fn route(&self, addr: u64) -> Option<(usize, u64)> {
        route_addr(&self.shard_blocks, addr)
    }

    /// Executes a batch behind the whole-batch barrier; `out` is cleared
    /// and filled with one result per request, in request order.
    ///
    /// **Deprecation note:** new code should program against the
    /// [`pmck_core::Submitter`] surface (which `BatchService` also
    /// implements) instead of calling the batch methods directly; the
    /// direct batch API remains only for the `saturate` benchmark and
    /// existing comparisons against the PR 5 transport.
    pub fn submit_batch_into(
        &mut self,
        reqs: &[Request],
        out: &mut Vec<Result<Response, CoreError>>,
    ) {
        const PENDING: Result<Response, CoreError> = Err(CoreError::Unsupported("pending"));
        out.clear();
        out.resize(reqs.len(), PENDING);
        self.filled.clear();
        self.filled.resize(reqs.len(), false);
        let shards = self.shards();
        for (i, req) in reqs.iter().enumerate() {
            let idx = u32::try_from(i).expect("batch longer than u32::MAX");
            match req.addr() {
                Some(addr) => match self.route(addr) {
                    Some((shard, local)) => self.pool.stage(shard, (idx, req.with_addr(local))),
                    None => {
                        out[i] = Err(CoreError::OutOfRange(addr));
                        self.filled[i] = true;
                    }
                },
                None => {
                    for shard in 0..shards {
                        self.pool.stage(shard, (idx, *req));
                    }
                }
            }
        }
        let filled = &mut self.filled;
        let run = self.pool.run(|_, (idx, res)| {
            let i = idx as usize;
            if filled[i] {
                merge_broadcast(&mut out[i], res);
            } else {
                out[i] = res;
                filled[i] = true;
            }
        });
        if let Err(pool_err) = run {
            // The batch is indivisible from the client's view: if the
            // pool failed, every slot reports the service failure.
            let err = CoreError::Service(ServiceError::with_source(
                match pool_err {
                    PoolError::Closed => ServiceFailure::QueueClosed,
                    PoolError::WorkerPanicked => ServiceFailure::WorkerLost,
                },
                Arc::new(pool_err),
            ));
            for slot in out.iter_mut() {
                *slot = Err(err.clone());
            }
        }
    }

    /// [`BatchService::submit_batch_into`] returning a fresh `Vec`.
    ///
    /// **Deprecation note:** prefer the [`pmck_core::Submitter`]
    /// surface; see [`BatchService::submit_batch_into`].
    pub fn submit_batch(&mut self, reqs: &[Request]) -> Vec<Result<Response, CoreError>> {
        let mut out = Vec::new();
        self.submit_batch_into(reqs, &mut out);
        out
    }

    /// Executes one request (a batch of one).
    ///
    /// # Errors
    ///
    /// As [`Stack::submit`], plus [`CoreError::Service`] when the pool
    /// is shut down or a shard worker died.
    pub fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        let mut out = Vec::with_capacity(1);
        self.submit_batch_into(std::slice::from_ref(req), &mut out);
        out.pop().expect("one request yields one response")
    }

    /// Runs `f` against one shard's stack.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&mut Stack) -> T) -> T {
        self.pool.with_state(shard, f)
    }

    /// Engine counters summed across shards.
    pub fn core_stats(&self) -> Option<CoreStats> {
        let mut total: Option<CoreStats> = None;
        for s in 0..self.shards() {
            if let Some(st) = self.pool.with_state(s, |stack| stack.core_stats()) {
                total.get_or_insert_with(CoreStats::default).merge(&st);
            }
        }
        total
    }

    /// Stops and joins the shard workers.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }
}

/// The unified submission surface over the barrier transport: each
/// request runs as a batch of one, eagerly, so tickets are immediately
/// redeemable and backpressure never occurs. This is the recommended
/// way to drive a `BatchService`; the direct batch methods survive for
/// the `saturate` comparison only.
impl pmck_core::Submitter for BatchService {
    fn num_blocks(&self) -> u64 {
        BatchService::num_blocks(self)
    }

    fn submit(&mut self, req: &Request) -> Result<Response, CoreError> {
        BatchService::submit(self, req)
    }

    fn try_submit(&mut self, req: &Request) -> Result<pmck_core::SubmitTicket, CoreError> {
        let res = BatchService::submit(self, req);
        Ok(self.tickets.issue(res))
    }

    fn poll(&mut self, ticket: pmck_core::SubmitTicket) -> Option<Result<Response, CoreError>> {
        self.tickets.claim(ticket)
    }
}

impl std::fmt::Debug for BatchService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchService")
            .field("shards", &self.shards())
            .field("num_blocks", &self.num_blocks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_core::{ChipkillConfig, StackBuilder};

    #[test]
    fn batch_service_round_trips_and_matches_streaming_routing() {
        let mut svc = BatchService::new(4, 7, |_, s| {
            StackBuilder::proposal(32, ChipkillConfig::default())
                .seed(s)
                .build()
        });
        assert_eq!(svc.num_blocks(), 128);
        assert_eq!(svc.route(5), Some((1, 1)));
        let writes: Vec<Request> = (0..64u64)
            .map(|a| Request::Write {
                addr: a,
                data: [a as u8; 64],
            })
            .collect();
        for r in svc.submit_batch(&writes) {
            assert_eq!(r, Ok(Response::Written));
        }
        let reads: Vec<Request> = (0..64u64).map(Request::Read).collect();
        for (a, r) in svc.submit_batch(&reads).into_iter().enumerate() {
            assert_eq!(r.unwrap().read().unwrap().data, [a as u8; 64]);
        }
        assert_eq!(svc.core_stats().unwrap().reads, 64);
        svc.shutdown();
        let out = svc.submit_batch(&[Request::Read(0)]);
        assert!(matches!(out[0], Err(CoreError::Service(_))));
    }
}
