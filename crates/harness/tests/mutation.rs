//! Mutation self-check: the harness must catch a deliberately broken
//! decoder, shrink the counterexample to its minimal form, persist it,
//! and replay it from the corpus on the next run.
//!
//! The mutant emulates a decoder that forgets to apply corrections when
//! more than one symbol is in error — it still *claims* success, which
//! is exactly the class of silent bug the differential campaigns exist
//! to catch.

use std::fs;
use std::path::PathBuf;

use pmck_harness::{ByteErrorCase, Case, Runner};
use pmck_rs::RsCode;
use pmck_rt::rng::{Rng, StdRng};
use pmck_rt::Json;

/// MUTANT: applies corrections only for single-error words, but reports
/// success for anything the real decoder accepts.
fn mutant_decode(code: &RsCode, word: &mut [u8]) -> bool {
    let mut scratch = word.to_vec();
    match code.decode(&mut scratch) {
        Ok(out) if out.num_corrections() <= 1 => {
            word.copy_from_slice(&scratch);
            true
        }
        Ok(_) => true, // the bug: claims success without fixing the word
        Err(_) => false,
    }
}

fn gen_case(rng: &mut StdRng, code: &RsCode) -> ByteErrorCase {
    let mut data = vec![0u8; code.data_symbols()];
    rng.fill_bytes(&mut data);
    let num_errors = rng.gen_range(0usize..=3);
    let mut errors: Vec<(usize, u8)> = Vec::with_capacity(num_errors);
    while errors.len() < num_errors {
        let p = rng.gen_range(0usize..code.len());
        if !errors.iter().any(|&(q, _)| q == p) {
            errors.push((p, rng.gen_range(1u32..256) as u8));
        }
    }
    ByteErrorCase { data, errors }
}

#[test]
fn broken_decoder_is_caught_shrunk_persisted_and_replayed() {
    let code = RsCode::per_block();
    let dir: PathBuf =
        std::env::temp_dir().join(format!("pmck-mutation-corpus-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let prop = |case: &ByteErrorCase| {
        let mut word = case.corrupted(&code);
        if mutant_decode(&code, &mut word) && !code.is_codeword(&word) {
            return Err(format!(
                "mutant claimed success but left a non-codeword ({} errors)",
                case.errors.len()
            ));
        }
        Ok(())
    };

    let failure = Runner::new("mutation:rs:unapplied-corrections")
        .seed(7)
        .cases(2_000)
        .corpus_dir(&dir)
        .try_run(|rng| gen_case(rng, &code), prop)
        .expect_err("the mutant must be caught within 2000 cases");

    // Shrinking must reach the minimal counterexample: all-zero data and
    // exactly two single-bit errors (one error is correctly handled).
    assert!(!failure.from_corpus);
    assert_eq!(
        failure.case.errors.len(),
        2,
        "shrunk to the failure boundary"
    );
    assert!(
        failure.case.data.iter().all(|&b| b == 0),
        "data shrunk to zeros"
    );
    for &(_, mask) in &failure.case.errors {
        assert_eq!(mask.count_ones(), 1, "masks shrunk to single bits");
    }
    assert!(failure.shrink_steps > 0);

    // The counterexample must be on disk, well-formed, and decodable.
    let path = failure
        .persisted
        .as_ref()
        .expect("failure must be persisted");
    assert!(path.exists());
    let doc = Json::parse(&fs::read_to_string(path).unwrap()).unwrap();
    assert_eq!(
        doc.get("prop").and_then(Json::as_str),
        Some("mutation:rs:unapplied-corrections")
    );
    let replayable = ByteErrorCase::from_json(doc.get("case").unwrap()).unwrap();
    assert_eq!(replayable, failure.case);

    // A second run replays the corpus and fails before generating
    // anything (cases(0) proves replay alone catches the mutant).
    let replay = Runner::new("mutation:rs:unapplied-corrections")
        .seed(999)
        .cases(0)
        .corpus_dir(&dir)
        .try_run(|rng| gen_case(rng, &code), prop)
        .expect_err("corpus replay must re-catch the mutant");
    assert!(replay.from_corpus);
    assert_eq!(replay.case, failure.case);

    fs::remove_dir_all(&dir).unwrap();
}

/// The unmutated production decoder passes the same property, so the
/// mutation test demonstrates detection power rather than a vacuously
/// failing property.
#[test]
fn unmutated_decoder_passes_the_same_property() {
    let code = RsCode::per_block();
    let dir: PathBuf =
        std::env::temp_dir().join(format!("pmck-mutation-clean-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let report = Runner::new("mutation:rs:control")
        .seed(7)
        .cases(2_000)
        .corpus_dir(&dir)
        .run(
            |rng| gen_case(rng, &code),
            |case| {
                let mut word = case.corrupted(&code);
                match code.decode(&mut word) {
                    Ok(_) if code.is_codeword(&word) => Ok(()),
                    Ok(_) => Err("accepted but off-codeword".into()),
                    Err(_) => Err(format!("{} errors must decode", case.errors.len())),
                }
            },
        );
    assert_eq!(report.generated, 2_000);
    let _ = fs::remove_dir_all(&dir);
}
