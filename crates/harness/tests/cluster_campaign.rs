//! Differential campaign for the replicated `pmck-cluster` tier.
//!
//! Every [`ClusterPlan`] replays one seeded logical request stream into
//! three observers at once:
//!
//! 1. a **3-node cluster** of real multi-threaded [`ShardedService`]s
//!    (2 shards each, 2 replicas per block, driven through the quorum
//!    read/write protocol),
//! 2. a **single-node reference** [`Stack`] executing the same logical
//!    stream sequentially, and
//! 3. a pure **mirror** (`Vec<[u8; 64]>`) of what the stream wrote.
//!
//! The invariant is bit-identity: at every read and again after the
//! closing anti-entropy sweep, the cluster's logical contents must
//! equal the reference replay and the mirror — the determinism pin for
//! the replicated tier. Scenarios disturb only the cluster's topology
//! or media, never the logical stream:
//!
//! * **clean** — no disturbance.
//! * **node-loss** — a node dies at 35% of the span and is revived at
//!   70%; writes it missed are tracked stale, the rebuild walks them,
//!   and afterwards *every* replica on *every* node must serve its
//!   block directly (full post-recovery decodability).
//! * **slow-replica** — a node is suspended at 30% and resumed at 60%;
//!   the closing sweep must heal everything it missed.
//! * **fault-mix** — a seeded [`FaultSchedule`] fires a correlated
//!   DDR4-style mix: a small correctable burst applied to every node
//!   *and* the reference (both must correct through their local ECC),
//!   plus a two-stage failure on one node only — a row fault on a chip
//!   that later dies outright. The dead chip makes that node's rank
//!   read-only, so remote read-repair bounces and defers to staleness
//!   tracking until the local boot-scrub rebuild wins the race at
//!   80% — after which the sweep lands the deferred heals.
//!
//! Failures shrink (toward shorter spans) and persist into
//! `tests/corpus/`; the checked-in crafted entry pins the node-loss
//! scenario on seed 0.

use std::cell::RefCell;
use std::collections::HashMap;

use pmck_cluster::{Cluster, ClusterConfig, NodeStatus};
use pmck_core::{ChipkillConfig, Request, Stack, StackBuilder};
use pmck_harness::{
    ChipFailureKind, ClusterPlan, ClusterScenario, FaultKind, FaultSchedule, Runner,
};
use pmck_rt::rng::{stream_seed, Rng, StdRng};

const NODES: usize = 3;
const SHARDS: usize = 2;
const BLOCKS: u64 = 48;
const REPLICAS: usize = 2;
/// Fresh cases: every scenario × every seed, exactly once.
const SEEDS: u64 = 3;
const CASES: usize = ClusterScenario::ALL.len() * SEEDS as usize;
/// Operations per case (the crafted corpus entry uses the same span).
const CYCLES: u64 = 200;
/// The chip the fault-mix scenario kills on one node.
const DEAD_CHIP: usize = 3;

fn pattern(seed: u64, addr: u64, salt: u8) -> [u8; 64] {
    let mut data = [0u8; 64];
    for (i, byte) in data.iter_mut().enumerate() {
        *byte = (seed as u8)
            .wrapping_mul(89)
            .wrapping_add((addr as u8).wrapping_mul(37))
            .wrapping_add(i as u8)
            ^ salt;
    }
    data
}

/// The scenario's fault schedule, anchored to fixed fractions of the
/// span. Empty for everything but the fault mix.
fn schedule_for(plan: &ClusterPlan) -> FaultSchedule {
    if plan.scenario != ClusterScenario::FaultMix {
        return FaultSchedule::new();
    }
    FaultSchedule::new()
        .with(
            plan.cycles * 20 / 100,
            FaultKind::Burst {
                bits: 3,
                width_bits: 24,
                chip: Some(2),
            },
        )
        .with(
            plan.cycles * 40 / 100,
            FaultKind::RowFault {
                chip: DEAD_CHIP,
                stripe: 0,
                rber: 0.15,
            },
        )
        .with(
            plan.cycles * 50 / 100,
            FaultKind::ChipKill {
                chip: DEAD_CHIP,
                kind: ChipFailureKind::RandomGarbage,
            },
        )
}

fn run_plan(plan: &ClusterPlan) -> Result<(), String> {
    let cfg = ClusterConfig {
        replicas: REPLICAS,
        write_quorum: 1,
        read_quorum: 1,
    };
    let mut cluster = Cluster::sharded(NODES, SHARDS, BLOCKS, stream_seed(plan.seed, 1), cfg);
    let mut reference = StackBuilder::proposal(BLOCKS, ChipkillConfig::default())
        .seed(stream_seed(plan.seed, 2))
        .build();
    let mut mirror = vec![[0u8; 64]; BLOCKS as usize];

    let result = run_plan_inner(plan, &mut cluster, &mut reference, &mut mirror);
    cluster.shutdown_nodes();
    result
}

fn run_plan_inner(
    plan: &ClusterPlan,
    cluster: &mut Cluster<pmck_service::ShardedService>,
    reference: &mut Stack,
    mirror: &mut [[u8; 64]],
) -> Result<(), String> {
    // Identical fill on all three observers.
    for addr in 0..BLOCKS {
        let data = pattern(plan.seed, addr, 0x00);
        cluster
            .write_block(addr, &data)
            .map_err(|e| format!("cluster fill {addr}: {e}"))?;
        reference
            .submit(&Request::Write { addr, data })
            .map_err(|e| format!("reference fill {addr}: {e}"))?;
        mirror[addr as usize] = data;
    }

    let schedule = schedule_for(plan);
    // The disturbed node: derived from the seed so every node index
    // gets exercised across the seed sweep.
    let victim = (plan.seed % NODES as u64) as usize;
    let kill_at = plan.cycles * 35 / 100;
    let revive_at = plan.cycles * 70 / 100;
    let suspend_at = plan.cycles * 30 / 100;
    let resume_at = plan.cycles * 60 / 100;
    let heal_at = plan.cycles * 80 / 100;

    let mut rng = StdRng::seed_from_u64(stream_seed(plan.seed, 3));
    for cycle in 0..plan.cycles {
        match plan.scenario {
            ClusterScenario::Clean => {}
            ClusterScenario::NodeLoss => {
                if cycle == kill_at {
                    cluster.kill_node(victim);
                } else if cycle == revive_at {
                    cluster.revive_node(victim);
                    cluster
                        .rebuild_node(victim)
                        .map_err(|e| format!("cycle {cycle}: rebuild: {e}"))?;
                }
            }
            ClusterScenario::SlowReplica => {
                if cycle == suspend_at {
                    cluster.suspend_node(victim);
                } else if cycle == resume_at {
                    cluster.resume_node(victim);
                }
            }
            ClusterScenario::FaultMix => {
                for event in schedule.events_in(cycle, cycle + 1) {
                    match event.kind {
                        FaultKind::ChipKill { .. } | FaultKind::RowFault { .. } => {
                            // The correlated progression — a row fault
                            // on a chip that later dies outright — hits
                            // ONE node; its replicas keep serving
                            // through erasure while remote read-repair
                            // and the local rebuild race. The row
                            // fault exceeds the RS threshold, so the
                            // victim's rank goes read-only on
                            // detection and write-backs defer to
                            // staleness tracking.
                            cluster
                                .node_mut(victim)
                                .submit(&Request::Fault(*event))
                                .map_err(|e| format!("cycle {cycle}: node fault: {e}"))?;
                        }
                        _ => {
                            // Small correctable background bursts hit
                            // every node and the reference alike.
                            cluster
                                .broadcast(&Request::Fault(*event))
                                .map_err(|e| format!("cycle {cycle}: cluster fault: {e}"))?;
                            reference
                                .submit(&Request::Fault(*event))
                                .map_err(|e| format!("cycle {cycle}: reference fault: {e}"))?;
                        }
                    }
                }
                if cycle == heal_at {
                    // Local repair wins the race: the boot scrub detects
                    // the dead chip and rebuilds it through RS erasure.
                    cluster
                        .node_mut(victim)
                        .submit(&Request::BootScrub)
                        .map_err(|e| format!("cycle {cycle}: boot scrub: {e}"))?;
                }
            }
        }

        let addr = rng.gen_range(0..BLOCKS);
        if rng.gen_bool(0.6) {
            let data = pattern(plan.seed, addr, cycle as u8 | 1);
            cluster
                .write_block(addr, &data)
                .map_err(|e| format!("cycle {cycle}: cluster write {addr}: {e}"))?;
            reference
                .submit(&Request::Write { addr, data })
                .map_err(|e| format!("cycle {cycle}: reference write {addr}: {e}"))?;
            mirror[addr as usize] = data;
        } else {
            let got = cluster
                .read_block(addr)
                .map_err(|e| format!("cycle {cycle}: cluster read {addr}: {e}"))?;
            if got.data != mirror[addr as usize] {
                return Err(format!(
                    "cycle {cycle}: cluster read {addr} diverged from the mirror \
                     (served by replica {} via {:?})",
                    got.replica, got.path
                ));
            }
        }
    }

    // Close out the scenario: everything revived, chip healed (a short
    // span can end before its own heal points fire).
    if cluster.node_status(victim) != NodeStatus::Up {
        cluster.revive_node(victim);
        cluster
            .rebuild_node(victim)
            .map_err(|e| format!("closing rebuild: {e}"))?;
    }
    if plan.scenario == ClusterScenario::FaultMix && plan.cycles <= heal_at {
        cluster
            .node_mut(victim)
            .submit(&Request::BootScrub)
            .map_err(|e| format!("closing boot scrub: {e}"))?;
    }
    let report = cluster.anti_entropy_sweep();
    if report.unreadable != 0 {
        return Err(format!(
            "sweep left {} of {} blocks unreadable",
            report.unreadable, report.blocks
        ));
    }
    // Per-block scrubs restore the RS layer but leave latent bit
    // errors in regions only the boot tier covers (per-chip VLEWs,
    // bonus blocks); a rank-wide boot scrub on every node — and the
    // reference — restores full code-bit consistency before the
    // verify, mirroring the single-node engine tests.
    cluster
        .broadcast(&Request::BootScrub)
        .map_err(|e| format!("closing cluster boot scrub: {e}"))?;
    reference
        .submit(&Request::BootScrub)
        .map_err(|e| format!("closing reference boot scrub: {e}"))?;

    // The differential pin: cluster ≡ reference replay ≡ mirror.
    for addr in 0..BLOCKS {
        let got = cluster
            .read_block(addr)
            .map_err(|e| format!("final cluster read {addr}: {e}"))?;
        if got.data != mirror[addr as usize] {
            return Err(format!(
                "final cluster read {addr} diverged from the mirror"
            ));
        }
        let reference_data = reference
            .submit(&Request::Read(addr))
            .map_err(|e| format!("final reference read {addr}: {e}"))?
            .read()
            .ok_or("reference read shape")?
            .data;
        if reference_data != mirror[addr as usize] {
            return Err(format!(
                "final reference read {addr} diverged from the mirror"
            ));
        }
    }

    // Post-recovery decodability: every replica on every node serves
    // its block directly, and every node's code bits verify.
    for addr in 0..BLOCKS {
        for r in 0..REPLICAS {
            let (n, local) = cluster.place(addr, r);
            let out = cluster
                .node_mut(n)
                .submit(&Request::Read(local))
                .map_err(|e| format!("replica {r} of {addr} (node {n}): {e}"))?
                .read()
                .ok_or("replica read shape")?;
            if out.data != mirror[addr as usize] {
                return Err(format!(
                    "replica {r} of block {addr} on node {n} serves stale data"
                ));
            }
        }
    }
    match cluster.verify_all() {
        Ok(true) => Ok(()),
        Ok(false) => Err("post-recovery verify failed on some node".into()),
        Err(e) => Err(format!("verify_all: {e}")),
    }
}

/// 3 seeds × {clean, node-loss, slow-replica, fault-mix}, plus the
/// crafted node-loss corpus entry, each holding the three-way
/// bit-identity and full post-recovery decodability.
#[test]
fn cluster_matches_single_node_replay_across_scenarios() {
    let runs: RefCell<HashMap<&'static str, usize>> = RefCell::new(HashMap::new());
    let next: RefCell<usize> = RefCell::new(0);

    let report = Runner::new("cluster:differential")
        .seed(0xC1)
        .cases(CASES)
        .run(
            |_rng| {
                // Enumerate the scenario × seed grid exactly once each
                // instead of sampling it; the grid is the spec.
                let idx = {
                    let mut n = next.borrow_mut();
                    let idx = *n;
                    *n += 1;
                    idx
                };
                ClusterPlan {
                    scenario: ClusterScenario::ALL[idx % ClusterScenario::ALL.len()],
                    seed: (idx / ClusterScenario::ALL.len()) as u64 % SEEDS,
                    cycles: CYCLES,
                }
            },
            |case| {
                let out = run_plan(case);
                if out.is_ok() {
                    *runs.borrow_mut().entry(case.scenario.name()).or_insert(0) += 1;
                }
                out
            },
        );

    assert_eq!(report.generated, CASES);
    assert!(
        report.corpus_replayed >= 1,
        "the crafted node-loss corpus entry did not replay"
    );
    for scenario in ClusterScenario::ALL {
        let n = runs.borrow().get(scenario.name()).copied().unwrap_or(0);
        assert!(
            n >= SEEDS as usize,
            "scenario {} ran only {n} cases",
            scenario.name()
        );
    }
}
