//! Power-cut crash-recovery campaign over the persistence domain.
//!
//! For every [`CrashPlan`] the property runs the two-run protocol:
//!
//! 1. **Reference run** — build a persistent stack, bring it to the
//!    operation's checkpoint (filled, prerequisites injected, flushed),
//!    mirror its contents (`pre`), run the durable operation while
//!    counting fuse steps (`S` = durable 8-byte chunk writes), mirror
//!    again (`post`).
//! 2. **Cut run** — rebuild identically through the checkpoint, arm the
//!    media fuse at `k ∈ [0, S]`, run the same operation (the media dies
//!    silently after `k` chunk writes), cut power, recover, and read
//!    every block back.
//!
//! The invariant: recovery must always succeed, every block must decode
//! cleanly, and the recovered image must equal the `pre` mirror or the
//! `post` mirror *wholly* — a torn mixture of the two is a failed
//! crash-atomicity guarantee.
//!
//! Reference runs are cached per `(op, seed)`, so the campaign affords
//! thousands of cut points. Failures shrink (toward early cuts) and
//! persist into `tests/corpus/` like every other property in the
//! workspace; the checked-in crafted entries pin the torn re-stripe
//! map-commit (a cut between the stripe writes and the final meta-line
//! chunks) and the matching tail of a tier migration's commit fence.
//!
//! The tier-migrate leg additionally asserts the recovered *census*:
//! the region must come back at exactly the pre- or post-migration
//! tier, and the tier must agree with whichever image recovered.

use std::cell::RefCell;
use std::collections::HashMap;

use pmck_core::{
    ChipFailureKind, ChipkillConfig, PmemConfig, ProtectionTier, Request, Stack, StackBuilder,
    TierPolicy,
};
use pmck_harness::{CrashOp, CrashPlan, FaultEvent, FaultKind, Runner};
use pmck_rt::Rng;

const BLOCKS: u64 = 16;
/// Seeds per operation; keys the reference-run cache.
const SEEDS_PER_OP: u64 = 3;
/// Fresh cases to generate — the acceptance floor is 2,000 cut points.
const CASES: usize = 2_048;

fn build(op: CrashOp, seed: u64) -> Stack {
    let builder =
        StackBuilder::proposal(BLOCKS, ChipkillConfig::default()).persistent(PmemConfig::default());
    let builder = match op {
        // Small interval so the op's write burst actually moves the gap.
        CrashOp::StartGap => builder.wear_levelled(4),
        CrashOp::Restripe => builder.restripeable(),
        // One region: the fuse hook targets region 0's media, and a
        // single region keeps every durable step on the armed domain.
        CrashOp::TierMigrate => builder.tiered(1, TierPolicy::default()),
        _ => builder,
    };
    builder.seed(seed).build()
}

fn pattern(seed: u64, addr: u64, salt: u8) -> [u8; 64] {
    let mut data = [0u8; 64];
    for (i, byte) in data.iter_mut().enumerate() {
        *byte = (seed as u8)
            .wrapping_mul(97)
            .wrapping_add((addr as u8).wrapping_mul(31))
            .wrapping_add(i as u8)
            ^ salt;
    }
    data
}

fn chip_kill(chip: usize) -> Request {
    Request::Fault(FaultEvent {
        at_cycle: 0,
        kind: FaultKind::ChipKill {
            chip,
            kind: ChipFailureKind::RandomGarbage,
        },
    })
}

/// Brings a fresh stack to the operation's checkpoint: filled with the
/// seed pattern, prerequisite faults injected, everything flushed. The
/// checkpoint is the `pre` recovery target.
fn checkpoint(op: CrashOp, seed: u64) -> Result<Stack, String> {
    let mut stack = build(op, seed);
    for addr in 0..BLOCKS {
        let data = pattern(seed, addr, 0x00);
        stack
            .submit(&Request::Write { addr, data })
            .map_err(|e| format!("checkpoint write {addr}: {e}"))?;
    }
    if op == CrashOp::Restripe {
        // The re-stripe needs a dead rank, and the flip must start from
        // a durable state that already knows about it.
        stack
            .submit(&chip_kill(2))
            .map_err(|e| format!("checkpoint fault: {e}"))?;
    }
    stack
        .flush()
        .map_err(|e| format!("checkpoint flush: {e}"))?;
    Ok(stack)
}

/// The durable operation under test — everything past the checkpoint.
/// Runs identically whether the media is alive or silently dead.
fn run_op(stack: &mut Stack, op: CrashOp, seed: u64) -> Result<(), String> {
    match op {
        CrashOp::EurDrain => {
            // Fresh data populates the EUR with code deltas; the flush
            // drains them and fences the dirty lines.
            for addr in 0..BLOCKS {
                let data = pattern(seed, addr, 0xa5);
                stack
                    .submit(&Request::Write { addr, data })
                    .map_err(|e| format!("eur write {addr}: {e}"))?;
            }
            stack.flush().map_err(|e| format!("eur flush: {e}"))?;
        }
        CrashOp::Repair => {
            // Kill a chip and repair the whole rank in place. The
            // rebuild restores the exact checkpoint bytes (compare-skip
            // staging would fence nothing), so half the blocks also take
            // fresh data: the flush persists repaired lines and new
            // lines under one intent-log record.
            stack
                .submit(&chip_kill(5))
                .map_err(|e| format!("repair fault: {e}"))?;
            stack
                .submit(&Request::BootScrub)
                .map_err(|e| format!("repair scrub: {e}"))?;
            for addr in (0..BLOCKS).step_by(2) {
                let data = pattern(seed, addr, 0x7e);
                stack
                    .submit(&Request::Write { addr, data })
                    .map_err(|e| format!("repair write {addr}: {e}"))?;
            }
            stack.flush().map_err(|e| format!("repair flush: {e}"))?;
        }
        CrashOp::StartGap => {
            // Enough writes to trigger several gap moves, then persist
            // the moved image plus the wear position in the meta line.
            for i in 0..(2 * BLOCKS) {
                let addr = i % BLOCKS;
                let data = pattern(seed, addr, 0x3c);
                stack
                    .submit(&Request::Write { addr, data })
                    .map_err(|e| format!("start-gap write {i}: {e}"))?;
            }
            stack.flush().map_err(|e| format!("start-gap flush: {e}"))?;
        }
        CrashOp::Restripe => {
            // The §V-E layout flip; its commit stages and fences the
            // whole region-B image through the intent log internally.
            stack
                .submit(&Request::Restripe)
                .map_err(|e| format!("restripe: {e}"))?;
        }
        CrashOp::TierMigrate => {
            // Fresh data on half the blocks stays volatile until the
            // tier step: the pristine region downgrades paper ->
            // rs-only, and the migration's single fence commits the
            // re-encoded image, the unflushed writes, and the tier tag
            // together. A cut inside it must land wholly on one side.
            for addr in (0..BLOCKS).step_by(2) {
                let data = pattern(seed, addr, 0x5a);
                stack
                    .submit(&Request::Write { addr, data })
                    .map_err(|e| format!("tier write {addr}: {e}"))?;
            }
            let report = stack.tier_step().map_err(|e| format!("tier step: {e}"))?;
            if report.migrations == 0 {
                return Err("tier step migrated nothing".into());
            }
        }
    }
    Ok(())
}

fn read_all(stack: &mut Stack) -> Result<Vec<[u8; 64]>, String> {
    (0..BLOCKS)
        .map(|addr| {
            let mut data = [0u8; 64];
            stack
                .read_into(addr, &mut data)
                .map(|_| data)
                .map_err(|e| format!("block {addr} does not decode after recovery: {e}"))
        })
        .collect()
}

/// One cached reference run.
struct RefRun {
    steps: u64,
    pre: Vec<[u8; 64]>,
    post: Vec<[u8; 64]>,
}

#[test]
fn power_cut_recovery_is_whole_image_atomic() {
    let refs: RefCell<HashMap<(&'static str, u64), RefRun>> = RefCell::new(HashMap::new());
    let cuts_per_op: RefCell<HashMap<&'static str, usize>> = RefCell::new(HashMap::new());

    let prop = |case: &CrashPlan| -> Result<(), String> {
        let key = (case.op.name(), case.seed);
        if !refs.borrow().contains_key(&key) {
            let mut stack = checkpoint(case.op, case.seed)?;
            // The checkpoint image is the fill pattern by construction;
            // verify that once per reference run so the per-cut runs can
            // use the computed mirror without re-reading 16 blocks.
            let pre: Vec<[u8; 64]> = (0..BLOCKS).map(|a| pattern(case.seed, a, 0x00)).collect();
            if read_all(&mut stack)? != pre {
                return Err("checkpoint does not read back as the fill pattern".into());
            }
            let start = stack.pmem_steps().ok_or("stack is not persistent")?;
            run_op(&mut stack, case.op, case.seed)?;
            let steps = stack.pmem_steps().ok_or("stack is not persistent")? - start;
            if steps == 0 {
                return Err(format!("{} persisted nothing", case.op.name()));
            }
            let post = read_all(&mut stack)?;
            refs.borrow_mut().insert(key, RefRun { steps, pre, post });
        }

        let (steps, span) = {
            let borrowed = refs.borrow();
            let r = &borrowed[&key];
            (r.steps, r.steps + 1)
        };
        let k = if case.from_end {
            steps - (case.cut_step % span)
        } else {
            case.cut_step % span
        };

        let mut stack = checkpoint(case.op, case.seed)?;
        if !stack.arm_fuse(k) {
            return Err("fuse refused to arm".into());
        }
        run_op(&mut stack, case.op, case.seed)?;
        stack
            .power_cut()
            .map_err(|e| format!("cut {k}: power cut: {e}"))?;
        stack
            .recover()
            .map_err(|e| format!("cut {k}: recovery: {e}"))?;
        let got = read_all(&mut stack).map_err(|e| format!("cut {k}: {e}"))?;

        let borrowed = refs.borrow();
        let r = &borrowed[&key];
        if got != r.pre && got != r.post {
            let torn = (0..BLOCKS as usize)
                .filter(|&b| got[b] != r.pre[b] && got[b] != r.post[b])
                .count();
            return Err(format!(
                "cut {k}/{}: recovered image matches neither the pre- nor the post-op \
                 mirror ({torn} blocks match neither individually)",
                r.steps
            ));
        }
        if case.op == CrashOp::TierMigrate {
            // The migration fences the image and the tier tag together:
            // the recovered census must be exactly the pre-migration
            // tier (paper) with the pre image, or the post-migration
            // tier (rs-only) with the post image — never crossed.
            let census = stack
                .tier_report()
                .ok_or_else(|| format!("cut {k}: tiered stack lost its census"))?;
            let want = if got == r.post {
                ProtectionTier::RsOnly
            } else {
                ProtectionTier::Paper
            };
            let tier_of = |c: &pmck_core::TierReport| match (c.paper_regions, c.rs_only_regions) {
                (1, 0) => Some(ProtectionTier::Paper),
                (0, 1) => Some(ProtectionTier::RsOnly),
                _ => None,
            };
            if tier_of(&census) != Some(want) {
                return Err(format!(
                    "cut {k}/{}: recovered the {} image but the census reports \
                     paper={} rs_only={} dense={}",
                    r.steps,
                    if want == ProtectionTier::RsOnly {
                        "post"
                    } else {
                        "pre"
                    },
                    census.paper_regions,
                    census.rs_only_regions,
                    census.dense_regions,
                ));
            }
        }
        *cuts_per_op.borrow_mut().entry(key.0).or_insert(0) += 1;
        Ok(())
    };

    let report = Runner::new("crash:recovery").seed(0x9c0e).cases(CASES).run(
        |rng| {
            // Weight cheap operations more heavily; the re-stripe and
            // tier-migrate runs carry the BCH re-encode cost of a whole
            // region image.
            let op = match rng.gen_range(0u32..28) {
                0..=10 => CrashOp::EurDrain,
                11..=16 => CrashOp::StartGap,
                17..=20 => CrashOp::Repair,
                21..=23 => CrashOp::Restripe,
                _ => CrashOp::TierMigrate,
            };
            CrashPlan {
                op,
                seed: rng.gen_range(0..SEEDS_PER_OP),
                cut_step: rng.gen_range(0u64..1 << 20),
                // A quarter of the cuts anchor to the tail, where the
                // meta-line commit lives.
                from_end: rng.gen_bool(0.25),
            }
        },
        prop,
    );

    // The checked-in crafted torn-restripe entry must have replayed.
    assert!(
        report.corpus_replayed >= 1,
        "the crafted torn-restripe corpus entry did not replay"
    );
    let total: usize = cuts_per_op.borrow().values().sum();
    assert!(
        total >= 2_000,
        "campaign covered only {total} cut points (floor: 2,000)"
    );
    for op in CrashOp::ALL {
        let n = cuts_per_op.borrow().get(op.name()).copied().unwrap_or(0);
        assert!(n >= 100, "operation {} got only {n} cut points", op.name());
    }
}
