//! Fast-path fault campaigns: the allocation-free scratch decoder vs
//! the reference oracles and the pooled compat API.
//!
//! The hot read path runs `decode_with_erasures_scratch` (zero-syndrome
//! early exit + caller-owned [`pmck_rs::RsScratch`]). These campaigns
//! require it to be observably identical to the classic pooled entry
//! points — same verdicts, same corrections, same residual-error
//! positions, same final word bytes — and, through
//! [`diff_rs_erasures`], to the harness' Vandermonde linear-system
//! reference. Any divergence is persisted to `tests/corpus/` by the
//! runner and replayed on every future run.

use pmck_harness::{diff_rs_erasures, ErasureCase, Runner};
use pmck_rs::{RsCode, RsScratch};
use pmck_rt::rng::{Rng, StdRng};

fn gen_erasure_case(rng: &mut StdRng, code: &RsCode) -> ErasureCase {
    let mut data = vec![0u8; code.data_symbols()];
    rng.fill_bytes(&mut data);
    let nu = rng.gen_range(0usize..=code.max_erasures());
    let mut erasures: Vec<usize> = Vec::with_capacity(nu);
    while erasures.len() < nu {
        let p = rng.gen_range(0usize..code.len());
        if !erasures.contains(&p) {
            erasures.push(p);
        }
    }
    let mut fills = vec![0u8; nu];
    rng.fill_bytes(&mut fills);
    // A third of the cases also carry undeclared errors so the combined
    // errors-and-erasures machinery (not just the erasure re-fill) runs.
    let num_errors = if rng.gen_bool(0.33) {
        rng.gen_range(1usize..=2)
    } else {
        0
    };
    let mut errors: Vec<(usize, u8)> = Vec::with_capacity(num_errors);
    while errors.len() < num_errors {
        let p = rng.gen_range(0usize..code.len());
        if !erasures.contains(&p) && !errors.iter().any(|&(q, _)| q == p) {
            errors.push((p, rng.gen_range(1u32..256) as u8));
        }
    }
    ErasureCase {
        data,
        erasures,
        fills,
        errors,
    }
}

/// Pure random-error cases reuse [`ErasureCase`] with no erasures; the
/// weight runs 0..=6 so clean words (the zero-syndrome fast path),
/// correctable patterns (≤ 4 for RS(72, 64)), and overweight patterns
/// are all exercised.
fn gen_error_case(rng: &mut StdRng, code: &RsCode) -> ErasureCase {
    let mut data = vec![0u8; code.data_symbols()];
    rng.fill_bytes(&mut data);
    // Weight 0 gets extra mass: the clean early exit is the production
    // steady state and the path most worth hammering.
    let num_errors = if rng.gen_bool(0.25) {
        0
    } else {
        rng.gen_range(1usize..=6)
    };
    let mut errors: Vec<(usize, u8)> = Vec::with_capacity(num_errors);
    while errors.len() < num_errors {
        let p = rng.gen_range(0usize..code.len());
        if !errors.iter().any(|&(q, _)| q == p) {
            errors.push((p, rng.gen_range(1u32..256) as u8));
        }
    }
    ErasureCase {
        data,
        erasures: vec![],
        fills: vec![],
        errors,
    }
}

/// Requires the scratch decode and the pooled decode of `word` to be
/// bit-identical in verdict, corrections, error positions, and final
/// word contents.
fn check_scratch_matches_pooled(
    code: &RsCode,
    word: &[u8],
    erasures: &[usize],
    scratch: &mut RsScratch,
) -> Result<(), String> {
    let mut pooled_word = word.to_vec();
    let pooled = code.decode_with_erasures(&mut pooled_word, erasures);
    let mut scratch_word = word.to_vec();
    let fast = code
        .decode_with_erasures_scratch(&mut scratch_word, erasures, scratch)
        .map(|view| view.to_outcome());
    if pooled != fast {
        return Err(format!(
            "scratch decode diverged from pooled: pooled {pooled:?} vs scratch {fast:?}"
        ));
    }
    if pooled_word != scratch_word {
        return Err("scratch decode left different word bytes than pooled decode".into());
    }
    Ok(())
}

/// 100 000 erasure cases against RS(72, 64): the strict production
/// decoder is checked against the Vandermonde reference, the scratch
/// fast path against the pooled path, and fill-only cases (no
/// undeclared errors) must recover the original codeword exactly.
#[test]
fn rs_fastpath_erasure_campaign() {
    let code = RsCode::per_block();
    let mut scratch = RsScratch::new(&code);
    let report = Runner::new("fastpath:rs:erasure")
        .seed(0xFA57_0001)
        .cases(100_000)
        .run(
            |rng| gen_erasure_case(rng, &code),
            |case| {
                let word = case.corrupted(&code);
                diff_rs_erasures(&code, &word, &case.erasures)?;
                check_scratch_matches_pooled(&code, &word, &case.erasures, &mut scratch)?;
                if case.errors.is_empty() {
                    // Declared erasures alone never exceed capability
                    // (ν ≤ r), so ground truth must come back exactly.
                    let mut decoded = word.clone();
                    let out = code
                        .decode_with_erasures_scratch(&mut decoded, &case.erasures, &mut scratch)
                        .map_err(|e| format!("fill-only case must decode, got {e:?}"))?;
                    if !out.error_positions().is_empty() {
                        return Err(format!(
                            "fill-only case reported phantom errors at {:?}",
                            out.error_positions()
                        ));
                    }
                    if decoded != code.encode(&case.data) {
                        return Err("fill-only case decoded to the wrong codeword".into());
                    }
                }
                Ok(())
            },
        );
    assert_eq!(report.generated, 100_000);
}

/// 100 000 random-error cases (no erasures) against RS(72, 64): scratch
/// and pooled paths must agree everywhere, and within-radius patterns
/// must decode back to ground truth with exactly the injected errors as
/// corrections.
#[test]
fn rs_fastpath_error_campaign() {
    let code = RsCode::per_block();
    let radius = code.max_erasures() / 2;
    let mut scratch = RsScratch::new(&code);
    let report = Runner::new("fastpath:rs:errors")
        .seed(0xFA57_0002)
        .cases(100_000)
        .run(
            |rng| gen_error_case(rng, &code),
            |case| {
                let word = case.corrupted(&code);
                check_scratch_matches_pooled(&code, &word, &[], &mut scratch)?;
                if case.errors.len() <= radius {
                    let mut decoded = word.clone();
                    let out = code
                        .decode_scratch(&mut decoded, &mut scratch)
                        .map_err(|e| format!("within-radius case must decode, got {e:?}"))?;
                    if decoded != code.encode(&case.data) {
                        return Err("within-radius case decoded to the wrong codeword".into());
                    }
                    let mut expected = case.errors.clone();
                    expected.sort_unstable_by_key(|&(p, _)| p);
                    if out.corrections() != expected {
                        return Err(format!(
                            "corrections {:?} differ from injected errors {:?}",
                            out.corrections(),
                            expected
                        ));
                    }
                    if case.errors.is_empty() && !out.was_clean() {
                        return Err("clean word must take the zero-syndrome fast path".into());
                    }
                }
                Ok(())
            },
        );
    assert_eq!(report.generated, 100_000);
}
