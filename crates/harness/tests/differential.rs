//! Differential fault campaigns: production codecs vs reference oracles.
//!
//! Every case runs the production decoder (Berlekamp–Massey based) and
//! the harness reference (PGZ / linear-system based) side by side and
//! requires bit-identical verdicts. The bulk campaigns run ≥100 000
//! seeded cases per codec on fast parameters; a smaller campaign covers
//! the paper's full-size VLEW code. Error weights straddle the
//! correction radius so clean, correctable, and overweight words are
//! all exercised.

use pmck_bch::{BchCode, BchScratch};
use pmck_harness::{
    diff_bch, diff_bch_batch, diff_bch_scratch, diff_rs_erasures, BitFlipBatchCase, BitFlipCase,
    ErasureCase, Runner,
};
use pmck_rs::RsCode;
use pmck_rt::rng::{Rng, StdRng};

fn gen_bit_flips(rng: &mut StdRng, code: &BchCode, max_flips: usize) -> BitFlipCase {
    let mut data = vec![0u8; code.data_bits() / 8];
    rng.fill_bytes(&mut data);
    let num_flips = rng.gen_range(0usize..=max_flips);
    let mut flips: Vec<usize> = Vec::with_capacity(num_flips);
    while flips.len() < num_flips {
        let p = rng.gen_range(0usize..code.len());
        if !flips.contains(&p) {
            flips.push(p);
        }
    }
    BitFlipCase { data, flips }
}

fn gen_erasures(rng: &mut StdRng, code: &RsCode) -> ErasureCase {
    let mut data = vec![0u8; code.data_symbols()];
    rng.fill_bytes(&mut data);
    let nu = rng.gen_range(0usize..=code.max_erasures());
    let mut erasures: Vec<usize> = Vec::with_capacity(nu);
    while erasures.len() < nu {
        let p = rng.gen_range(0usize..code.len());
        if !erasures.contains(&p) {
            erasures.push(p);
        }
    }
    let mut fills = vec![0u8; nu];
    rng.fill_bytes(&mut fills);
    // Occasionally add undeclared errors outside the erasures, which the
    // strict erasure path must reject.
    let num_errors = if rng.gen_bool(0.3) {
        rng.gen_range(1usize..=2)
    } else {
        0
    };
    let mut errors: Vec<(usize, u8)> = Vec::with_capacity(num_errors);
    while errors.len() < num_errors {
        let p = rng.gen_range(0usize..code.len());
        if !erasures.contains(&p) && !errors.iter().any(|&(q, _)| q == p) {
            errors.push((p, rng.gen_range(1u32..256) as u8));
        }
    }
    ErasureCase {
        data,
        erasures,
        fills,
        errors,
    }
}

/// 100 000 cases against a fast BCH(8, t=3, k=64) instance; weights run
/// 0..=2t so half the mass is beyond the correction radius.
#[test]
fn bch_differential_campaign() {
    let code = BchCode::new(8, 3, 64).expect("valid parameters");
    let report = Runner::new("diff:bch:m8t3").seed(0xB04).cases(100_000).run(
        |rng| gen_bit_flips(rng, &code, 2 * code.t()),
        |case| diff_bch(&code, &case.corrupted(&code)),
    );
    assert_eq!(report.generated, 100_000);
}

/// The paper's full-size VLEW code (t=22, k=2048 over GF(2^12)); fewer
/// cases because each PGZ decode is genuinely slow, which is the point
/// of having a production decoder.
#[test]
fn bch_differential_campaign_vlew() {
    let code = BchCode::vlew();
    let report = Runner::new("diff:bch:vlew").seed(0xB05).cases(1_500).run(
        |rng| gen_bit_flips(rng, &code, code.t() + 4),
        |case| diff_bch(&code, &case.corrupted(&code)),
    );
    assert_eq!(report.generated, 1_500);
}

/// 100 000 cases against BCH(8, t=3, k=64) through the scratch-based
/// decode path, reusing ONE scratch for the whole campaign: any state
/// leaking from a previous decode (stale syndromes, unclears positions,
/// a poisoned BM register) shows up as a divergence from the stateless
/// PGZ reference.
#[test]
fn bch_scratch_differential_campaign() {
    let code = BchCode::new(8, 3, 64).expect("valid parameters");
    let mut scratch = BchScratch::new(&code);
    let report = Runner::new("diff:bch:scratch:m8t3")
        .seed(0xB06)
        .cases(100_000)
        .run(
            |rng| gen_bit_flips(rng, &code, 2 * code.t()),
            |case| diff_bch_scratch(&code, &case.corrupted(&code), &mut scratch),
        );
    assert_eq!(report.generated, 100_000);
}

/// 20 000 batches of 0..=6 words against the batched decode API, again
/// with one shared scratch. Mixed batches — clean, correctable, and
/// overweight words interleaved — are the interesting region; every
/// per-word outcome and corrected word must match the per-word PGZ
/// reference.
#[test]
fn bch_batch_differential_campaign() {
    let code = BchCode::new(8, 3, 64).expect("valid parameters");
    let mut scratch = BchScratch::new(&code);
    let report = Runner::new("diff:bch:batch:m8t3")
        .seed(0xB07)
        .cases(20_000)
        .run(
            |rng| {
                let n = rng.gen_range(0usize..=6);
                BitFlipBatchCase {
                    words: (0..n)
                        .map(|_| gen_bit_flips(rng, &code, 2 * code.t()))
                        .collect(),
                }
            },
            |case| diff_bch_batch(&code, &case.corrupted(&code), &mut scratch),
        );
    assert_eq!(report.generated, 20_000);
}

/// 100 000 cases against RS(72, 64): 0..=8 declared erasures with
/// garbage fills, 30% of cases also carrying undeclared errors the
/// strict decoder must refuse.
#[test]
fn rs_erasure_differential_campaign() {
    let code = RsCode::per_block();
    let report = Runner::new("diff:rs:erasure")
        .seed(0x25)
        .cases(100_000)
        .run(
            |rng| gen_erasures(rng, &code),
            |case| {
                let word = case.corrupted(&code);
                diff_rs_erasures(&code, &word, &case.erasures)
            },
        );
    assert_eq!(report.generated, 100_000);
}
