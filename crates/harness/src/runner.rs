//! Seeded property-test runner with shrinking and corpus replay.
//!
//! A [`Runner`] executes a property over (1) every case in the
//! regression corpus owned by the property name, then (2) `cases` fresh
//! cases generated from a fixed seed. On failure the case is greedily
//! shrunk and, unless disabled, persisted into the corpus so the next
//! run replays it first. Properties return `Result<(), String>` rather
//! than panicking, which keeps shrinking cheap and deterministic.

use std::path::PathBuf;

use pmck_rt::rng::StdRng;
use pmck_rt::Json;

use crate::corpus;

/// A generatable, shrinkable, JSON-serializable test case.
pub trait Case: Clone {
    /// Serializes the case for corpus persistence.
    fn to_json(&self) -> Json;
    /// Deserializes a case from a corpus payload. `None` means the
    /// payload is malformed (the runner fails loudly in that situation).
    fn from_json(value: &Json) -> Option<Self>;
    /// Candidate simplifications, most aggressive first. The runner
    /// repeatedly descends into the first candidate that still fails,
    /// so returning an empty list disables shrinking.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Statistics from a successful run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Property name the run was registered under.
    pub prop: String,
    /// Corpus cases replayed (all passed).
    pub corpus_replayed: usize,
    /// Freshly generated cases executed (all passed).
    pub generated: usize,
}

/// A failing case, post-shrinking.
#[derive(Debug, Clone)]
pub struct Failure<C> {
    /// The shrunk counterexample.
    pub case: C,
    /// The failure message for the shrunk case.
    pub error: String,
    /// The case as originally found, before shrinking.
    pub original: C,
    /// The failure message for the original case.
    pub original_error: String,
    /// How many shrink steps were applied.
    pub shrink_steps: usize,
    /// Where the counterexample lives on disk (the corpus file it was
    /// replayed from, or the file it was just persisted to).
    pub persisted: Option<PathBuf>,
    /// Whether the failure came from corpus replay rather than fresh
    /// generation.
    pub from_corpus: bool,
    /// The runner seed in effect.
    pub seed: u64,
    /// Index of the failing case within its phase (corpus or generated).
    pub case_index: usize,
}

/// A configured property run. See the module docs for the execution
/// order (corpus replay first, then seeded generation).
#[derive(Debug, Clone)]
pub struct Runner {
    name: String,
    seed: u64,
    cases: usize,
    corpus_dir: PathBuf,
    persist: bool,
    max_shrink_steps: usize,
}

impl Runner {
    /// A runner for the property registered as `name`. The name keys
    /// corpus ownership: only files whose `prop` field matches are
    /// replayed, and new failures are persisted under it.
    pub fn new(name: &str) -> Self {
        Runner {
            name: name.to_string(),
            seed: 0,
            cases: 256,
            corpus_dir: corpus::default_dir(),
            persist: true,
            max_shrink_steps: 10_000,
        }
    }

    /// Sets the generation seed (default 0). Migrated tests keep their
    /// historical seeds here.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many fresh cases to generate (default 256).
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the corpus directory (default: the checked-in
    /// `tests/corpus/`, or `$PMCK_CORPUS_DIR`).
    pub fn corpus_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.corpus_dir = dir.into();
        self
    }

    /// Disables persisting new failures (replay still happens).
    pub fn no_persist(mut self) -> Self {
        self.persist = false;
        self
    }

    /// Caps the shrink descent (default 10 000 steps).
    pub fn max_shrink_steps(mut self, steps: usize) -> Self {
        self.max_shrink_steps = steps;
        self
    }

    /// Runs the property, panicking with a readable report on failure.
    /// This is the entry point for ordinary `#[test]` functions.
    ///
    /// # Panics
    ///
    /// Panics if any corpus or generated case fails, after shrinking and
    /// (for fresh failures) persisting the counterexample.
    pub fn run<C, G, P>(&self, gen: G, prop: P) -> RunReport
    where
        C: Case,
        G: FnMut(&mut StdRng) -> C,
        P: FnMut(&C) -> Result<(), String>,
    {
        match self.try_run(gen, prop) {
            Ok(report) => report,
            Err(failure) => {
                let where_found = if failure.from_corpus {
                    "corpus replay"
                } else {
                    "generated case"
                };
                let persisted = match &failure.persisted {
                    Some(p) => format!("\n  counterexample file: {}", p.display()),
                    None => String::new(),
                };
                panic!(
                    "property `{}` failed on {} #{} (seed {}):\n  \
                     error: {}\n  \
                     shrunk case ({} steps): {}\n  \
                     original error: {}\n  \
                     original case: {}{}",
                    self.name,
                    where_found,
                    failure.case_index,
                    failure.seed,
                    failure.error,
                    failure.shrink_steps,
                    failure.case.to_json().dump(),
                    failure.original_error,
                    failure.original.to_json().dump(),
                    persisted,
                );
            }
        }
    }

    /// Runs the property, returning the shrunk failure instead of
    /// panicking. Used by the mutation self-tests that *expect* a
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics only on corpus corruption (unreadable directory, invalid
    /// JSON, or a payload the [`Case`] impl cannot decode) — those are
    /// repository bugs, not property failures.
    pub fn try_run<C, G, P>(&self, mut gen: G, mut prop: P) -> Result<RunReport, Box<Failure<C>>>
    where
        C: Case,
        G: FnMut(&mut StdRng) -> C,
        P: FnMut(&C) -> Result<(), String>,
    {
        let entries = corpus::load_for(&self.corpus_dir, &self.name)
            .unwrap_or_else(|e| panic!("property `{}`: {e}", self.name));
        let mut replayed = 0usize;
        for entry in &entries {
            let case = C::from_json(&entry.case).unwrap_or_else(|| {
                panic!(
                    "property `{}`: corpus file {} has a case payload this Case type \
                     cannot decode; fix or delete it",
                    self.name,
                    entry.path.display()
                )
            });
            if let Err(error) = prop(&case) {
                let (shrunk, shrunk_error, steps) = shrink_case(
                    &mut prop,
                    case.clone(),
                    error.clone(),
                    self.max_shrink_steps,
                );
                return Err(Box::new(Failure {
                    case: shrunk,
                    error: shrunk_error,
                    original: case,
                    original_error: error,
                    shrink_steps: steps,
                    persisted: Some(entry.path.clone()),
                    from_corpus: true,
                    seed: entry.seed.unwrap_or(self.seed),
                    case_index: replayed,
                }));
            }
            replayed += 1;
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        for i in 0..self.cases {
            let case = gen(&mut rng);
            if let Err(error) = prop(&case) {
                let (shrunk, shrunk_error, steps) = shrink_case(
                    &mut prop,
                    case.clone(),
                    error.clone(),
                    self.max_shrink_steps,
                );
                let persisted = if self.persist {
                    corpus::persist(
                        &self.corpus_dir,
                        &self.name,
                        self.seed,
                        &shrunk.to_json(),
                        &shrunk_error,
                        steps as u64,
                    )
                    .ok()
                } else {
                    None
                };
                return Err(Box::new(Failure {
                    case: shrunk,
                    error: shrunk_error,
                    original: case,
                    original_error: error,
                    shrink_steps: steps,
                    persisted,
                    from_corpus: false,
                    seed: self.seed,
                    case_index: i,
                }));
            }
        }
        Ok(RunReport {
            prop: self.name.clone(),
            corpus_replayed: replayed,
            generated: self.cases,
        })
    }
}

/// Greedy shrink: repeatedly replace the case with its first shrink
/// candidate that still fails, until no candidate fails or the step cap
/// is hit.
fn shrink_case<C, P>(
    prop: &mut P,
    mut case: C,
    mut error: String,
    max_steps: usize,
) -> (C, String, usize)
where
    C: Case,
    P: FnMut(&C) -> Result<(), String>,
{
    let mut steps = 0usize;
    'outer: while steps < max_steps {
        for candidate in case.shrink() {
            if let Err(e) = prop(&candidate) {
                case = candidate;
                error = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (case, error, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::Rng;

    /// A bare u64 case shrinking by halving toward zero.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct N(u64);

    impl Case for N {
        fn to_json(&self) -> Json {
            Json::object().with("n", self.0)
        }
        fn from_json(value: &Json) -> Option<Self> {
            value.get("n").and_then(Json::as_u64).map(N)
        }
        fn shrink(&self) -> Vec<Self> {
            if self.0 == 0 {
                Vec::new()
            } else {
                vec![N(0), N(self.0 / 2), N(self.0 - 1)]
            }
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pmck-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn passing_property_reports_counts() {
        let report = Runner::new("runner:pass")
            .seed(1)
            .cases(50)
            .corpus_dir(tmp_dir("pass"))
            .run(|rng| N(rng.next_u64()), |_| Ok(()));
        assert_eq!(report.corpus_replayed, 0);
        assert_eq!(report.generated, 50);
    }

    #[test]
    fn failure_shrinks_to_the_boundary_and_persists() {
        let dir = tmp_dir("shrink");
        // Fails for n >= 1000; minimal counterexample is exactly 1000.
        let failure = Runner::new("runner:shrink")
            .seed(2)
            .cases(200)
            .corpus_dir(&dir)
            .try_run(
                |rng| N(rng.gen_range(0u64..1_000_000)),
                |c| {
                    if c.0 < 1000 {
                        Ok(())
                    } else {
                        Err(format!("{} >= 1000", c.0))
                    }
                },
            )
            .expect_err("property must fail");
        assert_eq!(
            failure.case,
            N(1000),
            "greedy shrink must reach the boundary"
        );
        assert!(!failure.from_corpus);
        let path = failure.persisted.as_ref().expect("failure must persist");
        assert!(path.exists());

        // Second run replays the corpus and fails before generating.
        let replayed = Runner::new("runner:shrink")
            .seed(99)
            .cases(0)
            .corpus_dir(&dir)
            .try_run(
                |rng| N(rng.next_u64()),
                |c| {
                    if c.0 < 1000 {
                        Ok(())
                    } else {
                        Err("still failing".into())
                    }
                },
            )
            .expect_err("corpus replay must fail");
        assert!(replayed.from_corpus);
        assert_eq!(replayed.case, N(1000));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_seed_generates_same_cases() {
        let mut first = Vec::new();
        Runner::new("runner:det")
            .seed(7)
            .cases(20)
            .corpus_dir(tmp_dir("det"))
            .run(
                |rng| N(rng.next_u64()),
                |c| {
                    first.push(c.0);
                    Ok(())
                },
            );
        let mut second = Vec::new();
        Runner::new("runner:det")
            .seed(7)
            .cases(20)
            .corpus_dir(tmp_dir("det2"))
            .run(
                |rng| N(rng.next_u64()),
                |c| {
                    second.push(c.0);
                    Ok(())
                },
            );
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "property `runner:panic` failed")]
    fn run_panics_with_context() {
        Runner::new("runner:panic")
            .seed(3)
            .cases(10)
            .corpus_dir(tmp_dir("panic"))
            .no_persist()
            .run(|rng| N(rng.next_u64()), |_| Err("always".into()));
    }
}
