//! Regression-corpus persistence: failing cases as checked-in JSON.
//!
//! Every [`crate::Runner`] replays the corpus before generating fresh
//! cases, so a counterexample found once is re-checked on every test run
//! forever after. Files live in `tests/corpus/` at the workspace root
//! (override with the `PMCK_CORPUS_DIR` environment variable) and carry
//! the owning property name, the seed that found them, the shrunk case,
//! and the failure message — enough to triage without re-running.

use std::fs;
use std::path::{Path, PathBuf};

use pmck_rt::Json;

/// Corpus format version written into every file.
pub const FORMAT_VERSION: u64 = 1;

/// The corpus directory: `$PMCK_CORPUS_DIR` if set, else the checked-in
/// `tests/corpus/` at the workspace root.
pub fn default_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("PMCK_CORPUS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus"))
}

/// One corpus file that matched the requesting property.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Where the file lives (reported on replay failure).
    pub path: PathBuf,
    /// The persisted case payload, still as JSON.
    pub case: Json,
    /// The seed that originally found the case, if recorded.
    pub seed: Option<u64>,
    /// The original failure message, if recorded.
    pub error: Option<String>,
}

/// Loads every corpus entry owned by `prop`, sorted by file name so
/// replay order is deterministic.
///
/// # Errors
///
/// Returns a message naming the offending file if the directory is
/// unreadable, a `.json` file fails to parse, or a file claims `prop`
/// but has no `case` payload. A corrupt corpus must fail loudly, not be
/// skipped: it is checked-in regression evidence.
pub fn load_for(dir: &Path, prop: &str) -> Result<Vec<CorpusEntry>, String> {
    let mut entries = Vec::new();
    let read_dir = match fs::read_dir(dir) {
        Ok(rd) => rd,
        // A missing corpus directory just means no corpus yet.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(format!("cannot read corpus dir {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = read_dir
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read corpus file {}: {e}", path.display()))?;
        let value = Json::parse(&text)
            .map_err(|e| format!("corpus file {} is not valid JSON: {e}", path.display()))?;
        if value.get("prop").and_then(Json::as_str) != Some(prop) {
            continue;
        }
        let case = value
            .get("case")
            .cloned()
            .ok_or_else(|| format!("corpus file {} has no `case` payload", path.display()))?;
        entries.push(CorpusEntry {
            path,
            case,
            seed: value.get("seed").and_then(Json::as_u64),
            error: value.get("error").and_then(Json::as_str).map(String::from),
        });
    }
    Ok(entries)
}

/// Writes a shrunk failing case into the corpus, returning its path.
/// The file name is derived from the property name and a hash of the
/// case, so re-finding the same counterexample overwrites in place
/// instead of accumulating duplicates.
pub fn persist(
    dir: &Path,
    prop: &str,
    seed: u64,
    case: &Json,
    error: &str,
    shrink_steps: u64,
) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let mut doc = Json::object();
    doc.set("version", FORMAT_VERSION);
    doc.set("prop", prop);
    doc.set("seed", seed);
    doc.set("shrink_steps", shrink_steps);
    doc.set("error", error);
    doc.set("case", case.clone());
    let path = dir.join(format!(
        "{}-{:016x}.json",
        sanitize(prop),
        fnv1a(case.dump().as_bytes())
    ));
    fs::write(&path, doc.pretty() + "\n")?;
    Ok(path)
}

/// Maps a property name onto a filesystem-safe slug.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// FNV-1a 64-bit hash (stable across runs and platforms, unlike
/// `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pmck-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let case = Json::object().with("x", 3u64);
        let path = persist(&dir, "demo:prop", 42, &case, "boom", 5).unwrap();
        assert!(path.exists());
        let loaded = load_for(&dir, "demo:prop").unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].case, case);
        assert_eq!(loaded[0].seed, Some(42));
        assert_eq!(loaded[0].error.as_deref(), Some("boom"));
        assert!(load_for(&dir, "other:prop").unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_case_overwrites_instead_of_duplicating() {
        let dir = tmp_dir("dedup");
        let case = Json::object().with("x", 1u64);
        let p1 = persist(&dir, "p", 1, &case, "e1", 0).unwrap();
        let p2 = persist(&dir, "p", 2, &case, "e2", 0).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(load_for(&dir, "p").unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_empty_corpus() {
        let dir = tmp_dir("missing");
        assert!(load_for(&dir, "p").unwrap().is_empty());
    }

    #[test]
    fn malformed_corpus_file_errors_loudly() {
        let dir = tmp_dir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("broken.json"), "{not json").unwrap();
        assert!(load_for(&dir, "p").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
