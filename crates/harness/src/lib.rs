//! Deterministic fault-campaign harness for the pmck workspace.
//!
//! Three pieces, all std-only (the workspace's zero-dependency policy
//! extends to its test infrastructure):
//!
//! * a seeded **property-test runner** ([`Runner`]) with greedy input
//!   shrinking and failure persistence: failing cases are written as
//!   JSON into the checked-in `tests/corpus/` regression corpus and
//!   replayed first on every subsequent run;
//! * **differential oracles** ([`oracle`]) — a Peterson–Gorenstein–
//!   Zierler reference decoder for BCH and a linear-system erasure
//!   reference for RS(72, 64), run side-by-side with the production
//!   codecs asserting identical accept/reject/correct verdicts;
//! * re-exports of the **fault-schedule DSL** ([`FaultSchedule`], owned
//!   by `pmck-nvram` so the engine and simulators can consume it
//!   without a dependency cycle) that campaign drivers like the `soak`
//!   binary feed from.
//!
//! # Examples
//!
//! ```
//! use pmck_harness::{ByteErrorCase, Runner};
//! use pmck_rs::{RsCode, ThresholdOutcome};
//! use pmck_rt::Rng;
//!
//! let code = RsCode::per_block();
//! let dir = std::env::temp_dir().join("pmck-harness-doc");
//! Runner::new("doc:rs:threshold").seed(1).cases(64).corpus_dir(dir).run(
//!     |rng| {
//!         let mut data = vec![0u8; 64];
//!         rng.fill_bytes(&mut data);
//!         ByteErrorCase { data, errors: vec![(rng.gen_range(0usize..72), 0x40)] }
//!     },
//!     |case| {
//!         let mut word = case.corrupted(&code);
//!         match code.decode_with_threshold(&mut word, 2) {
//!             Ok(ThresholdOutcome::Accepted { corrections: 1 }) => Ok(()),
//!             other => Err(format!("single error not accepted: {other:?}")),
//!         }
//!     },
//! );
//! ```

pub mod cases;
pub mod corpus;
pub mod oracle;
pub mod runner;

pub use cases::{
    BitFlipBatchCase, BitFlipCase, ByteErrorCase, ChipkillErasureCase, ClusterPlan,
    ClusterScenario, CrashOp, CrashPlan, ErasureCase, FieldPairCase, JsonCase,
};
pub use oracle::{
    diff_bch, diff_bch_batch, diff_bch_scratch, diff_rs_erasures, ref_bch_decode,
    ref_rs_erasure_decode, RefBchOutcome, RefRsOutcome,
};
pub use runner::{Case, Failure, RunReport, Runner};

pub use pmck_nvram::{ChipFailureKind, FaultEvent, FaultKind, FaultSchedule, ScheduleError};
