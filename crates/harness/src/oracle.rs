//! Differential oracles: slow-but-obvious reference decoders.
//!
//! The production codecs decode with Berlekamp–Massey plus Chien/Forney
//! machinery; the references here use nothing but syndromes and Gaussian
//! elimination over the field, so they share no code path with what they
//! check:
//!
//! * **BCH** — Peterson–Gorenstein–Zierler: for ν from t down to 1,
//!   solve the ν×ν syndrome system for the error locator, find its roots
//!   by direct polynomial evaluation at every position, and accept only
//!   if the flipped word re-verifies as a codeword.
//! * **RS erasure-only** — the erasure magnitudes are the unique
//!   solution of the r×ν Vandermonde system `Σ e_p α^{j·p} = S_j`;
//!   solve it directly and accept only if consistent and the patched
//!   word re-verifies.
//!
//! Both production decoders also re-verify `is_codeword` after applying
//! corrections, and bounded-distance decoding within the packing radius
//! is unique — so the verdicts (and corrected words) must match
//! *exactly*, not just approximately. [`diff_bch`] and
//! [`diff_rs_erasures`] run both sides and report any divergence.

use pmck_bch::{BatchOutcome, BchCode, BchError, BchScratch, BitPoly};
use pmck_gf::Gf2m;
use pmck_rs::{RsCode, RsError};

/// A reference decoder's verdict on a BCH word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefBchOutcome {
    /// All syndromes zero: the word is already a codeword.
    Clean,
    /// A codeword within distance t exists; flipping these (sorted)
    /// positions reaches it.
    Corrected(Vec<usize>),
    /// No codeword within distance t.
    Uncorrectable,
}

/// A reference decoder's verdict on an RS word with declared erasures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefRsOutcome {
    /// All syndromes zero: the word is already a codeword.
    Clean,
    /// A codeword agreeing with the word outside the erasures exists;
    /// these (sorted) `(position, xor magnitude)` pairs reach it.
    Corrected(Vec<(usize, u8)>),
    /// No codeword agrees with the word outside the erasures.
    Uncorrectable,
}

/// Outcome of Gaussian elimination over GF(2^m).
enum LinearSolution {
    Unique(Vec<u32>),
    Underdetermined,
    Inconsistent,
}

/// Solves `A·x = b` over GF(2^m) by forward elimination with row
/// pivoting and back-substitution. `a` is rows×cols (rows ≥ 0, possibly
/// overdetermined).
fn solve(f: &Gf2m, mut a: Vec<Vec<u32>>, mut b: Vec<u32>) -> LinearSolution {
    let rows = a.len();
    let cols = if rows == 0 { 0 } else { a[0].len() };
    let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
    let mut pivot_row = 0usize;
    for col in 0..cols {
        let Some(r) = (pivot_row..rows).find(|&r| a[r][col] != 0) else {
            continue;
        };
        a.swap(pivot_row, r);
        b.swap(pivot_row, r);
        let pivot = a[pivot_row][col];
        for r2 in pivot_row + 1..rows {
            if a[r2][col] != 0 {
                let factor = f.div(a[r2][col], pivot).expect("pivot nonzero");
                let (upper, lower) = a.split_at_mut(r2);
                for (dst, &src) in lower[0][col..].iter_mut().zip(&upper[pivot_row][col..]) {
                    *dst ^= f.mul(factor, src);
                }
                b[r2] ^= f.mul(factor, b[pivot_row]);
            }
        }
        pivots.push((pivot_row, col));
        pivot_row += 1;
        if pivot_row == rows {
            break;
        }
    }
    // Rows below the last pivot now have all-zero coefficients; a
    // nonzero right-hand side there means the system has no solution.
    if b[pivots.len()..rows].iter().any(|&rhs| rhs != 0) {
        return LinearSolution::Inconsistent;
    }
    if pivots.len() < cols {
        return LinearSolution::Underdetermined;
    }
    let mut x = vec![0u32; cols];
    for &(r, c) in pivots.iter().rev() {
        let mut acc = b[r];
        for c2 in c + 1..cols {
            if a[r][c2] != 0 {
                acc ^= f.mul(a[r][c2], x[c2]);
            }
        }
        x[c] = f.div(acc, a[r][c]).expect("pivot nonzero");
    }
    LinearSolution::Unique(x)
}

/// PGZ reference decode: the verdict any correct bounded-distance BCH
/// decoder must reach on `word`.
///
/// # Panics
///
/// Panics if `word.len() != code.len()`.
pub fn ref_bch_decode(code: &BchCode, word: &BitPoly) -> RefBchOutcome {
    let s = code.syndromes(word); // s[j-1] = S_j, j = 1..=2t
    if s.iter().all(|&x| x == 0) {
        return RefBchOutcome::Clean;
    }
    let f = code.field();
    let order = f.order() as u64;
    for nu in (1..=code.t()).rev() {
        // Newton identities over GF(2): for k = ν+1..=2ν,
        //   Σ_{j=1..ν} σ_j · S_{k−j} = S_k.
        let a: Vec<Vec<u32>> = (0..nu)
            .map(|i| {
                let k = nu + 1 + i;
                (1..=nu).map(|j| s[k - j - 1]).collect()
            })
            .collect();
        let b: Vec<u32> = (0..nu).map(|i| s[nu + i]).collect();
        let LinearSolution::Unique(coeffs) = solve(f, a, b) else {
            continue;
        };
        // sigma(z) = 1 + σ_1 z + … + σ_ν z^ν; roots at α^{−p} locate
        // errors at position p.
        let mut sigma = vec![1u32];
        sigma.extend(coeffs);
        let mut roots: Vec<usize> = Vec::new();
        for p in 0..code.len() {
            let x_inv = f.alpha_pow(order - (p as u64 % order));
            if f.eval_poly(&sigma, x_inv) == 0 {
                roots.push(p);
            }
        }
        if roots.len() != nu {
            continue;
        }
        let mut candidate = word.clone();
        for &p in &roots {
            candidate.flip(p);
        }
        if code.is_codeword(&candidate) {
            return RefBchOutcome::Corrected(roots);
        }
    }
    RefBchOutcome::Uncorrectable
}

/// Erasure-only RS reference decode: the verdict any correct strict
/// erasure decoder must reach on `word` with the given distinct,
/// in-range `erasures`.
///
/// # Panics
///
/// Panics if `word.len() != code.len()`, or on out-of-range or
/// duplicate erasure positions, or if `erasures.len() > r`.
pub fn ref_rs_erasure_decode(code: &RsCode, word: &[u8], erasures: &[usize]) -> RefRsOutcome {
    assert!(erasures.len() <= code.check_symbols(), "too many erasures");
    let mut seen = vec![false; code.len()];
    for &p in erasures {
        assert!(p < code.len() && !seen[p], "bad erasure position {p}");
        seen[p] = true;
    }
    let s = code.syndromes(word); // s[j-1] = S_j, j = 1..=r
    if s.iter().all(|&x| x == 0) {
        return RefRsOutcome::Clean;
    }
    if erasures.is_empty() {
        return RefRsOutcome::Uncorrectable;
    }
    let f = code.field();
    let order = f.order() as u64;
    // S_j = Σ_l e_{p_l} · α^{j·p_l}: an r×ν Vandermonde-like system in
    // the erasure magnitudes. Distinct positions give full column rank,
    // so the system is either uniquely solvable or inconsistent (a
    // residual error outside the erasures).
    let a: Vec<Vec<u32>> = (0..code.check_symbols())
        .map(|i| {
            erasures
                .iter()
                .map(|&p| f.alpha_pow(((i as u64 + 1) * p as u64) % order))
                .collect()
        })
        .collect();
    let LinearSolution::Unique(magnitudes) = solve(f, a, s) else {
        return RefRsOutcome::Uncorrectable;
    };
    let mut candidate = word.to_vec();
    let mut corrections: Vec<(usize, u8)> = Vec::new();
    for (&p, &m) in erasures.iter().zip(&magnitudes) {
        if m != 0 {
            candidate[p] ^= m as u8;
            corrections.push((p, m as u8));
        }
    }
    if !code.is_codeword(&candidate) {
        return RefRsOutcome::Uncorrectable;
    }
    corrections.sort_unstable_by_key(|&(p, _)| p);
    RefRsOutcome::Corrected(corrections)
}

/// Runs the production BCH decoder and the PGZ reference on `word` and
/// checks the verdicts agree exactly — same accept/reject, same flipped
/// positions, and (on reject) the production word left unmodified.
///
/// # Errors
///
/// Returns a description of the divergence, suitable as a property
/// failure message.
pub fn diff_bch(code: &BchCode, word: &BitPoly) -> Result<(), String> {
    let reference = ref_bch_decode(code, word);
    let mut prod_word = word.clone();
    let production = code.decode(&mut prod_word);
    match (&reference, &production) {
        (RefBchOutcome::Clean, Ok(out)) if out.was_clean() => Ok(()),
        (RefBchOutcome::Corrected(positions), Ok(out))
            if !out.was_clean() && out.corrected_bits() == &positions[..] =>
        {
            Ok(())
        }
        (RefBchOutcome::Uncorrectable, Err(BchError::Uncorrectable)) => {
            if prod_word == *word {
                Ok(())
            } else {
                Err("BCH: production reported Uncorrectable but modified the word".into())
            }
        }
        _ => Err(format!(
            "BCH divergence: reference {:?} vs production {:?}",
            reference,
            production.as_ref().map(|o| o.corrected_bits().to_vec())
        )),
    }
}

/// [`diff_bch`] for the scratch-based decode path: runs
/// `decode_scratch` through a caller-owned [`BchScratch`] and checks the
/// verdict against the PGZ reference. Reusing one scratch across a whole
/// campaign is the point — state leaking between decodes would show up
/// as a divergence.
///
/// # Errors
///
/// Returns a description of the divergence, suitable as a property
/// failure message.
pub fn diff_bch_scratch(
    code: &BchCode,
    word: &BitPoly,
    scratch: &mut BchScratch,
) -> Result<(), String> {
    let reference = ref_bch_decode(code, word);
    let mut prod_word = word.clone();
    let production = code.decode_scratch(&mut prod_word, scratch);
    match (&reference, &production) {
        (RefBchOutcome::Clean, Ok(view)) if view.was_clean() => Ok(()),
        (RefBchOutcome::Corrected(positions), Ok(view))
            if !view.was_clean() && view.corrected_bits() == &positions[..] =>
        {
            Ok(())
        }
        (RefBchOutcome::Uncorrectable, Err(BchError::Uncorrectable)) => {
            if prod_word == *word {
                Ok(())
            } else {
                Err("BCH scratch: production reported Uncorrectable but modified the word".into())
            }
        }
        _ => Err(format!(
            "BCH scratch divergence: reference {:?} vs production {:?}",
            reference,
            production.as_ref().map(|v| v.corrected_bits().to_vec())
        )),
    }
}

/// [`diff_bch`] for the batched decode API: decodes every word of the
/// batch in one `decode_batch` call and checks each per-word
/// [`BatchOutcome`] — and the corrected word contents — against the PGZ
/// reference run independently per word.
///
/// # Errors
///
/// Returns a description of the first divergence, suitable as a property
/// failure message.
pub fn diff_bch_batch(
    code: &BchCode,
    words: &[BitPoly],
    scratch: &mut BchScratch,
) -> Result<(), String> {
    let mut batch: Vec<BitPoly> = words.to_vec();
    let outcomes: Vec<BatchOutcome> = code.decode_batch(&mut batch, scratch).to_vec();
    if outcomes.len() != words.len() {
        return Err(format!(
            "BCH batch: {} outcomes for {} words",
            outcomes.len(),
            words.len()
        ));
    }
    for (i, (word, outcome)) in words.iter().zip(&outcomes).enumerate() {
        let reference = ref_bch_decode(code, word);
        match (&reference, outcome) {
            (RefBchOutcome::Clean, BatchOutcome::Clean) => {
                if batch[i] != *word {
                    return Err(format!("BCH batch word {i}: clean word was modified"));
                }
            }
            (
                RefBchOutcome::Corrected(positions),
                BatchOutcome::Corrected {
                    bits,
                    beyond_bound: false,
                },
            ) if *bits == positions.len() => {
                let mut expect = word.clone();
                for &p in positions {
                    expect.flip(p);
                }
                if batch[i] != expect {
                    return Err(format!(
                        "BCH batch word {i}: corrected word disagrees with reference flips {positions:?}"
                    ));
                }
            }
            (RefBchOutcome::Uncorrectable, BatchOutcome::Uncorrectable) => {
                if batch[i] != *word {
                    return Err(format!(
                        "BCH batch word {i}: production reported Uncorrectable but modified the word"
                    ));
                }
            }
            _ => {
                return Err(format!(
                    "BCH batch word {i} divergence: reference {reference:?} vs production {outcome:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Runs the production strict erasure decoder (`decode_erasures`) and
/// the linear-system reference on `word` and checks the verdicts agree
/// exactly — same accept/reject, same correction list, and (on reject)
/// the production word left unmodified.
///
/// # Errors
///
/// Returns a description of the divergence, suitable as a property
/// failure message.
pub fn diff_rs_erasures(code: &RsCode, word: &[u8], erasures: &[usize]) -> Result<(), String> {
    let reference = ref_rs_erasure_decode(code, word, erasures);
    let mut prod_word = word.to_vec();
    let production = code.decode_erasures(&mut prod_word, erasures);
    match (&reference, &production) {
        (RefRsOutcome::Clean, Ok(out)) if out.was_clean() => Ok(()),
        (RefRsOutcome::Corrected(corrections), Ok(out))
            if !out.was_clean() && out.corrections() == &corrections[..] =>
        {
            Ok(())
        }
        (RefRsOutcome::Uncorrectable, Err(RsError::Uncorrectable)) => {
            if prod_word == word {
                Ok(())
            } else {
                Err("RS: production reported Uncorrectable but modified the word".into())
            }
        }
        _ => Err(format!(
            "RS erasure divergence: reference {:?} vs production {:?}",
            reference,
            production.as_ref().map(|o| o.corrections().to_vec())
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::{Rng, StdRng};

    #[test]
    fn linear_solver_solves_a_known_system() {
        let f = Gf2m::new(8).unwrap();
        // x0 = 5, x1 = 9 under a full-rank 2x2 system.
        let a = vec![vec![1, 2], vec![3, 1]];
        let x = vec![5u32, 9];
        let b: Vec<u32> = a
            .iter()
            .map(|row| f.mul(row[0], x[0]) ^ f.mul(row[1], x[1]))
            .collect();
        match solve(&f, a, b) {
            LinearSolution::Unique(got) => assert_eq!(got, x),
            _ => panic!("system must be uniquely solvable"),
        }
    }

    #[test]
    fn linear_solver_flags_inconsistency() {
        let f = Gf2m::new(8).unwrap();
        // Duplicate rows with different right-hand sides.
        let a = vec![vec![1, 2], vec![1, 2], vec![0, 1]];
        let b = vec![1u32, 2, 3];
        assert!(matches!(solve(&f, a, b), LinearSolution::Inconsistent));
    }

    #[test]
    fn ref_bch_corrects_what_it_should() {
        let code = BchCode::new(8, 3, 64).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut data = vec![0u8; 8];
        rng.fill_bytes(&mut data);
        let cw = code.encode_bytes(&data);
        assert_eq!(ref_bch_decode(&code, &cw), RefBchOutcome::Clean);
        let mut word = cw.clone();
        word.flip(3);
        word.flip(40);
        assert_eq!(
            ref_bch_decode(&code, &word),
            RefBchOutcome::Corrected(vec![3, 40])
        );
    }

    #[test]
    fn ref_rs_recovers_erasure_magnitudes() {
        let code = RsCode::per_block();
        let mut rng = StdRng::seed_from_u64(10);
        let mut data = vec![0u8; 64];
        rng.fill_bytes(&mut data);
        let cw = code.encode(&data);
        assert_eq!(
            ref_rs_erasure_decode(&code, &cw, &[2, 7]),
            RefRsOutcome::Clean
        );
        let mut word = cw.clone();
        word[2] ^= 0x5a;
        word[7] ^= 0x01;
        assert_eq!(
            ref_rs_erasure_decode(&code, &word, &[2, 7]),
            RefRsOutcome::Corrected(vec![(2, 0x5a), (7, 0x01)])
        );
        // An undeclared error makes the system inconsistent.
        word[30] ^= 0xff;
        assert_eq!(
            ref_rs_erasure_decode(&code, &word, &[2, 7]),
            RefRsOutcome::Uncorrectable
        );
    }
}
