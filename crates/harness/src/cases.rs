//! Ready-made [`Case`] types for the workspace's codecs and runtime.
//!
//! Each type pairs a JSON encoding (for corpus persistence) with a
//! shrink strategy tuned to its domain: error lists lose one entry at a
//! time, payloads collapse to all-zeros, bit masks collapse to a single
//! bit, JSON trees lose children and promote grandchildren. Generation
//! stays in the tests (a closure over the runner's `StdRng`) because the
//! interesting distributions are code-parameter-specific.

use pmck_rt::Json;

use crate::runner::Case;

fn bytes_to_json(bytes: &[u8]) -> Json {
    let mut arr = Json::array();
    for &b in bytes {
        arr.push(b as u64);
    }
    arr
}

fn bytes_from_json(value: &Json) -> Option<Vec<u8>> {
    value
        .as_array()?
        .iter()
        .map(|v| v.as_u64().and_then(|n| u8::try_from(n).ok()))
        .collect()
}

fn usizes_from_json(value: &Json) -> Option<Vec<usize>> {
    value
        .as_array()?
        .iter()
        .map(|v| v.as_u64().and_then(|n| usize::try_from(n).ok()))
        .collect()
}

fn errors_to_json(errors: &[(usize, u8)]) -> Json {
    let mut arr = Json::array();
    for &(p, m) in errors {
        let mut pair = Json::array();
        pair.push(p as u64);
        pair.push(m as u64);
        arr.push(pair);
    }
    arr
}

fn errors_from_json(value: &Json) -> Option<Vec<(usize, u8)>> {
    value
        .as_array()?
        .iter()
        .map(|pair| {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let p = pair[0].as_u64().and_then(|n| usize::try_from(n).ok())?;
            let m = pair[1].as_u64().and_then(|n| u8::try_from(n).ok())?;
            Some((p, m))
        })
        .collect()
}

/// Two field elements; the case shape for GF(2^m) algebraic laws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldPairCase {
    /// First operand.
    pub a: u32,
    /// Second operand.
    pub b: u32,
}

impl Case for FieldPairCase {
    fn to_json(&self) -> Json {
        Json::object()
            .with("a", self.a as u64)
            .with("b", self.b as u64)
    }

    fn from_json(value: &Json) -> Option<Self> {
        Some(FieldPairCase {
            a: value.get("a")?.as_u64()? as u32,
            b: value.get("b")?.as_u64()? as u32,
        })
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for cand in [
            FieldPairCase { a: 0, b: self.b },
            FieldPairCase { a: self.a, b: 0 },
            FieldPairCase {
                a: self.a / 2,
                b: self.b,
            },
            FieldPairCase {
                a: self.a,
                b: self.b / 2,
            },
        ] {
            if cand != *self && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

/// A data payload plus symbol-error XOR masks; the case shape for
/// RS(72, 64) random-error properties. `errors` positions index the
/// codeword (`encode(data)`), masks are the XOR applied there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteErrorCase {
    /// The data symbols handed to `encode`.
    pub data: Vec<u8>,
    /// `(codeword position, xor mask)` pairs; masks should be nonzero.
    pub errors: Vec<(usize, u8)>,
}

impl ByteErrorCase {
    /// The codeword `encode(data)` with every error mask applied.
    pub fn corrupted(&self, code: &pmck_rs::RsCode) -> Vec<u8> {
        let mut word = code.encode(&self.data);
        let n = word.len();
        for &(p, m) in &self.errors {
            word[p % n] ^= m;
        }
        word
    }
}

impl Case for ByteErrorCase {
    fn to_json(&self) -> Json {
        Json::object()
            .with("data", bytes_to_json(&self.data))
            .with("errors", errors_to_json(&self.errors))
    }

    fn from_json(value: &Json) -> Option<Self> {
        Some(ByteErrorCase {
            data: bytes_from_json(value.get("data")?)?,
            errors: errors_from_json(value.get("errors")?)?,
        })
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for i in 0..self.errors.len() {
            let mut errors = self.errors.clone();
            errors.remove(i);
            out.push(ByteErrorCase {
                data: self.data.clone(),
                errors,
            });
        }
        if self.data.iter().any(|&b| b != 0) {
            out.push(ByteErrorCase {
                data: vec![0; self.data.len()],
                errors: self.errors.clone(),
            });
        }
        for i in 0..self.errors.len() {
            let (p, m) = self.errors[i];
            let lowest = m & m.wrapping_neg();
            if lowest != m && lowest != 0 {
                let mut errors = self.errors.clone();
                errors[i] = (p, lowest);
                out.push(ByteErrorCase {
                    data: self.data.clone(),
                    errors,
                });
            }
        }
        out
    }
}

/// A data payload, declared erasures with the garbage found there, and
/// optional extra (undeclared) errors; the case shape for RS erasure
/// properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErasureCase {
    /// The data symbols handed to `encode`.
    pub data: Vec<u8>,
    /// Declared erasure positions (distinct, in codeword coordinates).
    pub erasures: Vec<usize>,
    /// The byte *written over* each erased position (same length as
    /// `erasures`); models a dead chip returning garbage.
    pub fills: Vec<u8>,
    /// Undeclared `(position, xor mask)` errors outside the erasures.
    pub errors: Vec<(usize, u8)>,
}

impl ErasureCase {
    /// The codeword `encode(data)` with fills and errors applied.
    pub fn corrupted(&self, code: &pmck_rs::RsCode) -> Vec<u8> {
        let mut word = code.encode(&self.data);
        let n = word.len();
        for (&p, &fill) in self.erasures.iter().zip(&self.fills) {
            word[p % n] = fill;
        }
        for &(p, m) in &self.errors {
            word[p % n] ^= m;
        }
        word
    }
}

impl Case for ErasureCase {
    fn to_json(&self) -> Json {
        let mut erasures = Json::array();
        for &p in &self.erasures {
            erasures.push(p as u64);
        }
        Json::object()
            .with("data", bytes_to_json(&self.data))
            .with("erasures", erasures)
            .with("fills", bytes_to_json(&self.fills))
            .with("errors", errors_to_json(&self.errors))
    }

    fn from_json(value: &Json) -> Option<Self> {
        let case = ErasureCase {
            data: bytes_from_json(value.get("data")?)?,
            erasures: usizes_from_json(value.get("erasures")?)?,
            fills: bytes_from_json(value.get("fills")?)?,
            errors: errors_from_json(value.get("errors")?)?,
        };
        if case.fills.len() != case.erasures.len() {
            return None;
        }
        Some(case)
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for i in 0..self.erasures.len() {
            let mut cand = self.clone();
            cand.erasures.remove(i);
            cand.fills.remove(i);
            out.push(cand);
        }
        for i in 0..self.errors.len() {
            let mut cand = self.clone();
            cand.errors.remove(i);
            out.push(cand);
        }
        if self.data.iter().any(|&b| b != 0) {
            let mut cand = self.clone();
            cand.data = vec![0; self.data.len()];
            out.push(cand);
        }
        if self.fills.iter().any(|&b| b != 0) {
            let mut cand = self.clone();
            cand.fills = vec![0; self.fills.len()];
            out.push(cand);
        }
        out
    }
}

/// A data payload plus codeword bit-flip positions; the case shape for
/// BCH properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFlipCase {
    /// The data bytes handed to `encode_bytes`.
    pub data: Vec<u8>,
    /// Distinct bit positions flipped in the codeword.
    pub flips: Vec<usize>,
}

impl BitFlipCase {
    /// The codeword `encode_bytes(data)` with every flip applied.
    pub fn corrupted(&self, code: &pmck_bch::BchCode) -> pmck_bch::BitPoly {
        let mut word = code.encode_bytes(&self.data);
        for &p in &self.flips {
            word.flip(p % code.len());
        }
        word
    }
}

impl Case for BitFlipCase {
    fn to_json(&self) -> Json {
        let mut flips = Json::array();
        for &p in &self.flips {
            flips.push(p as u64);
        }
        Json::object()
            .with("data", bytes_to_json(&self.data))
            .with("flips", flips)
    }

    fn from_json(value: &Json) -> Option<Self> {
        Some(BitFlipCase {
            data: bytes_from_json(value.get("data")?)?,
            flips: usizes_from_json(value.get("flips")?)?,
        })
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for i in 0..self.flips.len() {
            let mut cand = self.clone();
            cand.flips.remove(i);
            out.push(cand);
        }
        if self.data.iter().any(|&b| b != 0) {
            let mut cand = self.clone();
            cand.data = vec![0; self.data.len()];
            out.push(cand);
        }
        out
    }
}

/// A batch of [`BitFlipCase`] words decoded together; the case shape for
/// the batched BCH decode API. The interesting region is mixed batches —
/// clean, correctable, and overweight words sharing one scratch — plus
/// the edges (empty batch, single word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFlipBatchCase {
    /// The words of the batch, in decode order.
    pub words: Vec<BitFlipCase>,
}

impl BitFlipBatchCase {
    /// The corrupted codewords of every entry, in order.
    pub fn corrupted(&self, code: &pmck_bch::BchCode) -> Vec<pmck_bch::BitPoly> {
        self.words.iter().map(|w| w.corrupted(code)).collect()
    }
}

impl Case for BitFlipBatchCase {
    fn to_json(&self) -> Json {
        let mut words = Json::array();
        for w in &self.words {
            words.push(w.to_json());
        }
        Json::object().with("words", words)
    }

    fn from_json(value: &Json) -> Option<Self> {
        Some(BitFlipBatchCase {
            words: value
                .get("words")?
                .as_array()?
                .iter()
                .map(BitFlipCase::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Drop one word at a time, then shrink each word in place.
        for i in 0..self.words.len() {
            let mut cand = self.clone();
            cand.words.remove(i);
            out.push(cand);
        }
        for i in 0..self.words.len() {
            for shrunk in self.words[i].shrink() {
                let mut cand = self.clone();
                cand.words[i] = shrunk;
                out.push(cand);
            }
        }
        out
    }
}

/// A whole-chip failure plus one scattered symbol error on a *surviving*
/// chip; the case shape for engine-level chipkill-erasure properties.
///
/// The dead chip consumes all eight RS check symbols as erasures, so the
/// stray error on the survivor is only recoverable because the erasure
/// path decodes the survivors' VLEWs before reconstructing — exactly the
/// §V-C layering the property pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipkillErasureCase {
    /// The chip that fails outright (any of the nine, parity included).
    pub failed_chip: usize,
    /// A different, surviving chip carrying the scattered error.
    pub error_chip: usize,
    /// Block whose slice of `error_chip` takes the error.
    pub error_block: u64,
    /// Byte offset within the chip's 8-byte block slice.
    pub error_byte: usize,
    /// Nonzero XOR mask applied to that byte.
    pub error_mask: u8,
}

impl Case for ChipkillErasureCase {
    fn to_json(&self) -> Json {
        Json::object()
            .with("failed_chip", self.failed_chip as u64)
            .with("error_chip", self.error_chip as u64)
            .with("error_block", self.error_block)
            .with("error_byte", self.error_byte as u64)
            .with("error_mask", self.error_mask as u64)
    }

    fn from_json(value: &Json) -> Option<Self> {
        let case = ChipkillErasureCase {
            failed_chip: value
                .get("failed_chip")?
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())?,
            error_chip: value
                .get("error_chip")?
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())?,
            error_block: value.get("error_block")?.as_u64()?,
            error_byte: value
                .get("error_byte")?
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())?,
            error_mask: value
                .get("error_mask")?
                .as_u64()
                .and_then(|n| u8::try_from(n).ok())?,
        };
        if case.failed_chip == case.error_chip || case.error_mask == 0 {
            return None;
        }
        Some(case)
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let lowest = self.error_mask & self.error_mask.wrapping_neg();
        if lowest != self.error_mask {
            out.push(ChipkillErasureCase {
                error_mask: lowest,
                ..self.clone()
            });
        }
        if self.error_byte != 0 {
            out.push(ChipkillErasureCase {
                error_byte: 0,
                ..self.clone()
            });
        }
        if self.error_block != 0 {
            out.push(ChipkillErasureCase {
                error_block: 0,
                ..self.clone()
            });
        }
        out
    }
}

/// The durable operation a [`CrashPlan`] cuts power inside.
///
/// Each kind names one intent-logged mutation of the persistence
/// domain: draining the EUR at a flush, a scrub repair-in-place over a
/// dead chip, a batch of Start-Gap moves, the §V-E re-stripe layout
/// flip, or a tier-policy migration re-encoding a region. The campaign
/// driver owns the mapping from kind to concrete request sequence; this
/// type only carries the name through JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOp {
    /// Writes that populate the EUR, then the flush that drains it.
    EurDrain,
    /// A chip failure followed by scrub repair-in-place, then a flush.
    Repair,
    /// Writes that trigger Start-Gap moves, then a flush.
    StartGap,
    /// A chip failure checkpointed durably, then the re-stripe flip.
    Restripe,
    /// Unflushed writes riding a tier-policy migration's single fence.
    TierMigrate,
}

impl CrashOp {
    /// Every operation the campaign covers.
    pub const ALL: [CrashOp; 5] = [
        CrashOp::EurDrain,
        CrashOp::Repair,
        CrashOp::StartGap,
        CrashOp::Restripe,
        CrashOp::TierMigrate,
    ];

    /// Stable corpus name.
    pub fn name(self) -> &'static str {
        match self {
            CrashOp::EurDrain => "eur-drain",
            CrashOp::Repair => "repair",
            CrashOp::StartGap => "start-gap",
            CrashOp::Restripe => "restripe",
            CrashOp::TierMigrate => "tier-migrate",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        CrashOp::ALL.into_iter().find(|op| op.name() == name)
    }
}

/// One power-cut point inside a durable operation; the case shape for
/// the crash-recovery campaign.
///
/// `cut_step` indexes the fuse budget: the number of durable 8-byte
/// chunk writes that succeed before the media dies silently. The
/// campaign maps it into the operation's measured step space —
/// `from_end` anchors it to the *end* of the operation (`cut_step = 1`
/// with `from_end` cuts just before the final chunk, i.e. a torn
/// map-commit), which is how crafted corpus entries pin the dangerous
/// tail of a re-stripe regardless of the exact step count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// The durable operation under test.
    pub op: CrashOp,
    /// Workload seed (block fill pattern, stack RNG streams).
    pub seed: u64,
    /// Raw cut coordinate, mapped modulo the operation's step count.
    pub cut_step: u64,
    /// Anchor `cut_step` to the end of the operation instead of the
    /// start.
    pub from_end: bool,
}

impl Case for CrashPlan {
    fn to_json(&self) -> Json {
        Json::object()
            .with("op", self.op.name())
            .with("seed", self.seed)
            .with("cut_step", self.cut_step)
            .with("from_end", self.from_end)
    }

    fn from_json(value: &Json) -> Option<Self> {
        Some(CrashPlan {
            op: CrashOp::from_name(value.get("op")?.as_str()?)?,
            seed: value.get("seed")?.as_u64()?,
            cut_step: value.get("cut_step")?.as_u64()?,
            from_end: value.get("from_end")?.as_bool()?,
        })
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // The op and seed define the scenario; only the cut coordinate
        // shrinks, toward the start of the operation.
        if self.from_end {
            out.push(CrashPlan {
                from_end: false,
                ..self.clone()
            });
        }
        if self.cut_step != 0 {
            out.push(CrashPlan {
                cut_step: 0,
                ..self.clone()
            });
            out.push(CrashPlan {
                cut_step: self.cut_step / 2,
                ..self.clone()
            });
            out.push(CrashPlan {
                cut_step: self.cut_step - 1,
                ..self.clone()
            });
        }
        out
    }
}

/// The disturbance a [`ClusterPlan`] drives the replicated tier
/// through. The campaign driver owns the mapping from scenario to
/// concrete node operations; this type only carries the name through
/// JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterScenario {
    /// No disturbance: pure replicated traffic.
    Clean,
    /// A node dies mid-campaign, is revived later, and must rebuild.
    NodeLoss,
    /// A node is suspended (slow replica) and resumed; anti-entropy
    /// heals what it missed.
    SlowReplica,
    /// A correlated DDR4-style fault mix from a seeded schedule: error
    /// bursts and a row fault everywhere, plus a chip failure on one
    /// node racing local repair against remote read-repair.
    FaultMix,
}

impl ClusterScenario {
    /// Every scenario the campaign covers.
    pub const ALL: [ClusterScenario; 4] = [
        ClusterScenario::Clean,
        ClusterScenario::NodeLoss,
        ClusterScenario::SlowReplica,
        ClusterScenario::FaultMix,
    ];

    /// Stable corpus name.
    pub fn name(self) -> &'static str {
        match self {
            ClusterScenario::Clean => "clean",
            ClusterScenario::NodeLoss => "node-loss",
            ClusterScenario::SlowReplica => "slow-replica",
            ClusterScenario::FaultMix => "fault-mix",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        ClusterScenario::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// One replicated-tier differential run; the case shape for the
/// cluster campaign. The driver replays the same seeded logical write
/// stream into a cluster and a single-node reference and requires the
/// two (and a pure mirror) to stay bit-identical through the scenario's
/// disturbance, including after node-loss recovery and read-repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPlan {
    /// The disturbance under test.
    pub scenario: ClusterScenario,
    /// Workload seed (write stream, fill pattern, node RNG streams).
    pub seed: u64,
    /// Read/write operations after the fill; scenario events anchor to
    /// fixed fractions of this span.
    pub cycles: u64,
}

impl Case for ClusterPlan {
    fn to_json(&self) -> Json {
        Json::object()
            .with("scenario", self.scenario.name())
            .with("seed", self.seed)
            .with("cycles", self.cycles)
    }

    fn from_json(value: &Json) -> Option<Self> {
        Some(ClusterPlan {
            scenario: ClusterScenario::from_name(value.get("scenario")?.as_str()?)?,
            seed: value.get("seed")?.as_u64()?,
            cycles: value.get("cycles")?.as_u64()?,
        })
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // The scenario and seed define the run; only the traffic span
        // shrinks, toward an immediate disturbance.
        if self.cycles != 0 {
            out.push(ClusterPlan {
                cycles: 0,
                ..self.clone()
            });
            out.push(ClusterPlan {
                cycles: self.cycles / 2,
                ..self.clone()
            });
            out.push(ClusterPlan {
                cycles: self.cycles - 1,
                ..self.clone()
            });
        }
        out
    }
}

/// An arbitrary JSON value tree; the case shape for `pmck_rt::json`
/// round-trip properties.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonCase(pub Json);

impl JsonCase {
    /// Generates a random value tree of depth at most `depth`, using
    /// only values that survive a text round trip exactly (floats keep
    /// a fractional part so they re-parse as floats, strings draw from
    /// a palette heavy in escapes and multi-byte characters).
    pub fn generate<R: pmck_rt::Rng + ?Sized>(rng: &mut R, depth: u32) -> JsonCase {
        JsonCase(gen_value(rng, depth))
    }
}

const STRING_PALETTE: &[char] = &[
    'a',
    'b',
    'z',
    '0',
    ' ',
    '"',
    '\\',
    '/',
    '\n',
    '\r',
    '\t',
    '\u{8}',
    '\u{c}',
    '\u{1}',
    '\u{7f}',
    'é',
    'Ω',
    '→',
    '🦀',
    '\u{10FFFF}',
];

fn gen_value<R: pmck_rt::Rng + ?Sized>(rng: &mut R, depth: u32) -> Json {
    let top = if depth == 0 { 6 } else { 8 };
    match rng.gen_range(0u32..top) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::I64(rng.gen_range(-1_000_000i64..0)),
        3 => Json::U64(if rng.gen_bool(0.2) {
            u64::MAX - rng.gen_range(0u64..4)
        } else {
            rng.gen_range(0u64..1_000_000)
        }),
        // Always fractional, exactly representable: round trips as F64.
        4 => Json::F64(rng.gen_range(-100_000i64..100_000) as f64 + 0.5),
        5 => {
            let len = rng.gen_range(0usize..12);
            Json::Str(
                (0..len)
                    .map(|_| STRING_PALETTE[rng.gen_range(0usize..STRING_PALETTE.len())])
                    .collect(),
            )
        }
        6 => {
            let len = rng.gen_range(0usize..5);
            Json::Arr((0..len).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0usize..5);
            Json::Obj(
                (0..len)
                    .map(|i| {
                        let klen = rng.gen_range(0usize..6);
                        let mut key: String = (0..klen)
                            .map(|_| STRING_PALETTE[rng.gen_range(0usize..STRING_PALETTE.len())])
                            .collect();
                        // Duplicate keys are legal JSON but ambiguous for
                        // `get`; suffix with the index to keep them unique.
                        key.push_str(&i.to_string());
                        (key, gen_value(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

fn shrink_value(value: &Json) -> Vec<Json> {
    let mut out = Vec::new();
    match value {
        Json::Null => {}
        Json::Bool(_) => out.push(Json::Null),
        Json::I64(n) => {
            out.push(Json::Null);
            if *n != 0 {
                out.push(Json::I64(0));
            }
        }
        Json::U64(n) => {
            out.push(Json::Null);
            if *n != 0 {
                out.push(Json::U64(0));
            }
        }
        Json::F64(x) => {
            out.push(Json::Null);
            if *x != 0.5 {
                out.push(Json::F64(0.5));
            }
        }
        Json::Str(s) => {
            out.push(Json::Null);
            if !s.is_empty() {
                out.push(Json::Str(String::new()));
                let half: String = s.chars().take(s.chars().count() / 2).collect();
                out.push(Json::Str(half));
            }
        }
        Json::Arr(items) => {
            out.push(Json::Null);
            for i in 0..items.len() {
                let mut a = items.clone();
                a.remove(i);
                out.push(Json::Arr(a));
            }
            // Promote each child, then shrink children in place.
            out.extend(items.iter().cloned());
            for i in 0..items.len() {
                for cand in shrink_value(&items[i]) {
                    let mut a = items.clone();
                    a[i] = cand;
                    out.push(Json::Arr(a));
                }
            }
        }
        Json::Obj(entries) => {
            out.push(Json::Null);
            for i in 0..entries.len() {
                let mut e = entries.clone();
                e.remove(i);
                out.push(Json::Obj(e));
            }
            out.extend(entries.iter().map(|(_, v)| v.clone()));
            for i in 0..entries.len() {
                for cand in shrink_value(&entries[i].1) {
                    let mut e = entries.clone();
                    e[i].1 = cand;
                    out.push(Json::Obj(e));
                }
            }
        }
    }
    out
}

impl Case for JsonCase {
    fn to_json(&self) -> Json {
        // Wrap the value so `null` cases still have a payload object.
        Json::object().with("value", self.0.clone())
    }

    fn from_json(value: &Json) -> Option<Self> {
        value.get("value").cloned().map(JsonCase)
    }

    fn shrink(&self) -> Vec<Self> {
        shrink_value(&self.0).into_iter().map(JsonCase).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmck_rt::rng::StdRng;

    #[test]
    fn byte_error_case_round_trips_through_json() {
        let case = ByteErrorCase {
            data: vec![1, 2, 3],
            errors: vec![(0, 0x80), (70, 1)],
        };
        assert_eq!(ByteErrorCase::from_json(&case.to_json()), Some(case));
    }

    #[test]
    fn erasure_case_round_trips_and_validates_fill_length() {
        let case = ErasureCase {
            data: vec![9; 4],
            erasures: vec![1, 5],
            fills: vec![0xaa, 0xbb],
            errors: vec![(3, 4)],
        };
        assert_eq!(ErasureCase::from_json(&case.to_json()), Some(case.clone()));
        let mut bad = case.to_json();
        bad.set("fills", bytes_to_json(&[1]));
        assert_eq!(ErasureCase::from_json(&bad), None);
    }

    #[test]
    fn bit_flip_case_round_trips_through_json() {
        let case = BitFlipCase {
            data: vec![0xff; 8],
            flips: vec![0, 17, 2311],
        };
        assert_eq!(BitFlipCase::from_json(&case.to_json()), Some(case));
    }

    #[test]
    fn shrink_removes_one_error_at_a_time() {
        let case = ByteErrorCase {
            data: vec![0; 4],
            errors: vec![(0, 1), (1, 2), (2, 3)],
        };
        let two_error_candidates = case
            .shrink()
            .into_iter()
            .filter(|c| c.errors.len() == 2)
            .count();
        assert_eq!(two_error_candidates, 3);
    }

    #[test]
    fn crash_plan_round_trips_and_shrinks_toward_the_start() {
        let case = CrashPlan {
            op: CrashOp::Restripe,
            seed: 9,
            cut_step: 40,
            from_end: true,
        };
        assert_eq!(CrashPlan::from_json(&case.to_json()), Some(case.clone()));
        let shrunk = case.shrink();
        assert!(shrunk.iter().any(|c| !c.from_end));
        assert!(shrunk.iter().any(|c| c.cut_step == 0));
        assert!(shrunk.iter().any(|c| c.cut_step == 20));
        // Unknown op names are rejected, not defaulted.
        let mut bad = case.to_json();
        bad.set("op", "warp-core");
        assert_eq!(CrashPlan::from_json(&bad), None);
    }

    #[test]
    fn generated_json_values_round_trip_by_construction() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let case = JsonCase::generate(&mut rng, 3);
            let text = case.0.dump();
            assert_eq!(Json::parse(&text).unwrap(), case.0, "dump: {text}");
        }
    }

    #[test]
    fn json_case_shrinks_toward_null() {
        let case = JsonCase(Json::Arr(vec![Json::U64(3), Json::Str("x".into())]));
        let shrunk = case.shrink();
        assert!(shrunk.contains(&JsonCase(Json::Null)));
        assert!(shrunk
            .iter()
            .any(|c| matches!(&c.0, Json::Arr(a) if a.len() == 1)));
    }
}
