//! Experiment harness: one regenerator per table/figure of the paper.
//!
//! Each experiment lives in [`experiments`] and produces a structured
//! [`report::Experiment`] with *paper-reported* versus *measured* values,
//! so the same code drives the per-figure binaries (`--bin fig04`, …),
//! the run-everything binary (`--bin experiments`, which rewrites
//! `EXPERIMENTS.md`), and assertions in tests.
//!
//! Analytic experiments (Figures 2–5, 7, the Appendix, §III/§IV/§V
//! arithmetic) are exact and fast. Simulation experiments (Figures 10,
//! 14–18) replay the 16-workload suite through the full-system simulator
//! via [`simsuite`]; set `PMCK_QUICK=1` to shorten them.

pub mod experiments;
pub mod report;
pub mod simsuite;
