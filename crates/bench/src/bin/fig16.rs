//! Regenerates the paper artifact `fig16` (see `pmck_bench::experiments::fig16`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig16::run().print();
}
