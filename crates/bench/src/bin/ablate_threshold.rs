//! Regenerates the paper artifact `ablate_threshold` (see `pmck_bench::experiments::ablate_threshold`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::ablate_threshold::run().print();
}
