//! Regenerates the paper artifact `storage` (see `pmck_bench::experiments::storage`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::storage::run().print();
}
