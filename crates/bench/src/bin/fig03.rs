//! Regenerates the paper artifact `fig03` (see `pmck_bench::experiments::fig03`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig03::run().print();
}
