//! Regenerates the paper artifact `appendix` (see `pmck_bench::experiments::appendix`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::appendix::run().print();
}
