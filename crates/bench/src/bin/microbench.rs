//! Microbenchmark harness for the hot codec and read-path kernels.
//!
//! Replaces the former `criterion` benches with a dependency-free
//! `std::time::Instant` timer.  Each scenario is warmed up, then run for
//! a fixed number of timed batches; the report carries the best and mean
//! batch cost per operation so run-to-run noise is visible.
//!
//! Usage:
//!
//! ```text
//! microbench [--iters N] [--batches N] [--pretty] [--filter SUBSTR]
//! ```
//!
//! Output is a single JSON document (`pmck-rt::json`) on stdout.

use std::time::Instant;

use pmck_bch::BchCode;
use pmck_core::{ChipkillConfig, Stack, StackBuilder};
use pmck_rs::RsCode;
use pmck_rt::json::Json;
use pmck_rt::rng::{Rng, StdRng};

struct Config {
    /// Operations per timed batch.
    iters: u64,
    /// Timed batches per scenario (the min and mean are reported).
    batches: u64,
    pretty: bool,
    filter: Option<String>,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            iters: 200,
            batches: 20,
            pretty: false,
            filter: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--iters" => cfg.iters = need(args.next(), "--iters"),
                "--batches" => cfg.batches = need(args.next(), "--batches"),
                "--pretty" => cfg.pretty = true,
                "--filter" => {
                    cfg.filter = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--filter needs a value")),
                    )
                }
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        cfg
    }
}

fn need(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a positive integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: microbench [--iters N] [--batches N] [--pretty] [--filter SUBSTR]");
    std::process::exit(2);
}

/// Times `f` for `cfg.batches` batches of `cfg.iters` calls each and
/// returns a JSON row.  `f` must consume its own input so the optimizer
/// cannot hoist work out of the loop; each call returns a value that is
/// fed to `std::hint::black_box`.
fn scenario<T>(cfg: &Config, name: &str, bytes_per_op: u64, mut f: impl FnMut() -> T) -> Json {
    // Warmup: one untimed batch.
    for _ in 0..cfg.iters {
        std::hint::black_box(f());
    }
    let mut best_ns = f64::INFINITY;
    let mut total_ns = 0.0;
    for _ in 0..cfg.batches {
        let start = Instant::now();
        for _ in 0..cfg.iters {
            std::hint::black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / cfg.iters as f64;
        best_ns = best_ns.min(ns);
        total_ns += ns;
    }
    let mean_ns = total_ns / cfg.batches as f64;
    let mut row = Json::object()
        .with("name", name)
        .with("ns_per_op_best", best_ns)
        .with("ns_per_op_mean", mean_ns);
    if bytes_per_op > 0 {
        row = row.with("bytes_per_op", bytes_per_op).with(
            "gib_per_s_best",
            bytes_per_op as f64 / best_ns * 1e9 / (1u64 << 30) as f64,
        );
    }
    row
}

fn wants(cfg: &Config, name: &str) -> bool {
    cfg.filter.as_deref().is_none_or(|f| name.contains(f))
}

fn bch_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    let code = BchCode::vlew();
    assert_eq!(code.t(), 22);
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u8> = (0..256).map(|_| rng.gen()).collect();
    let clean = code.encode_bytes(&data);

    if wants(cfg, "bch/encode_256B") {
        rows.push(scenario(cfg, "bch/encode_256B", 256, || {
            code.encode_bytes(std::hint::black_box(&data))
        }));
    }
    if wants(cfg, "bch/syndromes_clean") {
        rows.push(scenario(cfg, "bch/syndromes_clean", 256, || {
            code.syndromes(std::hint::black_box(&clean))
        }));
    }
    for nerr in [1usize, 5, 22] {
        let name = format!("bch/decode_{nerr}err");
        if !wants(cfg, &name) {
            continue;
        }
        let mut word = clean.clone();
        let mut pos = std::collections::BTreeSet::new();
        while pos.len() < nerr {
            pos.insert(rng.gen_range(0..code.len()));
        }
        for &p in &pos {
            word.flip(p);
        }
        rows.push(scenario(cfg, &name, 256, || {
            let mut w = word.clone();
            code.decode(&mut w).expect("correctable")
        }));
    }
}

fn rs_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    let code = RsCode::per_block();
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    let clean = code.encode(&data);

    if wants(cfg, "rs/encode_64B") {
        rows.push(scenario(cfg, "rs/encode_64B", 64, || {
            code.encode(std::hint::black_box(&data))
        }));
    }
    if wants(cfg, "rs/decode_clean") {
        rows.push(scenario(cfg, "rs/decode_clean", 64, || {
            let mut w = clean.clone();
            code.decode(&mut w).expect("clean")
        }));
    }
    for nerr in [1usize, 4] {
        let name = format!("rs/decode_{nerr}err");
        if !wants(cfg, &name) {
            continue;
        }
        let mut word = clean.clone();
        for k in 0..nerr {
            word[k * 17] ^= 0x5A;
        }
        rows.push(scenario(cfg, &name, 64, || {
            let mut w = word.clone();
            code.decode(&mut w).expect("correctable")
        }));
    }
    if wants(cfg, "rs/decode_erasure_chipkill") {
        // A dead chip: 8 known-bad symbol positions.
        let mut erased = clean.clone();
        erased[16..24].fill(0xFF);
        let erasures: Vec<usize> = (16..24).collect();
        rows.push(scenario(cfg, "rs/decode_erasure_chipkill", 64, || {
            let mut w = erased.clone();
            code.decode_with_erasures(&mut w, &erasures).expect("ok")
        }));
    }
}

/// Builds a filled proposal stack for the read/write-path scenarios.
/// Each scenario gets a fresh stack (they are not clonable: the pipeline
/// is a boxed device chain), written with the same seeded pattern and
/// optionally pre-damaged at `rber`.
fn filled_stack(build: impl FnOnce(StackBuilder) -> StackBuilder, rber: f64) -> Stack {
    let mut rng = StdRng::seed_from_u64(5);
    let mut stack = build(StackBuilder::proposal(256, ChipkillConfig::default()))
        .seed(5)
        .build();
    for a in 0..stack.num_blocks() {
        let mut b = [0u8; 64];
        rng.fill_bytes(&mut b[..]);
        stack.write(a, &b).unwrap();
    }
    if rber > 0.0 {
        stack.inject_bit_errors(rber).unwrap();
    }
    stack
}

fn readpath_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    if wants(cfg, "readpath/clean") {
        let mut stack = filled_stack(|b| b, 0.0);
        let mut a = 0;
        rows.push(scenario(cfg, "readpath/clean", 64, || {
            a = (a + 1) % stack.num_blocks();
            stack.read(a).expect("clean")
        }));
    }
    if wants(cfg, "readpath/runtime_rber_2e-4") {
        let mut stack = filled_stack(|b| b, 2e-4);
        let mut a = 0;
        rows.push(scenario(cfg, "readpath/runtime_rber_2e-4", 64, || {
            a = (a + 1) % stack.num_blocks();
            stack.read(a).expect("correctable")
        }));
    }
    if wants(cfg, "readpath/boot_rber_1e-3") {
        let mut stack = filled_stack(|b| b, 1e-3);
        let mut a = 0;
        rows.push(scenario(cfg, "readpath/boot_rber_1e-3", 64, || {
            a = (a + 1) % stack.num_blocks();
            stack.read(a).expect("correctable")
        }));
    }
    if wants(cfg, "writepath/conventional") {
        let mut stack = filled_stack(|b| b, 0.0);
        let block = [0xA5u8; 64];
        let mut a = 0;
        rows.push(scenario(cfg, "writepath/conventional", 64, || {
            a = (a + 1) % stack.num_blocks();
            stack.write(a, &block).expect("in range")
        }));
    }
    if wants(cfg, "writepath/bitwise_sum") {
        let mut stack = filled_stack(|b| b, 0.0);
        let block = [0xA5u8; 64];
        let mut a = 0;
        rows.push(scenario(cfg, "writepath/bitwise_sum", 64, || {
            a = (a + 1) % stack.num_blocks();
            stack.write_sum(a, &block).expect("in range")
        }));
    }
    if wants(cfg, "stack/full_pipeline_read") {
        // The whole middleware chain: wear-level remap + auto patrol on
        // top of the chipkill base — the per-access composition overhead
        // relative to readpath/clean.
        let mut stack = filled_stack(|b| b.wear_levelled(64).patrolled(4, 16), 0.0);
        let mut a = 0;
        rows.push(scenario(cfg, "stack/full_pipeline_read", 64, || {
            a = (a + 1) % stack.num_blocks();
            stack.read(a).expect("clean")
        }));
    }
}

fn main() {
    let cfg = Config::from_args();
    let mut rows = Vec::new();
    bch_scenarios(&cfg, &mut rows);
    rs_scenarios(&cfg, &mut rows);
    readpath_scenarios(&cfg, &mut rows);

    let doc = Json::object()
        .with("harness", "microbench")
        .with("iters_per_batch", cfg.iters)
        .with("batches", cfg.batches)
        .with("scenarios", Json::Arr(rows));
    if cfg.pretty {
        println!("{}", doc.pretty());
    } else {
        println!("{}", doc.dump());
    }
}
