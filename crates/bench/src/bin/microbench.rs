//! Microbenchmark harness for the hot codec and read-path kernels.
//!
//! Replaces the former `criterion` benches with a dependency-free
//! `std::time::Instant` timer.  Each scenario is warmed up, then run for
//! a fixed number of timed batches; the report carries the best and mean
//! batch cost per operation so run-to-run noise is visible, plus the
//! heap allocations per operation measured by a counting global
//! allocator (the runtime read path is expected to sit at 0).
//!
//! Usage:
//!
//! ```text
//! microbench [--iters N] [--batches N] [--pretty] [--filter SUBSTR]
//!            [--baseline FILE] [--max-regression X]
//! ```
//!
//! With `--baseline FILE` the run is compared scenario-by-scenario
//! against a previously saved report: any scenario whose best ns/op
//! exceeds its per-scenario threshold (default `--max-regression`, 2.0)
//! times the baseline fails the run (exit code 1). This is the CI
//! perf-smoke gate.
//!
//! Output is a single JSON document (`pmck-rt::json`) on stdout.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pmck_bch::{BchCode, BchScratch};
use pmck_cluster::{Cluster, ClusterConfig};
use pmck_core::{
    Access, AccessContext, BlockDevice, ChipkillConfig, PmemConfig, ProtectionTier, Request, Stack,
    StackBuilder, TierPolicy, TieredMemory,
};
use pmck_gf::SyndromeRows;
use pmck_rs::{RsCode, RsScratch};
use pmck_rt::json::Json;
use pmck_rt::rng::{Rng, StdRng};
use pmck_service::ShardedService;

/// A pass-through allocator that counts allocation calls, so each
/// scenario can report heap allocations per operation.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Config {
    /// Operations per timed batch.
    iters: u64,
    /// Timed batches per scenario (the min and mean are reported).
    batches: u64,
    pretty: bool,
    filter: Option<String>,
    /// A saved report to gate against.
    baseline: Option<String>,
    /// Default regression threshold (current/baseline best ns ratio).
    max_regression: f64,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            iters: 200,
            batches: 20,
            pretty: false,
            filter: None,
            baseline: None,
            max_regression: 2.0,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--iters" => cfg.iters = need(args.next(), "--iters"),
                "--batches" => cfg.batches = need(args.next(), "--batches"),
                "--pretty" => cfg.pretty = true,
                "--filter" => {
                    cfg.filter = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--filter needs a value")),
                    )
                }
                "--baseline" => {
                    cfg.baseline = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--baseline needs a file path")),
                    )
                }
                "--max-regression" => {
                    cfg.max_regression = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&x: &f64| x > 0.0)
                        .unwrap_or_else(|| usage("--max-regression needs a positive number"))
                }
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        cfg
    }
}

fn need(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a positive integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: microbench [--iters N] [--batches N] [--pretty] [--filter SUBSTR] \
         [--baseline FILE] [--max-regression X]"
    );
    std::process::exit(2);
}

/// Times `f` for `cfg.batches` batches of `cfg.iters` calls each and
/// returns a JSON row.  `f` must consume its own input so the optimizer
/// cannot hoist work out of the loop; each call returns a value that is
/// fed to `std::hint::black_box`. Allocation calls across the timed
/// batches are averaged into `allocs_per_op`.
fn scenario<T>(cfg: &Config, name: &str, bytes_per_op: u64, mut f: impl FnMut() -> T) -> Json {
    // Warmup: one untimed batch (fills lazy tables and scratch pools).
    for _ in 0..cfg.iters {
        std::hint::black_box(f());
    }
    let mut best_ns = f64::INFINITY;
    let mut total_ns = 0.0;
    let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..cfg.batches {
        let start = Instant::now();
        for _ in 0..cfg.iters {
            std::hint::black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / cfg.iters as f64;
        best_ns = best_ns.min(ns);
        total_ns += ns;
    }
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
    let mean_ns = total_ns / cfg.batches as f64;
    let mut row = Json::object()
        .with("name", name)
        .with("ns_per_op_best", best_ns)
        .with("ns_per_op_mean", mean_ns)
        .with(
            "allocs_per_op",
            allocs as f64 / (cfg.batches * cfg.iters) as f64,
        );
    if bytes_per_op > 0 {
        row = row.with("bytes_per_op", bytes_per_op).with(
            "gib_per_s_best",
            bytes_per_op as f64 / best_ns * 1e9 / (1u64 << 30) as f64,
        );
    }
    row
}

fn wants(cfg: &Config, name: &str) -> bool {
    cfg.filter.as_deref().is_none_or(|f| name.contains(f))
}

fn gf_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    if wants(cfg, "gf/syndrome_row_table") {
        // The raw row-table kernel: all 8 syndromes of a 72-byte word.
        let rows_tbl = SyndromeRows::gf256(8);
        let word: Vec<u8> = (0..72).map(|i| (i * 37 + 5) as u8).collect();
        let mut s = [0u32; 8];
        rows.push(scenario(cfg, "gf/syndrome_row_table", 72, || {
            rows_tbl.syndromes_into(std::hint::black_box(&word), &mut s);
            s[0]
        }));
    }
}

fn bch_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    let code = BchCode::vlew();
    assert_eq!(code.t(), 22);
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u8> = (0..256).map(|_| rng.gen()).collect();
    let clean = code.encode_bytes(&data);

    if wants(cfg, "bch/encode_256B") {
        rows.push(scenario(cfg, "bch/encode_256B", 256, || {
            code.encode_bytes(std::hint::black_box(&data))
        }));
    }
    if wants(cfg, "bch/syndromes_clean") {
        rows.push(scenario(cfg, "bch/syndromes_clean", 256, || {
            code.syndromes(std::hint::black_box(&clean))
        }));
    }
    if wants(cfg, "bch/syndromes_sliced") {
        // The allocation-free sliced kernel on a dirty word (clean words
        // cost the same — the kernel is weight-independent).
        let mut dirty = clean.clone();
        dirty.flip(17);
        dirty.flip(1031);
        let mut s = vec![0u32; 2 * code.t()];
        rows.push(scenario(cfg, "bch/syndromes_sliced", 256, || {
            code.syndromes_into(std::hint::black_box(&dirty), &mut s)
        }));
    }
    if wants(cfg, "bch/decode_clean") {
        // The scrub fast path: syndrome check on an error-free word
        // through the scratch decoder (0 allocs/op).
        let mut scratch = BchScratch::new(&code);
        let mut w = clean.clone();
        rows.push(scenario(cfg, "bch/decode_clean", 256, || {
            w.copy_from(std::hint::black_box(&clean));
            code.decode_scratch(&mut w, &mut scratch)
                .expect("clean")
                .num_corrected()
        }));
    }
    // Errorful decodes at the radius boundary markers: 1 error (the
    // common single-cell upset), 2 errors (BM degree > 1 engages the
    // full locator machinery), and t = 22 (the worst correctable case,
    // dominated by the bit-sliced Chien scan).
    for (tag, nerr) in [("t1", 1usize), ("t2", 2), ("tmax", 22)] {
        let name = format!("bch/decode_errorful_{tag}");
        if !wants(cfg, &name) {
            continue;
        }
        let mut word = clean.clone();
        let mut pos = std::collections::BTreeSet::new();
        while pos.len() < nerr {
            pos.insert(rng.gen_range(0..code.len()));
        }
        for &p in &pos {
            word.flip(p);
        }
        let mut scratch = BchScratch::new(&code);
        let mut w = word.clone();
        rows.push(scenario(cfg, &name, 256, || {
            w.copy_from(std::hint::black_box(&word));
            code.decode_scratch(&mut w, &mut scratch)
                .expect("correctable")
                .num_corrected()
        }));
    }
    if wants(cfg, "bch/decode_batch_scrub") {
        // A boot-scrub stripe window: 9 VLEW words, mostly clean with a
        // few errorful lanes — the shape `decode_vlew_stripe_into`
        // hands to the batch decoder.
        let weights = [0usize, 1, 0, 2, 0, 0, 5, 0, 1];
        let words: Vec<_> = weights
            .iter()
            .map(|&nerr| {
                let mut word = clean.clone();
                let mut pos = std::collections::BTreeSet::new();
                while pos.len() < nerr {
                    pos.insert(rng.gen_range(0..code.len()));
                }
                for &p in &pos {
                    word.flip(p);
                }
                word
            })
            .collect();
        let mut batch = words.clone();
        let mut scratch = BchScratch::new(&code);
        rows.push(scenario(cfg, "bch/decode_batch_scrub", 9 * 256, || {
            for (dst, src) in batch.iter_mut().zip(&words) {
                dst.copy_from(std::hint::black_box(src));
            }
            code.decode_batch(&mut batch, &mut scratch).len()
        }));
    }
}

fn rs_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    let code = RsCode::per_block();
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    let clean = code.encode(&data);

    if wants(cfg, "rs/encode_64B") {
        rows.push(scenario(cfg, "rs/encode_64B", 64, || {
            code.encode(std::hint::black_box(&data))
        }));
    }
    if wants(cfg, "rs/decode_clean") {
        // The hot path: scratch decode of an already-valid word.
        let mut scratch = RsScratch::new(&code);
        let mut w = clean.clone();
        rows.push(scenario(cfg, "rs/decode_clean", 64, || {
            w.copy_from_slice(std::hint::black_box(&clean));
            code.decode_scratch(&mut w, &mut scratch)
                .expect("clean")
                .num_corrections()
        }));
    }
    for nerr in [1usize, 4] {
        let name = format!("rs/decode_{nerr}err");
        if !wants(cfg, &name) {
            continue;
        }
        let mut word = clean.clone();
        for k in 0..nerr {
            word[k * 17] ^= 0x5A;
        }
        let mut scratch = RsScratch::new(&code);
        let mut w = word.clone();
        rows.push(scenario(cfg, &name, 64, || {
            w.copy_from_slice(std::hint::black_box(&word));
            code.decode_scratch(&mut w, &mut scratch)
                .expect("correctable")
                .num_corrections()
        }));
    }
    if wants(cfg, "rs/decode_erasure_chipkill") {
        // A dead chip: 8 known-bad symbol positions.
        let mut erased = clean.clone();
        erased[16..24].fill(0xFF);
        let erasures: Vec<usize> = (16..24).collect();
        let mut scratch = RsScratch::new(&code);
        let mut w = erased.clone();
        rows.push(scenario(cfg, "rs/decode_erasure_chipkill", 64, || {
            w.copy_from_slice(std::hint::black_box(&erased));
            code.decode_with_erasures_scratch(&mut w, &erasures, &mut scratch)
                .expect("ok")
                .num_corrections()
        }));
    }
}

/// Builds a filled proposal stack for the read/write-path scenarios.
/// Each scenario gets a fresh stack (they are not clonable: the pipeline
/// is a boxed device chain), written with the same seeded pattern and
/// optionally pre-damaged at `rber`.
fn filled_stack(build: impl FnOnce(StackBuilder) -> StackBuilder, rber: f64) -> Stack {
    let mut rng = StdRng::seed_from_u64(5);
    let mut stack = build(StackBuilder::proposal(256, ChipkillConfig::default()))
        .seed(5)
        .build();
    for a in 0..stack.num_blocks() {
        let mut b = [0u8; 64];
        rng.fill_bytes(&mut b[..]);
        stack.write(a, &b).unwrap();
    }
    if rber > 0.0 {
        stack.inject_bit_errors(rber).unwrap();
    }
    stack
}

fn readpath_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    // The read scenarios run on `Stack::read_into` — the hot-path form
    // that decodes straight into a caller buffer, skipping the outcome
    // copy `Stack::read` pays.
    if wants(cfg, "readpath/clean") {
        let mut stack = filled_stack(|b| b, 0.0);
        let mut a = 0;
        let mut buf = [0u8; 64];
        rows.push(scenario(cfg, "readpath/clean", 64, || {
            a = (a + 1) % stack.num_blocks();
            let path = stack.read_into(a, &mut buf).expect("clean");
            (buf[0], path)
        }));
    }
    if wants(cfg, "readpath/runtime_rber_2e-4") {
        let mut stack = filled_stack(|b| b, 2e-4);
        let mut a = 0;
        let mut buf = [0u8; 64];
        rows.push(scenario(cfg, "readpath/runtime_rber_2e-4", 64, || {
            a = (a + 1) % stack.num_blocks();
            let path = stack.read_into(a, &mut buf).expect("correctable");
            (buf[0], path)
        }));
    }
    if wants(cfg, "readpath/boot_rber_1e-3") {
        let mut stack = filled_stack(|b| b, 1e-3);
        let mut a = 0;
        let mut buf = [0u8; 64];
        rows.push(scenario(cfg, "readpath/boot_rber_1e-3", 64, || {
            a = (a + 1) % stack.num_blocks();
            let path = stack.read_into(a, &mut buf).expect("correctable");
            (buf[0], path)
        }));
    }
    if wants(cfg, "writepath/conventional") {
        let mut stack = filled_stack(|b| b, 0.0);
        let block = [0xA5u8; 64];
        let mut a = 0;
        rows.push(scenario(cfg, "writepath/conventional", 64, || {
            a = (a + 1) % stack.num_blocks();
            stack.write(a, &block).expect("in range")
        }));
    }
    if wants(cfg, "writepath/bitwise_sum") {
        let mut stack = filled_stack(|b| b, 0.0);
        let block = [0xA5u8; 64];
        let mut a = 0;
        rows.push(scenario(cfg, "writepath/bitwise_sum", 64, || {
            a = (a + 1) % stack.num_blocks();
            stack.write_sum(a, &block).expect("in range")
        }));
    }
    if wants(cfg, "stack/full_pipeline_read") {
        // The whole middleware chain: wear-level remap + auto patrol on
        // top of the chipkill base — the per-access composition overhead
        // relative to readpath/clean.
        let mut stack = filled_stack(|b| b.wear_levelled(64).patrolled(4, 16), 0.0);
        let mut a = 0;
        let mut buf = [0u8; 64];
        rows.push(scenario(cfg, "stack/full_pipeline_read", 64, || {
            a = (a + 1) % stack.num_blocks();
            let path = stack.read_into(a, &mut buf).expect("clean");
            (buf[0], path)
        }));
    }
}

/// `tier/*`: the adaptive-tier paths. The three read scenarios time the
/// clean read path under each protection layout (the dense tier decodes
/// against shorter VLEW spans, the RS-only tier skips VLEW bookkeeping
/// entirely); `migrate_region` times a full region re-encode between
/// the paper and RS-only tiers, image buffer allocation included —
/// `allocs_per_op` is expected non-zero here, unlike the read paths.
fn tier_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    for tier in ProtectionTier::ALL {
        let name = format!("tier/read_{}", tier.as_str());
        if !wants(cfg, &name) {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(5);
        let mut stack = StackBuilder::proposal(256, ChipkillConfig::for_tier(tier))
            .seed(5)
            .build();
        for a in 0..stack.num_blocks() {
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut b[..]);
            stack.write(a, &b).unwrap();
        }
        let mut a = 0;
        let mut buf = [0u8; 64];
        rows.push(scenario(cfg, &name, 64, || {
            a = (a + 1) % stack.num_blocks();
            let path = stack.read_into(a, &mut buf).expect("clean");
            (buf[0], path)
        }));
    }
    if wants(cfg, "tier/migrate_region") {
        // One 32-block region ping-ponging between the paper and
        // RS-only tiers: each op is one full read-out + re-encode +
        // tier commit.
        let mut mem = TieredMemory::new(32, 1, ChipkillConfig::default(), TierPolicy::default());
        let mut ctx = AccessContext::new(7);
        for a in 0..mem.num_blocks() {
            let data = [a as u8 ^ 0x3C; 64];
            mem.access(Access::Write { addr: a, data }, &mut ctx)
                .expect("prefill");
        }
        let mut worn = false;
        rows.push(scenario(cfg, "tier/migrate_region", 32 * 64, || {
            // Alternate the observed RBER across the paper boundary so
            // every step migrates.
            mem.rber_mut().reset_observation(0);
            let rate = if worn { 100_000 } else { 1 };
            mem.rber_mut().record_observation(0, rate, 1_000_000_000);
            worn = !worn;
            match mem.access(Access::TierStep, &mut ctx).expect("tier step") {
                pmck_core::AccessOutcome::Tiered(r) => {
                    assert_eq!(r.migrations, 1, "every step must migrate");
                    r.migrations
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }));
    }
}

/// `pmem/*`: the persistence-domain hot paths. `flush_clean_write`
/// rewrites already-durable data and flushes — the EUR drain finds
/// nothing, the compare-skip staging copies nothing, and the fence is
/// empty, so `allocs_per_op` is expected at 0. `recovery_replay` is the
/// cold path: cut power, replay the sealed intent-log record, and
/// rebuild the live arrays wholesale from the durable image.
fn pmem_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    if wants(cfg, "pmem/flush_clean_write") {
        let mut stack = filled_stack(|b| b.persistent(PmemConfig::default()), 0.0);
        stack.flush().expect("seal the filled image");
        let block = [0xA5u8; 64];
        stack.write(0, &block).expect("in range");
        stack.flush().expect("seal the probe block");
        rows.push(scenario(cfg, "pmem/flush_clean_write", 64, || {
            stack.write(0, &block).expect("in range");
            stack.flush().expect("clean flush")
        }));
    }
    if wants(cfg, "pmem/recovery_replay") {
        let mut stack = filled_stack(|b| b.persistent(PmemConfig::default()), 0.0);
        stack.flush().expect("seal the filled image");
        rows.push(scenario(cfg, "pmem/recovery_replay", 0, || {
            stack.power_cut().expect("power cut");
            stack.recover().expect("recover").lines_redone
        }));
    }
}

/// `service/parallel_read_throughput`: clean-read ops/sec through the
/// sharded service at 1/2/4/8 shards over the same 256-block address
/// space, batched full-space read sweeps. `allocs_per_op` measures the
/// per-shard steady state (buffers circulate; nothing allocates after
/// warmup). Measured speedup tracks the machine's core count — on a
/// single-core host the shard counts tie.
fn service_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    const TOTAL_BLOCKS: u64 = 256;
    for shards in [1usize, 2, 4, 8] {
        let name = format!("service/parallel_read_throughput/{shards}shard");
        if !wants(cfg, &name) {
            continue;
        }
        let per_shard = TOTAL_BLOCKS / shards as u64;
        let mut svc = ShardedService::new(shards, 5, |_, seed| {
            StackBuilder::proposal(per_shard, ChipkillConfig::default())
                .seed(seed)
                .build()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let writes: Vec<Request> = (0..TOTAL_BLOCKS)
            .map(|a| {
                let mut data = [0u8; 64];
                rng.fill_bytes(&mut data[..]);
                Request::Write { addr: a, data }
            })
            .collect();
        for r in svc.submit_batch(&writes) {
            r.expect("prefill");
        }
        let reads: Vec<Request> = (0..TOTAL_BLOCKS).map(Request::Read).collect();
        let mut out = Vec::new();
        // One batch submission serves TOTAL_BLOCKS read ops.
        let batches_per_iter = (cfg.iters / TOTAL_BLOCKS).max(1);
        // Warm up for several rounds: the job/result buffers circulate
        // through three hands (staging, mailbox, worker), so every Vec
        // in the cycle needs a few batches to reach final capacity.
        for _ in 0..batches_per_iter.max(4) {
            svc.submit_batch_into(&reads, &mut out); // warmup
        }
        let mut best_ns = f64::INFINITY;
        let mut total_ns = 0.0;
        let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..cfg.batches {
            let start = Instant::now();
            for _ in 0..batches_per_iter {
                svc.submit_batch_into(&reads, &mut out);
                std::hint::black_box(&out);
            }
            let ops = (batches_per_iter * TOTAL_BLOCKS) as f64;
            let ns = start.elapsed().as_nanos() as f64 / ops;
            best_ns = best_ns.min(ns);
            total_ns += ns;
        }
        let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
        let total_ops = cfg.batches * batches_per_iter * TOTAL_BLOCKS;
        rows.push(
            Json::object()
                .with("name", name)
                .with("shards", shards as u64)
                .with("ns_per_op_best", best_ns)
                .with("ns_per_op_mean", total_ns / cfg.batches as f64)
                .with("ops_per_s_best", 1e9 / best_ns)
                .with("allocs_per_op", allocs as f64 / total_ops as f64)
                .with("bytes_per_op", 64u64),
        );
        svc.shutdown();
    }

    if wants(cfg, "service/ring_submit_latency") {
        // One ticket ping-ponged through a single-shard ring: the
        // round-trip floor of the streaming plane (submit → SPSC push →
        // worker wake → decode → completion pop), with no batching to
        // amortize it.
        let mut svc = ShardedService::with_clients(1, 1, 5, |_, seed| {
            StackBuilder::proposal(64, ChipkillConfig::default())
                .seed(seed)
                .build()
        });
        let mut client = svc.take_client().expect("one spare lane");
        for a in 0..svc.num_blocks() {
            let t = client
                .submit(&Request::Write {
                    addr: a,
                    data: [a as u8; 64],
                })
                .expect("prefill submit");
            client.wait_response(t).expect("prefill");
        }
        let blocks = svc.num_blocks();
        let mut a = 0u64;
        rows.push(scenario(cfg, "service/ring_submit_latency", 64, || {
            a = (a + 1) % blocks;
            let t = client.try_submit(&Request::Read(a)).expect("window free");
            client.wait_response(t).expect("clean read")
        }));
        drop(client);
        svc.shutdown();
    }

    for shards in [1usize, 4, 8] {
        let name = format!("service/streaming_read_throughput/{shards}shard");
        if !wants(cfg, &name) {
            continue;
        }
        // The streaming plane at full window: tickets pipelined 64 deep
        // so the client never waits for a specific response before
        // submitting the next request — the saturation shape, measured
        // per op.
        const WINDOW: usize = 64;
        let per_shard = TOTAL_BLOCKS / shards as u64;
        let mut svc = ShardedService::with_clients(shards, 1, 5, |_, seed| {
            StackBuilder::proposal(per_shard, ChipkillConfig::default())
                .seed(seed)
                .build()
        });
        let mut client = svc.take_client().expect("one spare lane");
        let mut rng = StdRng::seed_from_u64(5);
        for a in 0..TOTAL_BLOCKS {
            let mut data = [0u8; 64];
            rng.fill_bytes(&mut data[..]);
            let t = client
                .submit(&Request::Write { addr: a, data })
                .expect("prefill submit");
            client.wait_response(t).expect("prefill");
        }
        let mut pending = std::collections::VecDeque::with_capacity(WINDOW);
        let mut run = |ops: u64| {
            for i in 0..ops {
                if pending.len() == WINDOW {
                    let t = pending.pop_front().unwrap();
                    client.wait_response(t).expect("clean read");
                }
                let t = client
                    .try_submit(&Request::Read(i % TOTAL_BLOCKS))
                    .expect("window has room");
                pending.push_back(t);
            }
            for t in pending.drain(..) {
                client.wait_response(t).expect("clean read");
            }
        };
        run(cfg.iters.max(TOTAL_BLOCKS)); // warmup
        let mut best_ns = f64::INFINITY;
        let mut total_ns = 0.0;
        let ops_per_batch = cfg.iters.max(TOTAL_BLOCKS);
        let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
        for _ in 0..cfg.batches {
            let start = Instant::now();
            run(ops_per_batch);
            let ns = start.elapsed().as_nanos() as f64 / ops_per_batch as f64;
            best_ns = best_ns.min(ns);
            total_ns += ns;
        }
        let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;
        rows.push(
            Json::object()
                .with("name", name)
                .with("shards", shards as u64)
                .with("ns_per_op_best", best_ns)
                .with("ns_per_op_mean", total_ns / cfg.batches as f64)
                .with("ops_per_s_best", 1e9 / best_ns)
                .with(
                    "allocs_per_op",
                    allocs as f64 / (cfg.batches * ops_per_batch) as f64,
                )
                .with("bytes_per_op", 64u64),
        );
        drop(client);
        svc.shutdown();
    }
}

/// `cluster/*`: the replicated tier's quorum walk over local `Stack`
/// nodes. The replicated-read scenarios time the clean fast path — the
/// walk serves from the first healthy replica and exits at read
/// quorum, so 3-node cost should track 1-node cost plus the placement
/// arithmetic, and both are expected at 0 allocs/op. `read_repair`
/// times the full repair round-trip: every op marks one replica stale,
/// and the next read of that block re-writes it from the served data.
fn cluster_scenarios(cfg: &Config, rows: &mut Vec<Json>) {
    const BLOCKS: u64 = 96;
    for (name, nodes, replicas) in [
        ("cluster/replicated_read_1node", 1usize, 1usize),
        ("cluster/replicated_read_3node", 3, 3),
    ] {
        if !wants(cfg, name) {
            continue;
        }
        let c = ClusterConfig {
            replicas,
            write_quorum: 1,
            read_quorum: 1,
        };
        let mut cl = Cluster::local(nodes, BLOCKS, 5, c);
        let mut rng = StdRng::seed_from_u64(5);
        for a in 0..BLOCKS {
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut b[..]);
            cl.write_block(a, &b).expect("prefill");
        }
        let mut a = 0;
        rows.push(scenario(cfg, name, 64, || {
            a = (a + 1) % BLOCKS;
            let out = cl.read_block(a).expect("clean");
            (out.data[0], out.replica)
        }));
    }
    if wants(cfg, "cluster/read_repair") {
        let c = ClusterConfig {
            replicas: 2,
            write_quorum: 1,
            read_quorum: 1,
        };
        let mut cl = Cluster::local(3, BLOCKS, 5, c);
        let mut rng = StdRng::seed_from_u64(5);
        for a in 0..BLOCKS {
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut b[..]);
            cl.write_block(a, &b).expect("prefill");
        }
        let mut a = 0;
        rows.push(scenario(cfg, "cluster/read_repair", 64, || {
            a = (a + 1) % BLOCKS;
            // Stale the *first* replica in placement order so the walk
            // skips it, serves from the second, and write-repairs it.
            cl.mark_replica_stale(a, 0);
            let out = cl.read_block(a).expect("repairable");
            assert_eq!(out.repaired, 1, "every op must heal the stale replica");
            out.data[0]
        }));
    }
}

/// Per-scenario regression thresholds for the baseline gate. Scenarios
/// dominated by rare slow iterations (fault-heavy reads, patrol-driven
/// stacks) get more headroom than tight single-kernel loops.
fn threshold_for(name: &str, default: f64) -> f64 {
    match name {
        "readpath/boot_rber_1e-3" | "readpath/runtime_rber_2e-4" | "writepath/bitwise_sum" => {
            default * 1.5
        }
        _ => default,
    }
}

/// Compares `rows` against a saved baseline report. Returns the
/// comparison rows and whether any scenario regressed past its
/// threshold.
fn compare_with_baseline(cfg: &Config, rows: &[Json], baseline_text: &str) -> (Vec<Json>, bool) {
    let baseline = match Json::parse(baseline_text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: cannot parse baseline: {e}");
            std::process::exit(2);
        }
    };
    let empty = [];
    let base_rows = baseline
        .get("scenarios")
        .and_then(|s| s.as_array())
        .unwrap_or(&empty);
    let base_best = |name: &str| -> Option<f64> {
        base_rows
            .iter()
            .find(|r| r.get("name").and_then(|n| n.as_str()) == Some(name))
            .and_then(|r| r.get("ns_per_op_best"))
            .and_then(|v| v.as_f64())
    };
    let mut failed = false;
    let mut report = Vec::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or_default()
            .to_string();
        let cur = row
            .get("ns_per_op_best")
            .and_then(|v| v.as_f64())
            .unwrap_or(f64::INFINITY);
        let Some(base) = base_best(&name) else {
            eprintln!("baseline: {name:<28} (new scenario, not gated)");
            continue;
        };
        let ratio = cur / base;
        let limit = threshold_for(&name, cfg.max_regression);
        let regressed = ratio > limit;
        failed |= regressed;
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        eprintln!(
            "baseline: {name:<28} {base:>10.0} -> {cur:>10.0} ns/op  ({ratio:>5.2}x, limit {limit:.2}x)  {verdict}"
        );
        report.push(
            Json::object()
                .with("name", name)
                .with("baseline_ns_per_op_best", base)
                .with("ratio", ratio)
                .with("limit", limit)
                .with("regressed", regressed),
        );
    }
    (report, failed)
}

fn main() {
    let cfg = Config::from_args();
    let mut rows = Vec::new();
    gf_scenarios(&cfg, &mut rows);
    bch_scenarios(&cfg, &mut rows);
    rs_scenarios(&cfg, &mut rows);
    readpath_scenarios(&cfg, &mut rows);
    tier_scenarios(&cfg, &mut rows);
    pmem_scenarios(&cfg, &mut rows);
    service_scenarios(&cfg, &mut rows);
    cluster_scenarios(&cfg, &mut rows);

    let mut doc = Json::object()
        .with("harness", "microbench")
        .with("iters_per_batch", cfg.iters)
        .with("batches", cfg.batches)
        .with("scenarios", Json::Arr(rows.clone()));

    let mut failed = false;
    if let Some(path) = &cfg.baseline {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let (report, regressed) = compare_with_baseline(&cfg, &rows, &text);
        doc = doc.with("baseline_compare", Json::Arr(report));
        failed = regressed;
    }

    if cfg.pretty {
        println!("{}", doc.pretty());
    } else {
        println!("{}", doc.dump());
    }
    if failed {
        eprintln!("perf-smoke: regression beyond threshold — failing");
        std::process::exit(1);
    }
}
