//! Regenerates the paper artifact `fig18` (see `pmck_bench::experiments::fig18`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig18::run().print();
}
