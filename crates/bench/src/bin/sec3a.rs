//! Regenerates the paper artifact `sec3a` (see `pmck_bench::experiments::sec3a`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::sec3a::run().print();
}
