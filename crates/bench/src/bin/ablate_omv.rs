//! Regenerates the paper artifact `ablate_omv` (see `pmck_bench::experiments::ablate_omv`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::ablate_omv::run().print();
}
