//! Regenerates the paper artifact `fig15` (see `pmck_bench::experiments::fig15`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig15::run().print();
}
