//! Regenerates the paper artifact `fig01` (see `pmck_bench::experiments::fig01`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig01::run().print();
}
