//! Regenerates the paper artifact `fig17` (see `pmck_bench::experiments::fig17`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig17::run().print();
}
