//! Regenerates the paper artifact `fig05` (see `pmck_bench::experiments::fig05`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig05::run().print();
}
