//! Soak driver: the full read/write/scrub/re-stripe stack under a
//! scheduled fault campaign.
//!
//! A [`FaultSchedule`] (the text DSL from `pmck-nvram`, or the built-in
//! default timeline) is drained cycle by cycle against a composed
//! protection [`Stack`] (`chipkill` behind a restripeable base, Start-Gap
//! wear leveling, manual-step patrol) while a mirror model holds ground
//! truth. Every demand read is checked byte-for-byte against the mirror;
//! a detected chip failure is repaired in place; the run closes with a
//! full patrol pass, a boot scrub, a rank-wide consistency verify, a
//! complete readback sweep, and a §V-E re-stripe leg — a chip failure
//! followed by an **in-place** transition to the 4-block VLEW layout
//! through the same pipeline, then a readback.
//!
//! Usage:
//!
//! ```text
//! soak [--blocks N] [--cycles N] [--seed N] [--schedule FILE] [--short] [--pretty]
//! ```
//!
//! `--short` is the CI profile (small rank, few cycles). Output is a
//! single JSON document on stdout; the exit code is nonzero if any read
//! diverged from the mirror, the final verify failed, or the re-stripe
//! readback diverged.

use pmck_core::{ChipkillConfig, CoreError, ReadPath, Stack, StackBuilder};
use pmck_memsim::FaultTimeline;
use pmck_nvram::{ChipFailureKind, FaultEvent, FaultKind, FaultSchedule};
use pmck_rt::json::Json;
use pmck_rt::rng::{Rng, StdRng};

struct Config {
    blocks: u64,
    cycles: u64,
    seed: u64,
    schedule_file: Option<String>,
    pretty: bool,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            blocks: 256,
            cycles: 20_000,
            seed: 0x50AC,
            schedule_file: None,
            pretty: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--blocks" => cfg.blocks = need(args.next(), "--blocks"),
                "--cycles" => cfg.cycles = need(args.next(), "--cycles"),
                "--seed" => cfg.seed = need(args.next(), "--seed"),
                "--schedule" => {
                    cfg.schedule_file = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--schedule needs a file path")),
                    )
                }
                "--short" => {
                    cfg.blocks = 64;
                    cfg.cycles = 3_000;
                }
                "--pretty" => cfg.pretty = true,
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        cfg
    }
}

fn need(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a non-negative integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: soak [--blocks N] [--cycles N] [--seed N] [--schedule FILE] [--short] [--pretty]"
    );
    std::process::exit(2);
}

/// The built-in campaign, scaled to the run length: a low background
/// RBER from cycle 0, a burst and a correlated row fault early on, a
/// retention ramp through mid-run, and a chip-kill at 70%.
///
/// The background rate is applied once per cycle, so errors accumulate
/// between patrol passes; the rates here are sized so the steady-state
/// per-VLEW error count stays well inside t = 22 while the scheduled
/// burst, row-fault, and chip-kill events stress the heavier paths.
fn default_schedule(cycles: u64) -> FaultSchedule {
    let pct = |p: u64| cycles * p / 100;
    let text = format!(
        "at 0 rber 1e-8\n\
         at {burst} burst 6 width 64\n\
         at {row} row 2 1 rber 5e-3\n\
         ramp {r0}..{r1} rber 1e-8..1e-6\n\
         at {kill} chipkill 4 garbage\n",
        burst = pct(15),
        row = pct(30),
        r0 = pct(40),
        r1 = pct(60),
        kill = pct(70),
    );
    FaultSchedule::parse(&text).expect("built-in schedule must parse")
}

fn load_schedule(cfg: &Config) -> FaultSchedule {
    let Some(path) = &cfg.schedule_file else {
        return default_schedule(cfg.cycles);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read schedule {path}: {e}");
        std::process::exit(2);
    });
    let parsed = if text.trim_start().starts_with('{') {
        Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|j| FaultSchedule::from_json(&j).map_err(|e| e.to_string()))
    } else {
        FaultSchedule::parse(&text).map_err(|e| e.to_string())
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("error: bad schedule {path}: {e}");
        std::process::exit(2);
    })
}

fn pattern(rng: &mut StdRng) -> [u8; 64] {
    let mut b = [0u8; 64];
    rng.fill_bytes(&mut b[..]);
    b
}

#[derive(Default)]
struct Counters {
    events_applied: u64,
    event_bits: u64,
    background_bits: u64,
    ops_write: u64,
    ops_read: u64,
    ops_scrub: u64,
    scrub_uncorrectable: u64,
    read_mismatches: u64,
    read_errors: u64,
    chip_repairs: u64,
    repair_cycles: Vec<u64>,
    extra_fetches: u64,
    path_clean: u64,
    path_rs: u64,
    path_fallback: u64,
    path_erasure: u64,
}

/// Rebuilds the detected failed chip, if the decode paths found one.
fn repair_if_detected(stack: &mut Stack, cycle: u64, c: &mut Counters) {
    if stack.detected_failed_chip().is_some() {
        stack
            .repair_detected()
            .expect("detected chip must be repairable");
        c.chip_repairs += 1;
        c.repair_cycles.push(cycle);
    }
}

/// One full patrol pass through the pipeline's patrol layer.
fn full_patrol_pass(stack: &mut Stack) -> Result<(), CoreError> {
    let target = stack.layer("patrol").map_or(0, |s| s.patrol_passes) + 1;
    while stack.layer("patrol").map_or(0, |s| s.patrol_passes) < target {
        stack.patrol_step()?;
    }
    Ok(())
}

fn main() {
    let cfg = Config::from_args();
    let schedule = load_schedule(&cfg);
    let timeline = FaultTimeline::new(schedule.clone(), 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // The whole protection configuration comes from the composition API:
    // restripeable chipkill base, patrol (manual stepping) over physical
    // addresses, Start-Gap wear leveling on top.
    let mut stack = StackBuilder::proposal(cfg.blocks, ChipkillConfig::default())
        .restripeable()
        .patrolled(2, 0)
        .wear_levelled(8)
        .seed(cfg.seed ^ 0x5011_D1E5)
        .build();
    let mut mirror: Vec<[u8; 64]> = Vec::with_capacity(cfg.blocks as usize);
    for block in 0..cfg.blocks {
        let data = pattern(&mut rng);
        stack.write(block, &data).expect("initial fill");
        mirror.push(data);
    }

    let mut c = Counters::default();
    for cycle in 0..cfg.cycles {
        for event in schedule.events_in(cycle, cycle + 1).to_vec() {
            c.event_bits += stack.apply_fault(&event).expect("fault event") as u64;
            c.events_applied += 1;
        }
        let rber = schedule.rber_at(cycle);
        if rber > 0.0 {
            c.background_bits += stack.inject_bit_errors(rber).expect("background rber") as u64;
        }

        let block = rng.gen_range(0..cfg.blocks);
        match rng.gen_range(0u32..5) {
            0 | 1 => {
                let data = pattern(&mut rng);
                let mut wrote = stack.write(block, &data);
                if wrote.is_err() {
                    // The write's read-modify step hit an undetected dead
                    // chip. Route a demand read through the detection
                    // path, repair, and retry once.
                    let _ = stack.read(block);
                    repair_if_detected(&mut stack, cycle, &mut c);
                    wrote = stack.write(block, &data);
                }
                if let Err(e) = wrote {
                    eprintln!("cycle {cycle}: block {block} write failed: {e}");
                    std::process::exit(1);
                }
                mirror[block as usize] = data;
                c.ops_write += 1;
            }
            2 | 3 => {
                c.ops_read += 1;
                c.extra_fetches += u64::from(timeline.sample_extra_fetches(cycle, &mut rng));
                match stack.read(block) {
                    Ok(out) => {
                        match out.path {
                            ReadPath::Clean | ReadPath::BitCorrected { .. } => c.path_clean += 1,
                            ReadPath::RsCorrected { .. } => c.path_rs += 1,
                            ReadPath::VlewFallback { .. } => c.path_fallback += 1,
                            ReadPath::ChipkillErasure { .. } => c.path_erasure += 1,
                        }
                        if out.data != mirror[block as usize] {
                            c.read_mismatches += 1;
                            eprintln!("cycle {cycle}: block {block} read diverged from mirror");
                        }
                    }
                    Err(e) => {
                        c.read_errors += 1;
                        eprintln!("cycle {cycle}: block {block} read failed: {e}");
                    }
                }
            }
            _ => {
                match stack.patrol_step() {
                    Ok(_) => {}
                    Err(CoreError::Uncorrectable) => {
                        // A scrub UE: an undetected dead chip defeats the
                        // in-place block rewrite. Route a demand read
                        // through the detection path so the failure is
                        // identified (and repaired below).
                        c.scrub_uncorrectable += 1;
                        let _ = stack.read(block);
                    }
                    Err(e) => {
                        eprintln!("cycle {cycle}: patrol step failed: {e}");
                        std::process::exit(1);
                    }
                }
                c.ops_scrub += 1;
            }
        }

        repair_if_detected(&mut stack, cycle, &mut c);
    }

    // Closing sweep: the boot scrub first (it repairs a still-failed
    // chip and clears residual VLEW-level damage), then a full patrol
    // pass, a rank verify, and a complete readback against the mirror.
    let scrub_report = stack.boot_scrub().expect("closing boot scrub");
    full_patrol_pass(&mut stack).expect("closing patrol pass");
    let consistent = stack.verify_consistent().expect("closing verify");
    let mut sweep_mismatches = 0u64;
    for block in 0..cfg.blocks {
        match stack.read(block) {
            Ok(out) if out.data == mirror[block as usize] => {}
            _ => sweep_mismatches += 1,
        }
    }

    let stats = stack.core_stats().expect("chipkill base");

    // Re-stripe leg (§V-E): fail a chip, transition the live rank into
    // the 4-block VLEW layout *in place* through the pipeline, and
    // confirm every block survives under the same wear-level remap.
    let mut restripe_mismatches = 0u64;
    stack
        .apply_fault(&FaultEvent {
            at_cycle: cfg.cycles,
            kind: FaultKind::ChipKill {
                chip: 3,
                kind: ChipFailureKind::RandomGarbage,
            },
        })
        .expect("re-stripe chip failure");
    stack.restripe().expect("re-stripe after chip failure");
    for block in 0..cfg.blocks {
        match stack.read(block) {
            Ok(out) if out.data == mirror[block as usize] => {}
            _ => restripe_mismatches += 1,
        }
    }
    let restripe_consistent = stack.verify_consistent().expect("post-restripe verify");

    let failed = c.read_mismatches > 0
        || c.read_errors > 0
        || sweep_mismatches > 0
        || restripe_mismatches > 0
        || !consistent
        || !restripe_consistent;

    let mut layers = Json::object();
    for (label, stats) in stack.layers() {
        layers = layers.with(*label, stats.to_json());
    }

    let doc = Json::object()
        .with("harness", "soak")
        .with(
            "config",
            Json::object()
                .with("blocks", cfg.blocks)
                .with("cycles", cfg.cycles)
                .with("seed", cfg.seed),
        )
        .with("schedule", schedule.to_json())
        .with(
            "campaign",
            Json::object()
                .with("events_applied", c.events_applied)
                .with("event_bits", c.event_bits)
                .with("background_bits", c.background_bits)
                .with("writes", c.ops_write)
                .with("reads", c.ops_read)
                .with("scrub_steps", c.ops_scrub)
                .with("scrub_uncorrectable", c.scrub_uncorrectable)
                .with(
                    "gap_moves",
                    stack.layer("wearlevel").map_or(0, |s| s.gap_moves),
                )
                .with(
                    "patrol_passes",
                    stack.layer("patrol").map_or(0, |s| s.patrol_passes),
                )
                .with("chip_repairs", c.chip_repairs)
                .with(
                    "repair_cycles",
                    Json::Arr(c.repair_cycles.iter().map(|&x| Json::from(x)).collect()),
                )
                .with("timeline_extra_fetches", c.extra_fetches),
        )
        .with(
            "read_paths",
            Json::object()
                .with("clean", c.path_clean)
                .with("rs_corrected", c.path_rs)
                .with("vlew_fallback", c.path_fallback)
                .with("chipkill_erasure", c.path_erasure),
        )
        .with("core_stats", stats.to_json())
        .with("layers", layers)
        .with(
            "verdict",
            Json::object()
                .with("read_mismatches", c.read_mismatches)
                .with("read_errors", c.read_errors)
                .with("final_verify_consistent", consistent)
                .with(
                    "closing_scrub_bits_corrected",
                    scrub_report.bits_corrected as u64,
                )
                .with("sweep_mismatches", sweep_mismatches)
                .with("restripe_mismatches", restripe_mismatches)
                .with("restripe_verify_consistent", restripe_consistent)
                .with("passed", !failed),
        );

    if cfg.pretty {
        println!("{}", doc.pretty());
    } else {
        println!("{}", doc.dump());
    }
    if failed {
        eprintln!("soak: FAILED (see verdict in report)");
        std::process::exit(1);
    }
}
