//! Soak driver: the full read/write/scrub/re-stripe stack under a
//! scheduled fault campaign.
//!
//! A [`FaultSchedule`] (the text DSL from `pmck-nvram`, or the built-in
//! default timeline) is drained cycle by cycle against a composed
//! protection [`Stack`] (`chipkill` behind a restripeable base, Start-Gap
//! wear leveling, manual-step patrol) while a mirror model holds ground
//! truth. Every demand read is checked byte-for-byte against the mirror;
//! a detected chip failure is repaired in place; the run closes with a
//! full patrol pass, a boot scrub, a rank-wide consistency verify, a
//! complete readback sweep, and a §V-E re-stripe leg — a chip failure
//! followed by an **in-place** transition to the 4-block VLEW layout
//! through the same pipeline, then a readback.
//!
//! Usage:
//!
//! ```text
//! soak [--blocks N] [--cycles N] [--seed N] [--schedule FILE] [--short]
//!      [--shards N] [--crash] [--pretty]
//! ```
//!
//! `--short` is the CI profile (small rank, few cycles). `--shards N`
//! drives the same campaign through the `pmck-service` sharded front
//! end instead of a single `Stack`: the workload is submitted in
//! batched [`Request`] windows, whole-device events are broadcast, and
//! the mirror checks run on the batched responses (the re-stripe leg is
//! skipped — re-striping is a per-rank transition, not a service
//! request). Output is a single JSON document on stdout; the exit code
//! is nonzero if any read diverged from the mirror, the final verify
//! failed, or the re-stripe readback diverged.
//!
//! `--crash` runs the campaign on a persistent stack (`pmck-pmem`
//! media behind the rank): the mirror is snapshotted at every flush,
//! scheduled fault events are made durable immediately, and periodic
//! power cuts discard everything since the last fence — recovery must
//! then match the snapshot exactly, under the same byte-for-byte read
//! checks as the rest of the soak.
//!
//! `--cluster N` runs a replicated campaign through `pmck-cluster`: N
//! virtual nodes (each a 2-shard `ShardedService`), 2 replicas per
//! block, quorum reads and writes. Mid-run one node is killed and
//! later revived + rebuilt; every read is mirror-checked throughout,
//! and the run closes with an anti-entropy sweep, a rank-wide boot
//! scrub, a full readback, a per-replica decodability sweep, and a
//! cluster-wide verify.

use pmck_cluster::{Cluster, ClusterConfig, NodeStatus};
use pmck_core::{
    ChipkillConfig, CoreError, LayerId, PmemConfig, ReadPath, Request, Response, Stack,
    StackBuilder, TierPolicy,
};
use pmck_memsim::FaultTimeline;
use pmck_nvram::{ChipFailureKind, FaultEvent, FaultKind, FaultSchedule};
use pmck_rt::json::Json;
use pmck_rt::rng::{Rng, StdRng};
use pmck_service::ShardedService;

struct Config {
    blocks: u64,
    cycles: u64,
    seed: u64,
    schedule_file: Option<String>,
    shards: Option<usize>,
    cluster: Option<usize>,
    crash: bool,
    tiers: bool,
    pretty: bool,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            blocks: 256,
            cycles: 20_000,
            seed: 0x50AC,
            schedule_file: None,
            shards: None,
            cluster: None,
            crash: false,
            tiers: false,
            pretty: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--blocks" => cfg.blocks = need(args.next(), "--blocks"),
                "--cycles" => cfg.cycles = need(args.next(), "--cycles"),
                "--seed" => cfg.seed = need(args.next(), "--seed"),
                "--schedule" => {
                    cfg.schedule_file = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--schedule needs a file path")),
                    )
                }
                "--shards" => {
                    let n = need(args.next(), "--shards");
                    if n == 0 {
                        usage("--shards needs a positive integer");
                    }
                    cfg.shards = Some(n as usize);
                }
                "--cluster" => {
                    let n = need(args.next(), "--cluster");
                    if n < 2 {
                        usage("--cluster needs at least 2 nodes (replicas need distinct homes)");
                    }
                    cfg.cluster = Some(n as usize);
                }
                "--short" => {
                    cfg.blocks = 64;
                    cfg.cycles = 3_000;
                }
                "--crash" => cfg.crash = true,
                "--tiers" => cfg.tiers = true,
                "--pretty" => cfg.pretty = true,
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        if cfg.tiers && cfg.shards.is_some() {
            usage("--tiers is a single-stack mode (tiering owns the rank layout)");
        }
        if cfg.cluster.is_some() && (cfg.tiers || cfg.crash || cfg.shards.is_some()) {
            usage("--cluster is its own mode (nodes are plain sharded services)");
        }
        cfg
    }
}

fn need(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a non-negative integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: soak [--blocks N] [--cycles N] [--seed N] [--schedule FILE] [--short] \
         [--shards N] [--cluster N] [--crash] [--tiers] [--pretty]"
    );
    std::process::exit(2);
}

/// The built-in campaign, scaled to the run length: a low background
/// RBER from cycle 0, a burst and a correlated row fault early on, a
/// retention ramp through mid-run, and a chip-kill at 70%.
///
/// The background rate is applied once per cycle, so errors accumulate
/// between patrol passes; the rates here are sized so the steady-state
/// per-VLEW error count stays well inside t = 22 while the scheduled
/// burst, row-fault, and chip-kill events stress the heavier paths.
fn default_schedule(cycles: u64) -> FaultSchedule {
    let pct = |p: u64| cycles * p / 100;
    let text = format!(
        "at 0 rber 1e-8\n\
         at {burst} burst 6 width 64\n\
         at {row} row 2 1 rber 5e-3\n\
         ramp {r0}..{r1} rber 1e-8..1e-6\n\
         at {kill} chipkill 4 garbage\n",
        burst = pct(15),
        row = pct(30),
        r0 = pct(40),
        r1 = pct(60),
        kill = pct(70),
    );
    FaultSchedule::parse(&text).expect("built-in schedule must parse")
}

/// The benign campaign for the tiered leg: background RBER with a mild
/// retention ramp, no chip kills or structured faults — tier migration
/// must never race a failed chip, and the leg's point is the policy's
/// response to measured RBER alone.
fn benign_schedule(cycles: u64) -> FaultSchedule {
    let pct = |p: u64| cycles * p / 100;
    let text = format!(
        "at 0 rber 1e-8\n\
         ramp {r0}..{r1} rber 1e-8..1e-6\n",
        r0 = pct(40),
        r1 = pct(60),
    );
    FaultSchedule::parse(&text).expect("benign schedule must parse")
}

fn load_schedule(cfg: &Config) -> FaultSchedule {
    let Some(path) = &cfg.schedule_file else {
        return if cfg.tiers {
            benign_schedule(cfg.cycles)
        } else {
            default_schedule(cfg.cycles)
        };
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read schedule {path}: {e}");
        std::process::exit(2);
    });
    let parsed = if text.trim_start().starts_with('{') {
        Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|j| FaultSchedule::from_json(&j).map_err(|e| e.to_string()))
    } else {
        FaultSchedule::parse(&text).map_err(|e| e.to_string())
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("error: bad schedule {path}: {e}");
        std::process::exit(2);
    })
}

fn pattern(rng: &mut StdRng) -> [u8; 64] {
    let mut b = [0u8; 64];
    rng.fill_bytes(&mut b[..]);
    b
}

#[derive(Default)]
struct Counters {
    events_applied: u64,
    event_bits: u64,
    background_bits: u64,
    ops_write: u64,
    ops_read: u64,
    ops_scrub: u64,
    scrub_uncorrectable: u64,
    read_mismatches: u64,
    read_errors: u64,
    chip_repairs: u64,
    repair_cycles: Vec<u64>,
    extra_fetches: u64,
    path_clean: u64,
    path_rs: u64,
    path_fallback: u64,
    path_erasure: u64,
    crash_flushes: u64,
    lines_flushed: u64,
    power_cuts: u64,
    lost_lines: u64,
    records_replayed: u64,
    lines_redone: u64,
    tier_steps: u64,
    tier_migrations: u64,
}

impl Counters {
    fn crash_json(&self, enabled: bool) -> Json {
        Json::object()
            .with("enabled", enabled)
            .with("flushes", self.crash_flushes)
            .with("lines_flushed", self.lines_flushed)
            .with("power_cuts", self.power_cuts)
            .with("lost_lines", self.lost_lines)
            .with("records_replayed", self.records_replayed)
            .with("lines_redone", self.lines_redone)
    }
}

/// Rebuilds the detected failed chip, if the decode paths found one.
fn repair_if_detected(stack: &mut Stack, cycle: u64, c: &mut Counters) {
    if stack.detected_failed_chip().is_some() {
        stack
            .repair_detected()
            .expect("detected chip must be repairable");
        c.chip_repairs += 1;
        c.repair_cycles.push(cycle);
    }
}

/// One full patrol pass through the pipeline's patrol layer.
fn full_patrol_pass(stack: &mut Stack) -> Result<(), CoreError> {
    let target = stack.layer(LayerId::Patrol).map_or(0, |s| s.patrol_passes) + 1;
    while stack.layer(LayerId::Patrol).map_or(0, |s| s.patrol_passes) < target {
        stack.patrol_step()?;
    }
    Ok(())
}

/// Summed patrol passes across the service's shards.
fn service_patrol_passes(svc: &ShardedService) -> u64 {
    svc.layers()
        .iter()
        .find(|(id, _)| *id == LayerId::Patrol)
        .map_or(0, |(_, s)| s.patrol_passes)
}

/// The same campaign through the `pmck-service` sharded front end.
///
/// The workload is generated exactly as in single-stack mode but
/// submitted in batched request windows: fault events and background
/// RBER are broadcast, demand ops route to their owning shard, and the
/// mirror checks walk the batched responses in request order (a write
/// updates the mirror before any later read of that block is checked,
/// matching each shard's in-order execution). Chip repairs run as a
/// per-window sweep over the shards instead of per cycle; the §V-E
/// re-stripe leg is skipped because re-striping is a per-rank layout
/// transition, not a service request.
fn run_sharded(cfg: &Config, shards: usize) -> ! {
    const WINDOW: u64 = 64;

    let schedule = load_schedule(cfg);
    let timeline = FaultTimeline::new(schedule.clone(), 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let per_shard = cfg.blocks.div_ceil(shards as u64);
    let crash = cfg.crash;
    let mut svc = ShardedService::new(shards, cfg.seed ^ 0x5011_D1E5, move |_, seed| {
        let builder = StackBuilder::proposal(per_shard, ChipkillConfig::default())
            .patrolled(2, 0)
            .wear_levelled(8)
            .seed(seed);
        let builder = if crash {
            builder.persistent(PmemConfig::default())
        } else {
            builder
        };
        builder.build()
    });
    // Per-shard capacity rounds up to whole stripes, so the campaign
    // covers the service's real (interleaved) address space.
    let total = svc.num_blocks();

    let mut mirror: Vec<[u8; 64]> = Vec::with_capacity(total as usize);
    let fills: Vec<Request> = (0..total)
        .map(|a| {
            let data = pattern(&mut rng);
            mirror.push(data);
            Request::Write { addr: a, data }
        })
        .collect();
    for r in svc.submit_batch(&fills) {
        r.expect("initial fill");
    }
    // The crash model: `snapshot` mirrors the durable state (what the
    // last broadcast flush fenced); a power cut rolls the mirror back
    // to it.
    let mut snapshot = mirror.clone();
    let mut c = Counters::default();
    if cfg.crash {
        let flushed = svc
            .submit(&Request::Flush)
            .expect("initial flush")
            .flushed_lines()
            .expect("flush responds with lines");
        c.crash_flushes += 1;
        c.lines_flushed += flushed;
    }

    /// What the walk over a batch's responses should do at each slot.
    enum Expect {
        Write { addr: u64, data: [u8; 64] },
        Read { addr: u64 },
        Event,
        Rber,
        Patrol,
    }

    let mut reqs: Vec<Request> = Vec::new();
    let mut expects: Vec<Expect> = Vec::new();
    let mut out: Vec<Result<Response, CoreError>> = Vec::new();
    // Blocks whose failed write was repaired-and-retried *after* the
    // batch ran: a read of the same block later in the same batch saw
    // the pre-retry contents, so its mirror check is skipped (the
    // closing sweep still validates the final state).
    let mut retried: Vec<u64> = Vec::new();

    let mut window_start = 0u64;
    let mut window_index = 0u64;
    while window_start < cfg.cycles {
        let window_end = (window_start + WINDOW).min(cfg.cycles);
        reqs.clear();
        expects.clear();
        retried.clear();
        let mut had_event = false;
        for cycle in window_start..window_end {
            for event in schedule.events_in(cycle, cycle + 1).to_vec() {
                reqs.push(Request::Fault(event));
                expects.push(Expect::Event);
                had_event = true;
            }
            let rber = schedule.rber_at(cycle);
            if rber > 0.0 {
                reqs.push(Request::InjectRber(rber));
                expects.push(Expect::Rber);
            }
            let block = rng.gen_range(0..total);
            match rng.gen_range(0u32..5) {
                0 | 1 => {
                    let data = pattern(&mut rng);
                    reqs.push(Request::Write { addr: block, data });
                    expects.push(Expect::Write { addr: block, data });
                }
                2 | 3 => {
                    c.extra_fetches += u64::from(timeline.sample_extra_fetches(cycle, &mut rng));
                    reqs.push(Request::Read(block));
                    expects.push(Expect::Read { addr: block });
                }
                _ => {
                    reqs.push(Request::PatrolStep);
                    expects.push(Expect::Patrol);
                }
            }
        }

        svc.submit_batch_into(&reqs, &mut out);
        let mut needs_detection = false;
        for (res, expect) in out.drain(..).zip(expects.iter()) {
            match expect {
                Expect::Event => {
                    c.events_applied += 1;
                    c.event_bits += res
                        .expect("fault event")
                        .injected_bits()
                        .expect("fault responds with injected bits")
                        as u64;
                }
                Expect::Rber => {
                    c.background_bits += res
                        .expect("background rber")
                        .injected_bits()
                        .expect("injection responds with injected bits")
                        as u64;
                }
                Expect::Write { addr, data } => {
                    c.ops_write += 1;
                    if res.is_err() {
                        // The write's read-modify step hit an undetected
                        // dead chip on its shard. Route a demand read
                        // through that shard's detection path, repair,
                        // and retry once.
                        let (shard, local) = svc.route(*addr).expect("mirror address routes");
                        let rewrote = svc.with_shard(shard, |stack| {
                            let _ = stack.read(local);
                            if stack.detected_failed_chip().is_some() {
                                stack
                                    .repair_detected()
                                    .expect("detected chip must be repairable");
                                c.chip_repairs += 1;
                                c.repair_cycles.push(window_end);
                            }
                            stack.write(local, data)
                        });
                        if let Err(e) = rewrote {
                            eprintln!("window ending {window_end}: block {addr} write failed: {e}");
                            std::process::exit(1);
                        }
                        retried.push(*addr);
                    }
                    mirror[*addr as usize] = *data;
                }
                Expect::Read { addr } => {
                    c.ops_read += 1;
                    match res {
                        Ok(resp) => {
                            let o = resp.read().expect("read responds with an outcome");
                            match o.path {
                                ReadPath::Clean | ReadPath::BitCorrected { .. } => {
                                    c.path_clean += 1;
                                }
                                ReadPath::RsCorrected { .. } => c.path_rs += 1,
                                ReadPath::VlewFallback { .. }
                                | ReadPath::VlewListDecoded { .. } => c.path_fallback += 1,
                                ReadPath::ChipkillErasure { .. } => c.path_erasure += 1,
                            }
                            if o.data != mirror[*addr as usize] && !retried.contains(addr) {
                                c.read_mismatches += 1;
                                eprintln!("block {addr} read diverged from mirror");
                            }
                        }
                        Err(e) => {
                            c.read_errors += 1;
                            eprintln!("block {addr} read failed: {e}");
                        }
                    }
                }
                Expect::Patrol => {
                    c.ops_scrub += 1;
                    match res {
                        Ok(_) => {}
                        Err(CoreError::Uncorrectable) => {
                            // A scrub UE on some shard: flag it so the
                            // repair sweep below pushes a demand read
                            // through every shard's detection path.
                            c.scrub_uncorrectable += 1;
                            needs_detection = true;
                        }
                        Err(e) => {
                            eprintln!("window ending {window_end}: patrol step failed: {e}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        }

        // Per-window repair sweep: any shard whose decode paths flagged
        // a dead chip gets rebuilt before the next window starts.
        for shard in 0..shards {
            svc.with_shard(shard, |stack| {
                if needs_detection {
                    let _ = stack.read(0);
                }
                if stack.detected_failed_chip().is_some() {
                    stack
                        .repair_detected()
                        .expect("detected chip must be repairable");
                    c.chip_repairs += 1;
                    c.repair_cycles.push(window_end);
                }
            });
        }

        // Crash leg, at window granularity: scheduled fault events are
        // made durable right away (so a later cut cannot "heal" a chip
        // the campaign considers failed), the mirror is snapshotted at
        // every broadcast flush, and a periodic power cut + recovery
        // rolls the mirror back to the snapshot.
        if cfg.crash {
            if had_event || window_index % 2 == 1 {
                let flushed = svc
                    .submit(&Request::Flush)
                    .expect("window flush")
                    .flushed_lines()
                    .expect("flush responds with lines");
                c.crash_flushes += 1;
                c.lines_flushed += flushed;
                snapshot.copy_from_slice(&mirror);
            }
            if window_index % 8 == 7 {
                match svc.submit(&Request::PowerCut).expect("power cut") {
                    Response::PowerLost { lost_lines } => c.lost_lines += lost_lines,
                    other => panic!("power cut answered {other:?}"),
                }
                c.power_cuts += 1;
                let rep = svc
                    .submit(&Request::Recover)
                    .expect("recovery")
                    .recovered()
                    .expect("recover responds with a report");
                c.records_replayed += rep.records_replayed;
                c.lines_redone += rep.lines_redone;
                mirror.copy_from_slice(&snapshot);
            }
        }

        window_start = window_end;
        window_index += 1;
    }

    // One final cut straight after a flush: recovery must land exactly
    // on the just-fenced image before the closing sweep checks it.
    if cfg.crash {
        c.lines_flushed += svc
            .submit(&Request::Flush)
            .expect("final flush")
            .flushed_lines()
            .expect("flush responds with lines");
        c.crash_flushes += 1;
        snapshot.copy_from_slice(&mirror);
        match svc.submit(&Request::PowerCut).expect("final power cut") {
            Response::PowerLost { lost_lines } => c.lost_lines += lost_lines,
            other => panic!("power cut answered {other:?}"),
        }
        c.power_cuts += 1;
        let rep = svc
            .submit(&Request::Recover)
            .expect("final recovery")
            .recovered()
            .expect("recover responds with a report");
        c.records_replayed += rep.records_replayed;
        c.lines_redone += rep.lines_redone;
    }

    // Closing sweep, batched: a broadcast boot scrub, a full patrol
    // pass on every shard, a rank verify on every shard (ANDed), and a
    // complete readback against the mirror.
    let scrub_report = svc
        .submit(&Request::BootScrub)
        .expect("closing boot scrub")
        .boot_scrubbed()
        .expect("boot scrub responds with a report");
    let patrol_target = service_patrol_passes(&svc) + shards as u64;
    while service_patrol_passes(&svc) < patrol_target {
        svc.submit(&Request::PatrolStep)
            .expect("closing patrol pass");
    }
    let consistent = svc
        .submit(&Request::Verify)
        .expect("closing verify")
        .verified()
        .expect("verify responds with a verdict");

    let mut sweep_mismatches = 0u64;
    let mut start = 0u64;
    while start < total {
        let end = (start + 256).min(total);
        reqs.clear();
        reqs.extend((start..end).map(Request::Read));
        svc.submit_batch_into(&reqs, &mut out);
        for (i, res) in out.drain(..).enumerate() {
            let a = (start + i as u64) as usize;
            match res {
                Ok(resp) if resp.read().is_some_and(|o| o.data == mirror[a]) => {}
                _ => sweep_mismatches += 1,
            }
        }
        start = end;
    }

    let stats = svc.core_stats().expect("chipkill base");
    let merged_layers = svc.layers();
    svc.shutdown();

    let failed = c.read_mismatches > 0 || c.read_errors > 0 || sweep_mismatches > 0 || !consistent;

    let mut layers = Json::object();
    for (id, stats) in &merged_layers {
        layers = layers.with(id.as_str(), stats.to_json());
    }
    let gap_moves = merged_layers
        .iter()
        .find(|(id, _)| *id == LayerId::Wearlevel)
        .map_or(0, |(_, s)| s.gap_moves);
    let patrol_passes = merged_layers
        .iter()
        .find(|(id, _)| *id == LayerId::Patrol)
        .map_or(0, |(_, s)| s.patrol_passes);

    let doc = Json::object()
        .with("harness", "soak")
        .with(
            "config",
            Json::object()
                .with("blocks", total)
                .with("cycles", cfg.cycles)
                .with("seed", cfg.seed)
                .with("shards", shards as u64),
        )
        .with("schedule", schedule.to_json())
        .with(
            "campaign",
            Json::object()
                .with("events_applied", c.events_applied)
                .with("event_bits", c.event_bits)
                .with("background_bits", c.background_bits)
                .with("writes", c.ops_write)
                .with("reads", c.ops_read)
                .with("scrub_steps", c.ops_scrub)
                .with("scrub_uncorrectable", c.scrub_uncorrectable)
                .with("gap_moves", gap_moves)
                .with("patrol_passes", patrol_passes)
                .with("chip_repairs", c.chip_repairs)
                .with(
                    "repair_cycles",
                    Json::Arr(c.repair_cycles.iter().map(|&x| Json::from(x)).collect()),
                )
                .with("timeline_extra_fetches", c.extra_fetches),
        )
        .with(
            "read_paths",
            Json::object()
                .with("clean", c.path_clean)
                .with("rs_corrected", c.path_rs)
                .with("vlew_fallback", c.path_fallback)
                .with("chipkill_erasure", c.path_erasure),
        )
        .with("core_stats", stats.to_json())
        .with("layers", layers)
        .with("crash", c.crash_json(cfg.crash))
        .with(
            "verdict",
            Json::object()
                .with("read_mismatches", c.read_mismatches)
                .with("read_errors", c.read_errors)
                .with("final_verify_consistent", consistent)
                .with(
                    "closing_scrub_bits_corrected",
                    scrub_report.bits_corrected as u64,
                )
                .with("sweep_mismatches", sweep_mismatches)
                .with("restripe_skipped", true)
                .with("passed", !failed),
        );

    if cfg.pretty {
        println!("{}", doc.pretty());
    } else {
        println!("{}", doc.dump());
    }
    if failed {
        eprintln!("soak: FAILED (see verdict in report)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The replicated campaign through the `pmck-cluster` tier.
///
/// No media faults here — the cluster soak's subject is topology
/// churn: a node dies mid-run (its missed writes tracked stale),
/// comes back, and is rebuilt from its peers, all while every demand
/// read is checked byte-for-byte against the mirror. The closing
/// sweep must leave every replica on every node directly decodable.
fn run_cluster(cfg: &Config, nodes: usize) -> ! {
    const SHARDS_PER_NODE: usize = 2;
    let ccfg = ClusterConfig {
        replicas: 2,
        write_quorum: 1,
        read_quorum: 1,
    };
    let mut cluster = Cluster::sharded(nodes, SHARDS_PER_NODE, cfg.blocks, cfg.seed, ccfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut mirror: Vec<[u8; 64]> = Vec::with_capacity(cfg.blocks as usize);
    for addr in 0..cfg.blocks {
        let data = pattern(&mut rng);
        cluster.write_block(addr, &data).expect("initial fill");
        mirror.push(data);
    }

    let victim = (cfg.seed % nodes as u64) as usize;
    let kill_at = cfg.cycles * 35 / 100;
    let revive_at = cfg.cycles * 55 / 100;

    let mut read_mismatches = 0u64;
    let mut rebuilt = 0u64;
    for cycle in 0..cfg.cycles {
        if cycle == kill_at {
            cluster.kill_node(victim);
        } else if cycle == revive_at {
            cluster.revive_node(victim);
            rebuilt = cluster.rebuild_node(victim).expect("rebuild");
        }
        let addr = rng.gen_range(0..cfg.blocks);
        if rng.gen_bool(0.5) {
            let data = pattern(&mut rng);
            cluster.write_block(addr, &data).expect("quorum write");
            mirror[addr as usize] = data;
        } else {
            let out = cluster.read_block(addr).expect("quorum read");
            if out.data != mirror[addr as usize] {
                read_mismatches += 1;
                eprintln!("cycle {cycle}: block {addr} read diverged from mirror");
            }
        }
    }
    if cluster.node_status(victim) != NodeStatus::Up {
        cluster.revive_node(victim);
        rebuilt = cluster.rebuild_node(victim).expect("closing rebuild");
    }

    // Closing sweep: anti-entropy (read-repair + scrub every block),
    // then a full readback and a per-replica decodability check.
    let sweep = cluster.anti_entropy_sweep();
    let mut sweep_mismatches = 0u64;
    let mut replica_mismatches = 0u64;
    for addr in 0..cfg.blocks {
        match cluster.read_block(addr) {
            Ok(out) if out.data == mirror[addr as usize] => {}
            _ => sweep_mismatches += 1,
        }
        for r in 0..cluster.replicas() {
            let (n, local) = cluster.place(addr, r);
            match cluster.node_mut(n).submit(&Request::Read(local)) {
                Ok(resp) if resp.read().is_some_and(|o| o.data == mirror[addr as usize]) => {}
                _ => replica_mismatches += 1,
            }
        }
    }
    let consistent = cluster.verify_all().expect("closing verify");
    let stats = cluster.stats();
    let stale_after: u64 = (0..nodes).map(|n| cluster.node_stale_blocks(n)).sum();
    cluster.shutdown_nodes();

    let failed = read_mismatches > 0
        || sweep.unreadable > 0
        || sweep_mismatches > 0
        || replica_mismatches > 0
        || stale_after > 0
        || !consistent;

    let doc = Json::object()
        .with("harness", "soak")
        .with(
            "config",
            Json::object()
                .with("blocks", cfg.blocks)
                .with("cycles", cfg.cycles)
                .with("seed", cfg.seed)
                .with("cluster_nodes", nodes as u64)
                .with("replicas", cluster.replicas() as u64),
        )
        .with(
            "campaign",
            Json::object()
                .with("writes", stats.writes)
                .with("reads", stats.reads)
                .with("degraded_reads", stats.degraded_reads)
                .with("read_repairs", stats.read_repairs)
                .with("quorum_failures", stats.quorum_failures)
                .with("rebuilt_blocks", stats.rebuilt_blocks)
                .with("rebuild_healed", rebuilt)
                .with("sweeps", stats.sweeps)
                .with("scrubbed", stats.scrubbed),
        )
        .with(
            "verdict",
            Json::object()
                .with("read_mismatches", read_mismatches)
                .with("sweep_unreadable", sweep.unreadable)
                .with("sweep_mismatches", sweep_mismatches)
                .with("replica_mismatches", replica_mismatches)
                .with("stale_after_sweep", stale_after)
                .with("final_verify_consistent", consistent)
                .with("passed", !failed),
        );

    if cfg.pretty {
        println!("{}", doc.pretty());
    } else {
        println!("{}", doc.dump());
    }
    if failed {
        eprintln!("soak: FAILED (see verdict in report)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let cfg = Config::from_args();
    if let Some(nodes) = cfg.cluster {
        run_cluster(&cfg, nodes);
    }
    if let Some(shards) = cfg.shards {
        run_sharded(&cfg, shards);
    }
    let schedule = load_schedule(&cfg);
    let timeline = FaultTimeline::new(schedule.clone(), 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // The whole protection configuration comes from the composition API:
    // restripeable chipkill base (or, under `--tiers`, a region-tiered
    // base with the adaptive layout policy), patrol (manual stepping)
    // over physical addresses, Start-Gap wear leveling on top (and,
    // under `--crash`, persistent media at the bottom).
    let base = StackBuilder::proposal(cfg.blocks, ChipkillConfig::default());
    let base = if cfg.tiers {
        let regions = (cfg.blocks / 32).max(1) as usize;
        base.tiered(regions, TierPolicy::default())
    } else {
        base.restripeable()
    };
    let builder = base
        .patrolled(2, 0)
        .wear_levelled(8)
        .seed(cfg.seed ^ 0x5011_D1E5);
    let builder = if cfg.crash {
        builder.persistent(PmemConfig::default())
    } else {
        builder
    };
    let mut stack = builder.build();
    let mut mirror: Vec<[u8; 64]> = Vec::with_capacity(cfg.blocks as usize);
    for block in 0..cfg.blocks {
        let data = pattern(&mut rng);
        stack.write(block, &data).expect("initial fill");
        mirror.push(data);
    }
    // The crash model: `snapshot` mirrors the durable state (what the
    // last flush fenced); a power cut rolls the mirror back to it.
    let mut snapshot = mirror.clone();

    let mut c = Counters::default();
    if cfg.crash {
        c.lines_flushed += stack.flush().expect("initial flush");
        c.crash_flushes += 1;
    }
    for cycle in 0..cfg.cycles {
        let mut fault_this_cycle = false;
        for event in schedule.events_in(cycle, cycle + 1).to_vec() {
            c.event_bits += stack.apply_fault(&event).expect("fault event") as u64;
            c.events_applied += 1;
            fault_this_cycle = true;
        }
        let rber = schedule.rber_at(cycle);
        if rber > 0.0 {
            c.background_bits += stack.inject_bit_errors(rber).expect("background rber") as u64;
        }

        let block = rng.gen_range(0..cfg.blocks);
        match rng.gen_range(0u32..5) {
            0 | 1 => {
                let data = pattern(&mut rng);
                let mut wrote = stack.write(block, &data);
                if wrote.is_err() {
                    // The write's read-modify step hit an undetected dead
                    // chip. Route a demand read through the detection
                    // path, repair, and retry once.
                    let _ = stack.read(block);
                    repair_if_detected(&mut stack, cycle, &mut c);
                    wrote = stack.write(block, &data);
                }
                if let Err(e) = wrote {
                    eprintln!("cycle {cycle}: block {block} write failed: {e}");
                    std::process::exit(1);
                }
                mirror[block as usize] = data;
                c.ops_write += 1;
            }
            2 | 3 => {
                c.ops_read += 1;
                c.extra_fetches += u64::from(timeline.sample_extra_fetches(cycle, &mut rng));
                // The hot-path read form: decode straight into the check
                // buffer, no outcome copy.
                let mut buf = [0u8; 64];
                match stack.read_into(block, &mut buf) {
                    Ok(path) => {
                        match path {
                            ReadPath::Clean | ReadPath::BitCorrected { .. } => c.path_clean += 1,
                            ReadPath::RsCorrected { .. } => c.path_rs += 1,
                            ReadPath::VlewFallback { .. } | ReadPath::VlewListDecoded { .. } => {
                                c.path_fallback += 1
                            }
                            ReadPath::ChipkillErasure { .. } => c.path_erasure += 1,
                        }
                        if buf != mirror[block as usize] {
                            c.read_mismatches += 1;
                            eprintln!("cycle {cycle}: block {block} read diverged from mirror");
                        }
                    }
                    Err(e) => {
                        c.read_errors += 1;
                        eprintln!("cycle {cycle}: block {block} read failed: {e}");
                    }
                }
            }
            _ => {
                match stack.patrol_step() {
                    Ok(_) => {}
                    Err(CoreError::Uncorrectable) => {
                        // A scrub UE: an undetected dead chip defeats the
                        // in-place block rewrite. Route a demand read
                        // through the detection path so the failure is
                        // identified (and repaired below).
                        c.scrub_uncorrectable += 1;
                        let _ = stack.read(block);
                    }
                    Err(e) => {
                        eprintln!("cycle {cycle}: patrol step failed: {e}");
                        std::process::exit(1);
                    }
                }
                c.ops_scrub += 1;
            }
        }

        repair_if_detected(&mut stack, cycle, &mut c);

        // Tier leg: a periodic tier step lets the policy act on the
        // RBER each region has measured from the background injections
        // (the first step already migrates pristine regions down to the
        // RS-only tier).
        if cfg.tiers && cycle % 128 == 127 {
            let report = stack.tier_step().expect("tier step");
            c.tier_steps += 1;
            c.tier_migrations += report.migrations;
            // A migration commits the region's whole image through its
            // persistence domain, so under `--crash` the durable state
            // just moved past the last snapshot: re-fence and re-snapshot
            // so a later cut rolls the mirror to a matching point.
            if cfg.crash && report.migrations > 0 {
                c.lines_flushed += stack.flush().expect("post-migration flush");
                c.crash_flushes += 1;
                snapshot.copy_from_slice(&mirror);
            }
        }

        // Crash leg: scheduled fault events are made durable right away
        // (so a later cut cannot "heal" a chip the campaign considers
        // failed), the mirror is snapshotted at every flush, and a
        // periodic power cut + recovery rolls the mirror back to the
        // snapshot.
        if cfg.crash {
            if fault_this_cycle || cycle % 97 == 96 {
                c.lines_flushed += stack.flush().expect("crash flush");
                c.crash_flushes += 1;
                snapshot.copy_from_slice(&mirror);
            }
            if cycle % 503 == 502 {
                c.lost_lines += stack.power_cut().expect("power cut");
                c.power_cuts += 1;
                let rep = stack.recover().expect("recovery");
                c.records_replayed += rep.records_replayed;
                c.lines_redone += rep.lines_redone;
                mirror.copy_from_slice(&snapshot);
            }
        }
    }

    // One final cut straight after a flush: recovery must land exactly
    // on the just-fenced image before the closing sweep checks it.
    if cfg.crash {
        c.lines_flushed += stack.flush().expect("final flush");
        c.crash_flushes += 1;
        snapshot.copy_from_slice(&mirror);
        c.lost_lines += stack.power_cut().expect("final power cut");
        c.power_cuts += 1;
        let rep = stack.recover().expect("final recovery");
        c.records_replayed += rep.records_replayed;
        c.lines_redone += rep.lines_redone;
    }

    // Closing sweep: the boot scrub first (it repairs a still-failed
    // chip and clears residual VLEW-level damage), then a full patrol
    // pass, a rank verify, and a complete readback against the mirror.
    let scrub_report = stack.boot_scrub().expect("closing boot scrub");
    full_patrol_pass(&mut stack).expect("closing patrol pass");
    let consistent = stack.verify_consistent().expect("closing verify");
    let mut sweep_mismatches = 0u64;
    let mut buf = [0u8; 64];
    for block in 0..cfg.blocks {
        match stack.read_into(block, &mut buf) {
            Ok(_) if buf == mirror[block as usize] => {}
            _ => sweep_mismatches += 1,
        }
    }

    let stats = stack.core_stats().expect("chipkill base");

    // Re-stripe leg (§V-E): fail a chip, transition the live rank into
    // the 4-block VLEW layout *in place* through the pipeline, and
    // confirm every block survives under the same wear-level remap.
    // Skipped under `--tiers`: tiering owns the base layout, so the
    // §V-E transition is exercised by the non-tiered profile (the
    // tiered equivalent — a crash-cut tier migration — runs in the
    // harness crash campaign instead).
    let mut restripe_mismatches = 0u64;
    let mut restripe_consistent = true;
    if !cfg.tiers {
        stack
            .apply_fault(&FaultEvent {
                at_cycle: cfg.cycles,
                kind: FaultKind::ChipKill {
                    chip: 3,
                    kind: ChipFailureKind::RandomGarbage,
                },
            })
            .expect("re-stripe chip failure");
        if cfg.crash {
            // The flip must start from a durable state that already knows
            // about the dead rank.
            c.lines_flushed += stack.flush().expect("pre-restripe flush");
            c.crash_flushes += 1;
        }
        stack.restripe().expect("re-stripe after chip failure");
        if cfg.crash {
            // The re-stripe commit fenced the whole re-laid-out image, so a
            // cut straight after it must recover to the new layout intact.
            c.lost_lines += stack.power_cut().expect("post-restripe power cut");
            c.power_cuts += 1;
            let rep = stack.recover().expect("post-restripe recovery");
            c.records_replayed += rep.records_replayed;
            c.lines_redone += rep.lines_redone;
        }
        for block in 0..cfg.blocks {
            match stack.read_into(block, &mut buf) {
                Ok(_) if buf == mirror[block as usize] => {}
                _ => restripe_mismatches += 1,
            }
        }
        restripe_consistent = stack.verify_consistent().expect("post-restripe verify");
    }

    // The tiered leg must have migrated at least once (pristine regions
    // step down from the boot tier on the first tier step).
    let tier_failed = cfg.tiers && c.tier_migrations == 0;

    let failed = tier_failed
        || c.read_mismatches > 0
        || c.read_errors > 0
        || sweep_mismatches > 0
        || restripe_mismatches > 0
        || !consistent
        || !restripe_consistent;

    let mut layers = Json::object();
    for (id, stats) in stack.layers() {
        layers = layers.with(id.as_str(), stats.to_json());
    }

    let doc = Json::object()
        .with("harness", "soak")
        .with(
            "config",
            Json::object()
                .with("blocks", cfg.blocks)
                .with("cycles", cfg.cycles)
                .with("seed", cfg.seed),
        )
        .with("schedule", schedule.to_json())
        .with(
            "campaign",
            Json::object()
                .with("events_applied", c.events_applied)
                .with("event_bits", c.event_bits)
                .with("background_bits", c.background_bits)
                .with("writes", c.ops_write)
                .with("reads", c.ops_read)
                .with("scrub_steps", c.ops_scrub)
                .with("scrub_uncorrectable", c.scrub_uncorrectable)
                .with(
                    "gap_moves",
                    stack.layer(LayerId::Wearlevel).map_or(0, |s| s.gap_moves),
                )
                .with(
                    "patrol_passes",
                    stack.layer(LayerId::Patrol).map_or(0, |s| s.patrol_passes),
                )
                .with("chip_repairs", c.chip_repairs)
                .with(
                    "repair_cycles",
                    Json::Arr(c.repair_cycles.iter().map(|&x| Json::from(x)).collect()),
                )
                .with("timeline_extra_fetches", c.extra_fetches),
        )
        .with(
            "read_paths",
            Json::object()
                .with("clean", c.path_clean)
                .with("rs_corrected", c.path_rs)
                .with("vlew_fallback", c.path_fallback)
                .with("chipkill_erasure", c.path_erasure),
        )
        .with("core_stats", stats.to_json())
        .with("layers", layers)
        .with("crash", c.crash_json(cfg.crash))
        .with("tier", {
            let mut t = Json::object()
                .with("enabled", cfg.tiers)
                .with("steps", c.tier_steps)
                .with("migrations", c.tier_migrations);
            if let Some(report) = stack.tier_report() {
                t = t
                    .with("regions", report.regions)
                    .with("rs_only_regions", report.rs_only_regions)
                    .with("paper_regions", report.paper_regions)
                    .with("dense_regions", report.dense_regions)
                    .with("blended_storage_cost", report.blended_cost());
            }
            t
        })
        .with(
            "verdict",
            Json::object()
                .with("read_mismatches", c.read_mismatches)
                .with("read_errors", c.read_errors)
                .with("final_verify_consistent", consistent)
                .with(
                    "closing_scrub_bits_corrected",
                    scrub_report.bits_corrected as u64,
                )
                .with("sweep_mismatches", sweep_mismatches)
                .with("restripe_skipped", cfg.tiers)
                .with("restripe_mismatches", restripe_mismatches)
                .with("restripe_verify_consistent", restripe_consistent)
                .with("tier_migrated", c.tier_migrations > 0)
                .with("passed", !failed),
        );

    if cfg.pretty {
        println!("{}", doc.pretty());
    } else {
        println!("{}", doc.dump());
    }
    if failed {
        eprintln!("soak: FAILED (see verdict in report)");
        std::process::exit(1);
    }
}
