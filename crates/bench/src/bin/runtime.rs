//! Regenerates the paper artifact `runtime` (see `pmck_bench::experiments::runtime`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::runtime::run().print();
}
