//! Regenerates the paper artifact `fig02` (see `pmck_bench::experiments::fig02`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig02::run().print();
}
