//! Regenerates the paper artifact `fig04` (see `pmck_bench::experiments::fig04`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig04::run().print();
}
