//! Regenerates the paper artifact `ablate_eur` (see `pmck_bench::experiments::ablate_eur`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::ablate_eur::run().print();
}
