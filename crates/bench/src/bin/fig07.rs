//! Regenerates the paper artifact `fig07` (see `pmck_bench::experiments::fig07`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig07::run().print();
}
