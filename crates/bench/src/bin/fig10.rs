//! Regenerates the paper artifact `fig10` (see `pmck_bench::experiments::fig10`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig10::run().print();
}
