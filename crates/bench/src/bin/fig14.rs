//! Regenerates the paper artifact `fig14` (see `pmck_bench::experiments::fig14`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::fig14::run().print();
}
