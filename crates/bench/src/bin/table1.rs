//! Regenerates the paper artifact `table1` (see `pmck_bench::experiments::table1`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::table1::run().print();
}
