//! Regenerates the paper artifact `frontier` (see `pmck_bench::experiments::frontier`).

fn main() {
    pmck_bench::experiments::frontier::run().print();
}
