//! Regenerates the paper artifact `scrub` (see `pmck_bench::experiments::scrub`).
//! Pass `--quick` (or set `PMCK_QUICK=1`) to shorten simulation runs.

fn main() {
    pmck_bench::experiments::scrub::run().print();
}
