//! Saturation benchmark: N producer threads driving all shards of the
//! memory service flat out, ring transport vs. the batched
//! `PinnedPool` baseline, with per-request latency histograms.
//!
//! Three workloads, each run on both engines:
//!
//! * `clean` — reads over a pristine prefilled space (the fast path;
//!   transport overhead dominates, so this is where the ring's
//!   lock-free submission shows up most directly);
//! * `errorful` — reads over a space damaged at a runtime-representative
//!   RBER, with a scrub mixed in every 16th request (fault-mix: decode
//!   work per op is higher, transport relatively lighter);
//! * `flush_heavy` — writes with a `Flush` broadcast closing every
//!   batch over persistent stacks (broadcast-coordination stress).
//!
//! The ring engine gives each producer thread its own [`ServiceClient`]
//! lane (`submit_batch_into` streams tickets up to the window, no
//! cross-producer locks); per-request latency comes from the service's
//! own completion-path telemetry. The baseline engine is
//! [`BatchService`] behind a `Mutex` — the pre-ring architecture:
//! producers serialize on the service lock and every batch pays the
//! whole-batch barrier; latency is the batch round-trip attributed to
//! each of its requests.
//!
//! Output is one JSON document with ops/s, p50/p99/p999 (ns), and the
//! ring:baseline speedup per workload. `--short` shrinks the run for CI
//! and asserts sanity (nonzero throughput, p50 ≤ p99 ≤ p999).
//!
//! ```text
//! saturate [--shards N] [--producers N] [--batch N] [--rounds N]
//!          [--short] [--pretty]
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

use pmck_core::{ChipkillConfig, PmemConfig, Request, Stack, StackBuilder};
use pmck_rt::metrics::Histogram;
use pmck_rt::rng::{stream_seed, Rng, StdRng};
use pmck_service::baseline::BatchService;
use pmck_service::ShardedService;

#[derive(Clone, Copy)]
struct Config {
    shards: usize,
    producers: usize,
    batch: usize,
    rounds: usize,
    blocks_per_shard: u64,
    short: bool,
    pretty: bool,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config {
            shards: 4,
            producers: 4,
            batch: 8,
            rounds: 2000,
            blocks_per_shard: 32,
            short: false,
            pretty: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--shards" => cfg.shards = need(args.next(), "--shards"),
                "--producers" => cfg.producers = need(args.next(), "--producers"),
                "--batch" => cfg.batch = need(args.next(), "--batch"),
                "--rounds" => cfg.rounds = need(args.next(), "--rounds"),
                "--short" => {
                    cfg.short = true;
                    cfg.rounds = 200;
                }
                "--pretty" => cfg.pretty = true,
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        if cfg.shards == 0 || cfg.producers == 0 || cfg.batch == 0 || cfg.rounds == 0 {
            usage("all sizes must be positive");
        }
        cfg
    }
}

fn need(v: Option<String>, flag: &str) -> usize {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a positive integer")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: saturate [--shards N] [--producers N] [--batch N] [--rounds N] [--short] [--pretty]"
    );
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Clean,
    Errorful,
    FlushHeavy,
}

impl Workload {
    const ALL: [Workload; 3] = [Workload::Clean, Workload::Errorful, Workload::FlushHeavy];

    fn name(self) -> &'static str {
        match self {
            Workload::Clean => "clean",
            Workload::Errorful => "errorful",
            Workload::FlushHeavy => "flush_heavy",
        }
    }

    fn build_stack(self, blocks: u64, seed: u64) -> Stack {
        let b = StackBuilder::proposal(blocks, ChipkillConfig::default()).seed(seed);
        match self {
            Workload::FlushHeavy => b.persistent(PmemConfig::default()).build(),
            _ => b.build(),
        }
    }

    /// Damage rate applied to the prefilled space before the run.
    fn rber(self) -> f64 {
        match self {
            Workload::Errorful => 2e-4,
            _ => 0.0,
        }
    }

    /// One producer's batch for `round`, drawn from its own seeded
    /// stream — identical across engines so the comparison is
    /// apples-to-apples.
    fn gen_batch(self, rng: &mut StdRng, total: u64, batch: usize, out: &mut Vec<Request>) {
        out.clear();
        for i in 0..batch {
            let addr = rng.gen_range(0..total);
            out.push(match self {
                Workload::Clean => Request::Read(addr),
                Workload::Errorful => {
                    if i % 16 == 15 {
                        Request::Scrub(addr)
                    } else {
                        Request::Read(addr)
                    }
                }
                Workload::FlushHeavy => {
                    let mut data = [0u8; 64];
                    rng.fill_bytes(&mut data[..]);
                    Request::Write { addr, data }
                }
            });
        }
        if self == Workload::FlushHeavy {
            out.push(Request::Flush);
        }
    }
}

struct EngineResult {
    ops: u64,
    elapsed_ns: u64,
    latency: Histogram,
    dropped_samples: u64,
}

impl EngineResult {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 * 1e9 / self.elapsed_ns as f64
    }

    fn to_json(&self) -> pmck_rt::json::Json {
        pmck_rt::json::Json::object()
            .with("ops", self.ops)
            .with("elapsed_ns", self.elapsed_ns)
            .with("ops_per_s", self.ops_per_s())
            .with("p50_ns", self.latency.quantile(0.50))
            .with("p99_ns", self.latency.quantile(0.99))
            .with("p999_ns", self.latency.quantile(0.999))
            .with("latency_samples", self.latency.count())
            .with("dropped_samples", self.dropped_samples)
    }
}

/// Prefills every block with a seeded pattern through any submit_batch
/// shaped closure.
fn prefill(total: u64, mut submit: impl FnMut(&[Request]) -> Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let writes: Vec<Request> = (0..total)
        .map(|a| {
            let mut data = [0u8; 64];
            rng.fill_bytes(&mut data[..]);
            Request::Write { addr: a, data }
        })
        .collect();
    let _ = submit(&writes);
}

fn run_ring(cfg: Config, wl: Workload, seed: u64) -> EngineResult {
    let mut svc = ShardedService::with_clients(cfg.shards, cfg.producers, seed, |_, s| {
        wl.build_stack(cfg.blocks_per_shard, s)
    });
    let total = svc.num_blocks();
    {
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let writes: Vec<Request> = (0..total)
            .map(|a| {
                let mut data = [0u8; 64];
                rng.fill_bytes(&mut data[..]);
                Request::Write { addr: a, data }
            })
            .collect();
        svc.submit_batch_into(&writes, &mut out);
        for r in out.drain(..) {
            r.expect("prefill");
        }
    }
    if wl.rber() > 0.0 {
        for s in 0..cfg.shards {
            svc.with_shard(s, |stack| stack.inject_bit_errors(wl.rber()))
                .expect("inject");
        }
    }
    let clients: Vec<_> = (0..cfg.producers)
        .map(|_| svc.take_client().expect("one lane per producer"))
        .collect();

    let start = Instant::now();
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(p, mut client)| {
            std::thread::spawn(move || {
                use pmck_core::{CoreError, ServiceFailure};
                let mut rng = StdRng::seed_from_u64(stream_seed(seed ^ 0xCAFE, p as u64));
                let mut batch = Vec::with_capacity(cfg.batch + 1);
                let mut fifo = std::collections::VecDeque::with_capacity(client.window());
                let mut ops = 0u64;
                // The streaming plane: tickets pipeline up to the window
                // with no per-batch barrier — a batch is only the
                // generation unit. Backpressure (window or ring full)
                // redeems the oldest ticket and retries.
                for _ in 0..cfg.rounds {
                    wl.gen_batch(&mut rng, total, cfg.batch, &mut batch);
                    for req in &batch {
                        loop {
                            match client.try_submit(req) {
                                Ok(t) => {
                                    fifo.push_back(t);
                                    break;
                                }
                                Err(CoreError::Service(se))
                                    if se.kind() == ServiceFailure::Backpressure =>
                                {
                                    let t = fifo.pop_front().expect("backpressure => in flight");
                                    client.wait_response(t).expect("benign workload");
                                    ops += 1;
                                }
                                Err(other) => panic!("submit failed: {other:?}"),
                            }
                        }
                    }
                }
                for t in fifo.drain(..) {
                    client.wait_response(t).expect("benign workload");
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    // Keep the lossy telemetry ring drained while the producers run, so
    // long runs don't overflow its 4096-sample buffer.
    let mut ops = 0u64;
    let mut joined = Vec::with_capacity(handles.len());
    for h in handles {
        while !h.is_finished() {
            let _ = svc.latency_report();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        joined.push(h);
    }
    for h in joined {
        ops += h.join().expect("producer thread");
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let (per_shard, broadcast) = svc.latency_report();
    let mut latency = Histogram::new();
    for h in &per_shard {
        latency.merge(h);
    }
    latency.merge(&broadcast);
    let dropped = svc.dropped_samples();
    svc.shutdown();
    EngineResult {
        ops,
        elapsed_ns,
        latency,
        dropped_samples: dropped,
    }
}

fn run_baseline(cfg: Config, wl: Workload, seed: u64) -> EngineResult {
    let mut svc = BatchService::new(cfg.shards, seed, |_, s| {
        wl.build_stack(cfg.blocks_per_shard, s)
    });
    let total = svc.num_blocks();
    prefill(total, |reqs| {
        for r in svc.submit_batch(reqs) {
            r.expect("prefill");
        }
        Vec::new()
    });
    if wl.rber() > 0.0 {
        for s in 0..cfg.shards {
            svc.with_shard(s, |stack| stack.inject_bit_errors(wl.rber()))
                .expect("inject");
        }
    }
    let svc = Arc::new(Mutex::new(svc));

    let start = Instant::now();
    let handles: Vec<_> = (0..cfg.producers)
        .map(|p| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(stream_seed(seed ^ 0xCAFE, p as u64));
                let mut batch = Vec::with_capacity(cfg.batch + 1);
                let mut out = Vec::with_capacity(cfg.batch + 1);
                let mut hist = Histogram::new();
                let mut ops = 0u64;
                for _ in 0..cfg.rounds {
                    wl.gen_batch(&mut rng, total, cfg.batch, &mut batch);
                    let t0 = Instant::now();
                    {
                        let mut svc = svc.lock().expect("service lock");
                        svc.submit_batch_into(&batch, &mut out);
                    }
                    let batch_ns = t0.elapsed().as_nanos() as u64;
                    for r in &out {
                        r.as_ref().expect("benign workload");
                    }
                    // Every request in the batch waited for the whole
                    // barrier: the batch round-trip IS its latency.
                    for _ in 0..out.len() {
                        hist.record(batch_ns);
                    }
                    ops += out.len() as u64;
                }
                (ops, hist)
            })
        })
        .collect();
    let mut ops = 0u64;
    let mut latency = Histogram::new();
    for h in handles {
        let (n, hist) = h.join().expect("producer thread");
        ops += n;
        latency.merge(&hist);
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    svc.lock().expect("service lock").shutdown();
    EngineResult {
        ops,
        elapsed_ns,
        latency,
        dropped_samples: 0,
    }
}

fn main() {
    let cfg = Config::from_args();
    let mut workloads = Vec::new();
    for wl in Workload::ALL {
        let seed = match wl {
            Workload::Clean => 101,
            Workload::Errorful => 202,
            Workload::FlushHeavy => 303,
        };
        eprintln!("saturate: {} (ring)...", wl.name());
        let ring = run_ring(cfg, wl, seed);
        eprintln!("saturate: {} (baseline)...", wl.name());
        let base = run_baseline(cfg, wl, seed);
        let speedup = ring.ops_per_s() / base.ops_per_s();
        eprintln!(
            "saturate: {:<12} ring {:>10.0} ops/s  baseline {:>10.0} ops/s  ({speedup:.2}x)",
            wl.name(),
            ring.ops_per_s(),
            base.ops_per_s(),
        );
        if cfg.short {
            for (engine, r) in [("ring", &ring), ("baseline", &base)] {
                assert!(
                    r.ops > 0 && r.ops_per_s() > 0.0,
                    "{engine}/{}: zero throughput",
                    wl.name()
                );
                let (p50, p99, p999) = (
                    r.latency.quantile(0.50),
                    r.latency.quantile(0.99),
                    r.latency.quantile(0.999),
                );
                assert!(
                    p50 > 0 && p50 <= p99 && p99 <= p999,
                    "{engine}/{}: implausible quantiles p50={p50} p99={p99} p999={p999}",
                    wl.name()
                );
                assert!(
                    r.latency.count() > 0,
                    "{engine}/{}: no latency samples",
                    wl.name()
                );
            }
        }
        workloads.push(
            pmck_rt::json::Json::object()
                .with("workload", wl.name())
                .with("ring", ring.to_json())
                .with("baseline", base.to_json())
                .with("speedup", speedup),
        );
    }

    let doc = pmck_rt::json::Json::object()
        .with("harness", "saturate")
        .with("shards", cfg.shards as u64)
        .with("producers", cfg.producers as u64)
        .with("batch", cfg.batch as u64)
        .with("rounds", cfg.rounds as u64)
        .with("blocks_per_shard", cfg.blocks_per_shard)
        .with("short", cfg.short)
        .with("workloads", pmck_rt::json::Json::Arr(workloads));
    if cfg.pretty {
        println!("{}", doc.pretty());
    } else {
        println!("{}", doc.dump());
    }
    if cfg.short {
        eprintln!("saturate: short-run sanity checks passed");
    }
}
