//! Figure 18: OMV served-from-LLC rate.

use pmck_sim::NvramKind;

use crate::report::{pct, Experiment};
use crate::simsuite::{mean, suite};

/// Regenerates Figure 18: the fraction of PM writes whose old memory
/// value is found in the LLC (SAM/OMV machinery) rather than fetched
/// from off-chip memory. Paper average: 98.6%, with `barnes` worst at 89%.
pub fn run() -> Experiment {
    let results = suite(NvramKind::ReRam);
    let mut e = Experiment::new("fig18", "Figure 18: OMV served from LLC");
    for cmp in results {
        let paper = match cmp.baseline.workload.as_str() {
            "barnes" => "89% (worst)",
            _ => "~98.6% average",
        };
        e.row(
            &cmp.baseline.workload,
            paper,
            format!(
                "{} ({} misses)",
                pct(cmp.proposal.omv_hit_rate, 2),
                cmp.proposal.omv_misses
            ),
        );
    }
    let avg = mean(results.iter().map(|c| c.proposal.omv_hit_rate));
    e.row("average", "98.6%", pct(avg, 2));
    e.note("Only OMV misses pay the off-chip fetch of the old value; at these rates the write path is effectively free of extra reads.");
    e
}
