//! Figure 15: the C factor (VLEW code-bit writes per PM write).

use pmck_sim::NvramKind;

use crate::report::Experiment;
use crate::simsuite::{mean, suite};

/// Regenerates Figure 15: per-workload C, measured from the EUR model in
/// the baseline pass and used to derive the proposal's slowed `tWR`
/// (`tWR × (1 + 33/8·C) + 20 ns`).
pub fn run() -> Experiment {
    let results = suite(NvramKind::ReRam);
    let mut e = Experiment::new("fig15", "Figure 15: VLEW updates per PM write (C factor)");
    for cmp in results {
        e.row(
            &cmp.baseline.workload,
            "workload-dependent (≤1)",
            format!(
                "C = {:.3} → tWR × {:.2} + 20 ns",
                cmp.c_factor,
                1.0 + 33.0 / 8.0 * cmp.c_factor
            ),
        );
    }
    let avg = mean(results.iter().map(|c| c.c_factor));
    e.row("average", "—", format!("C = {avg:.3}"));
    e.note("C depends on the spatial locality of PM writes: append-only logs coalesce VLEW updates in the EUR, scattered item writes do not.");
    e
}
