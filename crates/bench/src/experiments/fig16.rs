//! Figure 16: performance normalized to the bit-error baseline, ReRAM.

use pmck_sim::NvramKind;

use crate::report::Experiment;
use crate::simsuite::{mean, suite};

/// Regenerates Figure 16: proposal performance normalized to the
/// bit-error-correction baseline under ReRAM latencies (120 ns read /
/// 300 ns write). Paper average: ~98.6%.
pub fn run() -> Experiment {
    let results = suite(NvramKind::ReRam);
    let mut e = Experiment::new(
        "fig16",
        "Figure 16: normalized performance, ReRAM latencies",
    );
    for cmp in results {
        let paper = match cmp.baseline.workload.as_str() {
            "hashmap" => "worst case (~86-90%)",
            "ctree" | "btree" | "rbtree" => ">= 96.8%",
            _ => "~99%",
        };
        e.row(
            &cmp.baseline.workload,
            paper,
            format!("{:.4}", cmp.normalized_performance()),
        );
    }
    let avg = mean(results.iter().map(|c| c.normalized_performance()));
    e.row("average", "0.986 (1.4% overhead)", format!("{avg:.4}"));
    e.note("Write-query workloads with random placement (hashmap) pay the most for iso-lifetime write slowing; request-processing servers hide it.");
    e
}
