//! §V-C: runtime fallback rate and read bandwidth overhead — analytic
//! plus an empirical run of the real engine.

use pmck_analysis::bandwidth::proposal_read_overhead;
use pmck_analysis::sdc::fallback_fraction;
use pmck_analysis::RUNTIME_RBER_PCM_HOURLY;
use pmck_core::{ChipkillConfig, ChipkillMemory};
use pmck_rt::rng::StdRng;

use crate::report::{pct, sci, Experiment};

/// Regenerates §V-C: ~0.02% of reads fall back to VLEW decoding at
/// RBER 2·10⁻⁴, for ~0.6% read bandwidth overhead; the engine's measured
/// fallback rate agrees with the binomial model.
pub fn run() -> Experiment {
    let p = RUNTIME_RBER_PCM_HOURLY;
    let analytic = fallback_fraction(p, 64, 8, 2);
    let mut e = Experiment::new("runtime", "§V-C: runtime correction path");
    e.row(
        "reads needing VLEW fallback (analytic)",
        "0.018% avg",
        pct(analytic, 4),
    );
    e.row(
        "read bandwidth overhead",
        "0.6%",
        pct(proposal_read_overhead(analytic, 36), 2),
    );

    // Empirical: inject at 2e-4 and read every block repeatedly.
    let mut rng = StdRng::seed_from_u64(3);
    let mut mem = ChipkillMemory::new(1024, ChipkillConfig::default());
    for a in 0..mem.num_blocks() {
        let mut b = [0u8; 64];
        for (i, x) in b.iter_mut().enumerate() {
            *x = (a as u8) ^ (i as u8).wrapping_mul(7);
        }
        mem.write_block(a, &b).unwrap();
    }
    let rounds = 40;
    let (mut reads, mut fallbacks) = (0u64, 0u64);
    for _ in 0..rounds {
        // Each round injects into a fresh copy: a single scrub interval's
        // worth of errors, as the analytic model assumes.
        let mut trial = mem.clone();
        trial.inject_bit_errors(p, &mut rng);
        for a in 0..trial.num_blocks() {
            let _ = trial.read_block(a).expect("correctable at runtime RBER");
        }
        reads += trial.stats().reads;
        fallbacks += trial.stats().fallbacks;
    }
    let measured = fallbacks as f64 / reads as f64;
    e.row(
        "measured fallback fraction (engine)",
        sci(analytic),
        format!("{} ({fallbacks} of {reads} reads)", sci(measured)),
    );
    e.note("The engine's measured fallback rate tracks the binomial model.");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn overhead_below_two_percent() {
        let e = super::run();
        let v: f64 = e.rows[1].measured.trim_end_matches('%').parse().unwrap();
        assert!(v < 2.0, "{v}");
    }
}
