//! The storage-overhead-vs-UBER frontier of the adaptive tiers.
//!
//! The paper fixes one design point — RS(72,64) + VLEW at 27% total
//! storage — sized for its worst-case runtime RBER. The tiered engine
//! instead picks, per region, the cheapest protection layout whose
//! analytic block UE rate still meets the 10⁻¹⁵ target at the region's
//! *measured* RBER. This experiment sweeps RBER, emits each tier's
//! (storage overhead, UBER) point, marks the frontier (cheapest
//! feasible tier per RBER), and closes the loop with a measured leg: a
//! three-region [`pmck_core::TieredMemory`] fed per-region error
//! observations at three RBER decades must land each region on the
//! analytic frontier tier and report the matching blended cost.

use pmck_analysis::tier::{cheapest_tier, tier_ue_rates};
use pmck_analysis::UE_TARGET;
use pmck_core::{
    Access, AccessContext, BlockDevice, ChipkillConfig, ProtectionTier, TierPolicy, TieredMemory,
};

use crate::report::{pct, sci, Experiment};

/// The RBER sweep: pristine cells up to just past the boot design point.
const RBERS: [f64; 8] = [1e-7, 1e-6, 3e-6, 1e-5, 7e-5, 2e-4, 1e-3, 1.5e-3];

fn tier_cost(i: usize) -> f64 {
    ProtectionTier::ALL[i].layout().total_storage_cost()
}

/// Regenerates the frontier: per-tier storage cost vs analytic UBER
/// across the RBER sweep, with the paper's fixed 27% point reproduced
/// at its quoted runtime RBERs, plus the measured tiered-rank leg.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "frontier",
        "storage overhead vs UBER across adaptive protection tiers",
    );
    for &rber in &RBERS {
        let ue = tier_ue_rates(rber);
        let pick = cheapest_tier(rber, UE_TARGET);
        for (i, tier) in ProtectionTier::ALL.iter().enumerate() {
            let marker = if pick == Some(i) { " <- frontier" } else { "" };
            e.row(
                format!("RBER {rber:.1e} {}", tier.as_str()),
                if pick == Some(i) && *tier == ProtectionTier::Paper {
                    "27% fixed point"
                } else {
                    "—"
                },
                format!("cost {} UBER {}{marker}", pct(tier_cost(i), 1), sci(ue[i])),
            );
        }
    }
    // The paper's design point must sit on the frontier at both quoted
    // runtime RBERs.
    for &rber in &[
        pmck_analysis::RUNTIME_RBER_RERAM,
        pmck_analysis::RUNTIME_RBER_PCM_HOURLY,
    ] {
        let pick = cheapest_tier(rber, UE_TARGET).expect("feasible at runtime RBER");
        e.row(
            format!("frontier @ runtime RBER {rber:.0e}"),
            "paper tier (27%)",
            format!(
                "{} ({})",
                ProtectionTier::ALL[pick].as_str(),
                pct(tier_cost(pick), 1)
            ),
        );
    }

    // Measured leg: one region per RBER decade; the policy must land
    // each on its frontier tier and blend the costs region-weighted.
    let policy = TierPolicy::default();
    let mut mem = TieredMemory::new(96, 3, ChipkillConfig::default(), policy);
    let mut ctx = AccessContext::new(0xF0_17);
    let probes = [1e-6, 2e-4, 1.5e-3];
    for (r, &rber) in probes.iter().enumerate() {
        let bits = 1_000_000_000u64;
        let flipped = (rber * bits as f64) as u64;
        mem.rber_mut().record_observation(r, flipped, bits);
    }
    let _ = mem
        .access(Access::TierStep, &mut ctx)
        .expect("tier step on a healthy rank");
    let expect = [
        ProtectionTier::RsOnly,
        ProtectionTier::Paper,
        ProtectionTier::Dense,
    ];
    for (r, (&rber, want)) in probes.iter().zip(expect).enumerate() {
        e.row(
            format!("measured region @ RBER {rber:.1e}"),
            want.as_str(),
            mem.region_tier(r).as_str(),
        );
    }
    let report = mem.report();
    let blended: f64 = (0..3).map(tier_cost).sum::<f64>() / 3.0;
    e.row(
        "measured blended cost (3 regions)",
        pct(blended, 1),
        pct(report.blended_cost(), 1),
    );
    e.note(
        "The paper's fixed 27% point is optimal only in the 4e-6..1e-3 RBER band; \
         healthy regions run 12.9% RS-only with bonus capacity, worn regions pay \
         41.5% for dense VLEWs, and the tier policy tracks the frontier from \
         measured per-region RBER.",
    );
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_covers_all_three_tiers() {
        let e = run();
        for tier in ProtectionTier::ALL {
            assert!(
                e.rows
                    .iter()
                    .any(|r| r.measured.ends_with("<- frontier")
                        && r.label.contains(tier.as_str())),
                "{} never on the frontier",
                tier.as_str()
            );
        }
    }

    #[test]
    fn paper_point_reproduced_at_runtime_rber() {
        let e = run();
        let r = e
            .rows
            .iter()
            .find(|r| r.label.starts_with("frontier @ runtime RBER 2e-4"))
            .unwrap();
        assert!(r.measured.starts_with("paper"), "{}", r.measured);
        assert!(r.measured.contains("27."), "{}", r.measured);
    }

    #[test]
    fn measured_regions_land_on_the_frontier() {
        let e = run();
        for r in e
            .rows
            .iter()
            .filter(|r| r.label.starts_with("measured region"))
        {
            assert_eq!(r.paper, r.measured, "{}", r.label);
        }
        let blend = e
            .rows
            .iter()
            .find(|r| r.label.starts_with("measured blended"))
            .unwrap();
        assert_eq!(blend.paper, blend.measured);
    }
}
