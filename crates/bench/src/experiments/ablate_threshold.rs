//! Ablation: the runtime acceptance threshold (§V-C's design choice).

use pmck_analysis::sdc::threshold_sweep;
use pmck_analysis::{RUNTIME_RBER_PCM_HOURLY, SDC_TARGET};

use crate::report::{sci, Experiment};

/// Sweeps the acceptance threshold t ∈ 0..=4: SDC risk versus VLEW
/// fallback traffic. The paper picks 2 — the largest t whose SDC rate
/// clears the 10⁻¹⁷ target.
pub fn run() -> Experiment {
    let p = RUNTIME_RBER_PCM_HOURLY;
    let mut e = Experiment::new(
        "ablate_threshold",
        "Ablation: RS acceptance threshold (SDC vs fallback)",
    );
    for (t, sdc, fb) in threshold_sweep(p, 64, 8, 4) {
        let verdict = if sdc <= SDC_TARGET {
            "meets"
        } else {
            "violates"
        };
        e.row(
            format!("t = {t}"),
            match t {
                2 => "chosen: SDC 3.3e-22, fallback ~0.02%".to_string(),
                4 => "rejected: SDC 3.2e-11 (3e6X over)".to_string(),
                _ => "—".to_string(),
            },
            format!("SDC {} ({verdict} target), fallback {}", sci(sdc), sci(fb)),
        );
    }
    e.note("t=2 is the largest threshold meeting the SDC target; t=3,4 trade unacceptable SDC for negligible bandwidth.");
    e
}

#[cfg(test)]
mod tests {
    use pmck_analysis::SDC_TARGET;

    #[test]
    fn two_is_the_largest_safe_threshold() {
        let sweep = pmck_analysis::sdc::threshold_sweep(2e-4, 64, 8, 4);
        assert!(sweep[2].1 <= SDC_TARGET);
        assert!(sweep[3].1 > SDC_TARGET);
    }
}
