//! Figure 2: storage cost of extending DRAM chipkill-correct schemes to
//! NVRAM RBERs.

use pmck_analysis::schemes::{cheapest_extension, ExtendedScheme};
use pmck_analysis::UE_TARGET;

use crate::report::{pct, Experiment};

/// Regenerates Figure 2: total storage cost of XED-, Samsung-, and
/// DUO-style extensions across RBERs, with the paper's ≥69% headline at
/// RBER 10⁻³.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "fig02",
        "Figure 2: extending DRAM chipkill-correct to NVRAM RBER",
    );
    for &rber in &[1e-5, 3e-5, 1e-4, 3e-4, 1e-3] {
        for scheme in ExtendedScheme::ALL {
            let cost = scheme.total_cost(rber, UE_TARGET);
            e.row(
                format!("{scheme} @ RBER {rber:.0e}"),
                if (rber - 1e-3).abs() < 1e-12 {
                    "expensive (min 69%)"
                } else {
                    "—"
                },
                cost.map_or("infeasible".to_string(), |c| pct(c, 1)),
            );
        }
    }
    let (best, cost) = cheapest_extension(1e-3, UE_TARGET).expect("feasible at 1e-3");
    e.row(
        "cheapest extension @ 1e-3",
        "69% (DUO-style)",
        format!("{} ({best})", pct(cost, 1)),
    );
    e.note(
        "Exact minima differ slightly from the paper's bookkeeping, but the conclusion \
         holds: every extension lands far above the proposal's 27%.",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn min_cost_is_prohibitive() {
        let e = super::run();
        let last = e.rows.last().unwrap();
        let v: f64 = last.measured.split('%').next().unwrap().parse().unwrap();
        assert!(v >= 55.0, "measured {v}%");
    }
}
