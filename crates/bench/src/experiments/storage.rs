//! §V-A: the proposal's storage accounting, from the layout itself.

use pmck_core::ChipkillLayout;

use crate::report::{pct, Experiment};

/// Regenerates the §V-A storage accounting straight from the layout the
/// engine actually uses: 33/256 + 1/8·(1+33/256) ≈ 27%.
pub fn run() -> Experiment {
    let l = ChipkillLayout::default();
    let mut e = Experiment::new("storage", "§V-A: proposal storage cost");
    e.row(
        "VLEW geometry",
        "256 B data + 33 B code per chip",
        format!(
            "{} B data + {} B code ({} blocks/VLEW)",
            l.vlew_data_bytes,
            l.vlew_code_bytes,
            l.blocks_per_vlew()
        ),
    );
    e.row("VLEW overhead", "33/256 ≈ 12.9%", pct(l.vlew_overhead(), 1));
    e.row(
        "total with parity chip",
        "27%",
        pct(l.total_storage_cost(), 1),
    );
    e.row(
        "bit-error-only baseline (§III-A)",
        "28%",
        pct(140.0 / 512.0, 1),
    );
    e.row(
        "VLEW fallback fetch",
        "35 extra blocks",
        l.vlew_fallback_extra_blocks().to_string(),
    );
    e.row(
        "block UE rate at boot RBER 1e-3",
        "< 1e-15",
        crate::report::sci(pmck_analysis::proposal::boot_block_ue_rate(
            pmck_analysis::BOOT_RBER,
        )),
    );
    e.row(
        "block UE rate at runtime RBER 2e-4",
        "< 1e-15",
        crate::report::sci(pmck_analysis::proposal::runtime_block_ue_rate(2e-4)),
    );
    e.note("Chip failure protection comes at *no additional storage* over the baseline.");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn twenty_seven_percent() {
        let e = super::run();
        let r = e
            .rows
            .iter()
            .find(|r| r.label.starts_with("total"))
            .unwrap();
        assert!(r.measured.starts_with("27."), "{}", r.measured);
    }
}
