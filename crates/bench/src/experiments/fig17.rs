//! Figure 17: performance normalized to the bit-error baseline, PCM.

use pmck_sim::NvramKind;

use crate::report::Experiment;
use crate::simsuite::{mean, suite};

/// Regenerates Figure 17: proposal performance normalized to the
/// bit-error-correction baseline under PCM latencies (250 ns read /
/// 600 ns write). Paper average: ~97.7%.
pub fn run() -> Experiment {
    let results = suite(NvramKind::Pcm);
    let mut e = Experiment::new("fig17", "Figure 17: normalized performance, PCM latencies");
    for cmp in results {
        let paper = match cmp.baseline.workload.as_str() {
            "hashmap" => "worst case (86%, 14% overhead)",
            "ctree" | "btree" | "rbtree" => ">= 96.8%",
            _ => "~99%",
        };
        e.row(
            &cmp.baseline.workload,
            paper,
            format!("{:.4}", cmp.normalized_performance()),
        );
    }
    let avg = mean(results.iter().map(|c| c.normalized_performance()));
    e.row("average", "0.977 (2.3% overhead)", format!("{avg:.4}"));
    e.note("Write-query workloads with random placement (hashmap) pay the most for iso-lifetime write slowing; request-processing servers hide it.");
    e
}
