//! Figure 4: storage cost vs codeword length at boot RBER.

use pmck_analysis::storage::vlew_plus_parity_cost;
use pmck_analysis::{BOOT_RBER, UE_TARGET};

use crate::report::{pct, Experiment};

/// Regenerates Figure 4: minimum-`t` VLEW + parity-chip storage cost as
/// the per-chip data length grows; 27% at 256 B (the paper's pick).
pub fn run() -> Experiment {
    let mut e = Experiment::new("fig04", "Figure 4: storage cost vs codeword length");
    for &bytes in &[64usize, 128, 256, 512, 1024, 2048, 4096] {
        let (t, cost) =
            vlew_plus_parity_cost(bytes, BOOT_RBER, UE_TARGET, 8).expect("feasible at boot RBER");
        let paper = match bytes {
            64 => "~40%+".to_string(),
            256 => "27% (t=22)".to_string(),
            _ => "decreasing".to_string(),
        };
        e.row(
            format!("{bytes} B data/word"),
            paper,
            format!("{} (t={t})", pct(cost, 1)),
        );
    }
    e.note("Cost decreases monotonically with word length; 256 B already matches the 28% bit-error-only baseline while adding chipkill.");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn cost_at_256b_is_27() {
        let e = super::run();
        let r = e.rows.iter().find(|r| r.label.starts_with("256")).unwrap();
        assert!(r.measured.starts_with("27."), "{}", r.measured);
        assert!(r.measured.contains("t=22"));
    }
}
