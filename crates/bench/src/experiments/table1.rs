//! Table I: the simulated-system configuration, echoed from the actual
//! simulator structures (so drift between docs and code is impossible).

use pmck_cachesim::HierarchyConfig;
use pmck_memsim::{MemConfig, NvramTiming, RankKind, NS};
use pmck_sim::{NvramKind, Scheme, SimConfig};

use crate::report::Experiment;

/// Regenerates Table I from the live configuration objects.
pub fn run() -> Experiment {
    let sim = SimConfig::paper(NvramKind::ReRam, Scheme::Baseline);
    let h = HierarchyConfig::paper(true);
    let m = MemConfig::paper_hybrid(NvramTiming::reram());
    let mut e = Experiment::new("table1", "Table I: microarchitectural parameters");
    e.row(
        "cores",
        "4 cores, 3 GHz",
        format!(
            "{} cores, {:.1} GHz",
            sim.cores,
            1000.0 / sim.core_period_ps as f64
        ),
    );
    e.row(
        "L1",
        "2-way, 64 KB, 1 cycle",
        format!(
            "{}-way, {} KB, {} cycle",
            h.l1.ways,
            h.l1.capacity_bytes / 1024,
            h.l1.latency_cycles
        ),
    );
    e.row(
        "shared LLC",
        "32-way, 4 MB, 14 cycles",
        format!(
            "{}-way, {} MB, {} cycles",
            h.llc.ways,
            h.llc.capacity_bytes / (1024 * 1024),
            h.llc.latency_cycles
        ),
    );
    e.row(
        "memory controller",
        "128 rd / 128 wr buffers, closed page, FR-FCFS",
        format!(
            "{} rd / {} wr, row closes after {} ns idle, FR-FCFS",
            m.read_queue,
            m.write_queue,
            m.row_idle_close_ps / NS
        ),
    );
    e.row(
        "memory system",
        "2400 MT/s channel: 1 DRAM + 1 PM rank, 16 banks/rank",
        format!(
            "DRAM tRCD {} ns + NVRAM rank, {} banks/rank",
            m.timing(RankKind::Dram).t_rcd / NS,
            m.banks_per_rank
        ),
    );
    e.row(
        "NVRAM latencies",
        "ReRAM 120/300 ns; PCM 250/600 ns",
        format!(
            "ReRAM {}/{} ns; PCM {}/{} ns",
            NvramTiming::reram().read_ps / NS,
            NvramTiming::reram().write_ps / NS,
            NvramTiming::pcm().read_ps / NS,
            NvramTiming::pcm().write_ps / NS
        ),
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn echoes_live_config() {
        let e = super::run();
        assert!(e.rows[0].measured.contains("4 cores"));
        assert!(e.rows[2].measured.contains("32-way"));
    }
}
