//! One module per paper artifact. Each exposes `run() -> Experiment`.
//!
//! Analytic experiments are cheap and exact; simulation experiments
//! ([`fig10`], [`fig14`], [`fig15`], [`fig16`], [`fig17`], [`fig18`])
//! replay the workload suite through the full-system simulator.

pub mod ablate_eur;
pub mod ablate_omv;
pub mod ablate_threshold;
pub mod appendix;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig07;
pub mod fig10;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod frontier;
pub mod runtime;
pub mod scrub;
pub mod sec3a;
pub mod storage;
pub mod table1;

use crate::report::Experiment;

/// All analytic (fast) experiments in presentation order.
pub fn analytic() -> Vec<Experiment> {
    vec![
        fig01::run(),
        fig02::run(),
        fig03::run(),
        fig04::run(),
        fig05::run(),
        fig07::run(),
        sec3a::run(),
        storage::run(),
        frontier::run(),
        scrub::run(),
        runtime::run(),
        appendix::run(),
        table1::run(),
        ablate_threshold::run(),
    ]
}

/// All simulation-driven experiments (each triggers the shared suite).
pub fn simulation() -> Vec<Experiment> {
    vec![
        fig10::run(),
        fig14::run(),
        fig15::run(),
        fig16::run(),
        fig17::run(),
        fig18::run(),
        ablate_omv::run(),
        ablate_eur::run(),
    ]
}
