//! Figure 1: RBER bands of memory and storage technologies.

use pmck_analysis::BOOT_RBER;
use pmck_nvram::{rber_at, rber_band, MemoryTech};

use crate::report::{sci, Experiment};

/// Regenerates Figure 1: per-technology RBER bands from the retention
/// model, plus the paper's anchor observations.
pub fn run() -> Experiment {
    let mut e = Experiment::new("fig01", "Figure 1: RBERs of memory and storage");
    for tech in MemoryTech::ALL {
        let (lo, hi) = rber_band(tech);
        e.row(
            tech.name(),
            match tech {
                MemoryTech::Pcm3Bit => "7e-5 @1s … 1e-3 @1wk".to_string(),
                MemoryTech::ReRam => "7e-5 runtime … 1e-3 @1yr".to_string(),
                MemoryTech::FlashMlc => "Flash-like band".to_string(),
                MemoryTech::Dram => "~1e-6 cell faults".to_string(),
                _ => "—".to_string(),
            },
            format!("{} … {}", sci(lo), sci(hi)),
        );
    }
    e.row(
        "3-bit PCM @1 week",
        sci(1e-3),
        sci(rber_at(MemoryTech::Pcm3Bit, 7.0 * 86400.0)),
    );
    e.row(
        "3-bit PCM @1 hour",
        sci(2e-4),
        sci(rber_at(MemoryTech::Pcm3Bit, 3600.0)),
    );
    e.row(
        "ReRAM @1 year",
        sci(BOOT_RBER),
        sci(rber_at(MemoryTech::ReRam, 365.25 * 86400.0)),
    );
    e.note("NVRAM RBER resembles Flash far more than DRAM (the paper's Figure 1 takeaway).");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn anchors_match() {
        let e = super::run();
        assert!(e.rows.len() >= 9);
        let week = e.rows.iter().find(|r| r.label.contains("week")).unwrap();
        assert_eq!(week.paper, week.measured);
    }
}
