//! Appendix: the Term-A/Term-B SDC model, with a Monte-Carlo check of
//! Term B against the real RS decoder.

use pmck_analysis::sdc::{sdc_rate, term_a, term_b};
use pmck_analysis::{RUNTIME_RBER_PCM_HOURLY, SDC_TARGET};
use pmck_rs::RsCode;
use pmck_rt::par;
use pmck_rt::rng::Rng;

use crate::report::{sci, Experiment};

/// Empirically estimates Term B for `t`: the probability a random
/// overweight noncodeword decodes (miscorrects) into some codeword within
/// distance `t`, using the actual RS(72, 64) decoder.
///
/// The campaign runs chunked on `workers` threads via
/// [`par::mc_chunks`]; the estimate is bit-identical for any worker
/// count.
fn monte_carlo_term_b(t: usize, trials: u64, seed: u64, workers: usize) -> f64 {
    let code = RsCode::per_block();
    let miscorrected: u64 = par::mc_chunks(trials, 10_000, workers, seed, |rng, n| {
        let mut hits = 0u64;
        for _ in 0..n {
            // A uniformly random word is (overwhelmingly) a noncodeword
            // far from every codeword; Term B is exactly the chance it
            // lands within distance t of one.
            let mut word: Vec<u8> = (0..72).map(|_| rng.gen()).collect();
            if let Ok(out) = code.decode(&mut word) {
                if out.num_corrections() <= t {
                    hits += 1;
                }
            }
        }
        hits
    })
    .into_iter()
    .sum();
    miscorrected as f64 / trials as f64
}

/// Regenerates the Appendix: Term A, Term B, and the SDC rates for the
/// t=4 and t=2 design points at RBER 2·10⁻⁴.
pub fn run() -> Experiment {
    let p = RUNTIME_RBER_PCM_HOURLY;
    let mut e = Experiment::new("appendix", "Appendix: miscorrection (SDC) analysis");
    e.row("Term A (t=4, nth=5)", "1.3e-7", sci(term_a(p, 64, 8, 4)));
    e.row("Term B (t=4)", "2.4e-4", sci(term_b(64, 8, 4)));
    e.row("SDC rate (t=4)", "3.2e-11", sci(sdc_rate(p, 64, 8, 4)));
    e.row("Term A (t=2, nth=7)", "3.6e-11", sci(term_a(p, 64, 8, 2)));
    e.row("Term B (t=2)", "9.1e-12", sci(term_b(64, 8, 2)));
    e.row("SDC rate (t=2)", "3.3e-22", sci(sdc_rate(p, 64, 8, 2)));
    e.row(
        "t=4 SDC vs target",
        "3,000,000X over",
        format!("{:.1e}X over", sdc_rate(p, 64, 8, 4) / SDC_TARGET),
    );
    e.row(
        "t=4 SDC vs target @ 7e-5",
        "18,000X over",
        format!("{:.1e}X over", sdc_rate(7e-5, 64, 8, 4) / SDC_TARGET),
    );
    // Monte-Carlo confirmation of Term B (t=4) using the real decoder.
    let trials = 300_000;
    let mc = monte_carlo_term_b(4, trials, 99, par::default_workers());
    e.row(
        "Term B (t=4), Monte-Carlo on real decoder",
        "2.4e-4",
        format!("{} ({trials} random words)", sci(mc)),
    );
    e.note(
        "Term B is pure code geometry; the decoder measurement validates the combinatorial model.",
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn monte_carlo_matches_analytic() {
        let mc = super::monte_carlo_term_b(4, 120_000, 5, pmck_rt::par::default_workers());
        let analytic = pmck_analysis::sdc::term_b(64, 8, 4);
        assert!(
            (mc / analytic - 1.0).abs() < 0.35,
            "mc {mc:e} vs analytic {analytic:e}"
        );
    }

    #[test]
    fn term_b_identical_across_worker_counts() {
        let one = super::monte_carlo_term_b(4, 60_000, 5, 1);
        assert_eq!(
            one.to_bits(),
            super::monte_carlo_term_b(4, 60_000, 5, 2).to_bits()
        );
        assert_eq!(
            one.to_bits(),
            super::monte_carlo_term_b(4, 60_000, 5, 8).to_bits()
        );
    }
}
