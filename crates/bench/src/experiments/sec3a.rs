//! §III-A: the cost of naive per-block protection.

use pmck_analysis::storage::{min_bch_t, per_block_bch_cost};
use pmck_analysis::{BOOT_RBER, UE_TARGET};

use crate::report::{pct, Experiment};

/// Regenerates the §III-A arithmetic: 14-bit-EC per block ≈28% (bit
/// errors only); absorbing a chip failure in the same code needs 78-bit
/// EC at a prohibitive ≈152%.
pub fn run() -> Experiment {
    let mut e = Experiment::new("sec3a", "§III-A: naive per-block BCH costs");
    let t = min_bch_t(512, BOOT_RBER, UE_TARGET, 100).expect("feasible");
    e.row("minimum t for 64 B @ 1e-3", "14", t.to_string());
    e.row("14-bit-EC storage", "28%", pct(per_block_bch_cost(14), 1));
    e.row(
        "64+14 = 78-bit-EC storage (chipkill folded in)",
        "152%",
        pct(per_block_bch_cost(78), 1),
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_paper() {
        let e = super::run();
        assert_eq!(e.rows[0].measured, "14");
        assert!(e.rows[1].measured.starts_with("27.3"));
        assert!(e.rows[2].measured.starts_with("152"));
    }
}
