//! Ablation: the proposal without OMV caching (§V-D's motivation).

use pmck_sim::{NvramKind, Scheme, SimConfig, Simulator};
use pmck_workloads::WorkloadSpec;

use crate::report::Experiment;
use crate::simsuite::{quick_requested, suite, SUITE_SEED};

/// Reruns a representative subset of the suite with OMV caching disabled:
/// every PM write must fetch its old value from off-chip memory, showing
/// what the SAM/OMV bits buy.
pub fn run() -> Experiment {
    let results = suite(NvramKind::Pcm);
    let mut e = Experiment::new(
        "ablate_omv",
        "Ablation: proposal without OMV caching (old value fetched per PM write)",
    );
    for name in ["echo", "hashmap", "btree", "memcached"] {
        let cmp = results
            .iter()
            .find(|c| c.baseline.workload == name)
            .expect("workload in suite");
        let spec = WorkloadSpec::by_name(name).expect("known workload");
        let cfg = {
            let base = if quick_requested() {
                SimConfig::quick(
                    NvramKind::Pcm,
                    Scheme::Proposal {
                        c_factor: cmp.c_factor,
                    },
                )
            } else {
                SimConfig::paper(
                    NvramKind::Pcm,
                    Scheme::Proposal {
                        c_factor: cmp.c_factor,
                    },
                )
            };
            SimConfig {
                force_omv_off: true,
                ..base
            }
        };
        let no_omv = Simulator::run_workload(spec, cfg, SUITE_SEED);
        let with_omv = cmp.normalized_performance();
        let without = no_omv.ops_per_ns() / cmp.baseline.ops_per_ns();
        e.row(
            name,
            "OMV avoids a 100% write read-back",
            format!("with OMV {with_omv:.4}, without {without:.4}"),
        );
    }
    e.note("Without OMV caching every persistent write pays an extra read; the LLC's 98%+ OMV service rate eliminates nearly all of it.");
    e
}
