//! §V-B: boot-time scrub — functional demonstration plus the paper's
//! scrub-time arithmetic.

use pmck_core::{ChipkillConfig, ChipkillMemory};
use pmck_rt::rng::StdRng;

use crate::report::Experiment;

/// Time to stream `bytes` of data (plus ECC) over a DDR4-2400 channel
/// (19.2 GB/s peak), in seconds.
fn stream_seconds(bytes: f64) -> f64 {
    let bw = 2400e6 * 8.0; // bytes/s on a 64-bit channel
    bytes * 1.27 / bw // data + 27% ECC
}

/// Regenerates §V-B: scrubbing 1 TB per channel takes ~1.5 minutes, and a
/// functional scrub of an injected-error rank recovers everything.
pub fn run() -> Experiment {
    let mut e = Experiment::new("scrub", "§V-B: boot-time scrub");
    let secs = stream_seconds(1e12);
    e.row(
        "scrub 1 TB channel",
        "< 1.5 minutes",
        format!("{:.1} s streaming estimate", secs),
    );

    // Functional check: inject boot-level errors, scrub, verify.
    let mut rng = StdRng::seed_from_u64(11);
    let mut mem = ChipkillMemory::new(512, ChipkillConfig::default());
    let blocks: Vec<[u8; 64]> = (0..mem.num_blocks())
        .map(|a| {
            let mut b = [0u8; 64];
            for (i, x) in b.iter_mut().enumerate() {
                *x = (a as u8).wrapping_mul(41) ^ (i as u8);
            }
            mem.write_block(a, &b).unwrap();
            b
        })
        .collect();
    let injected = mem.inject_bit_errors(1e-3, &mut rng);
    let report = mem.boot_scrub().expect("scrub succeeds");
    let intact = blocks
        .iter()
        .enumerate()
        .all(|(a, b)| mem.read_block(a as u64).unwrap().data == *b);
    e.row(
        "functional scrub @ 1e-3 (512 blocks)",
        "all data survives",
        format!(
            "{} bits injected, {} corrected, data intact: {intact}",
            injected, report.bits_corrected
        ),
    );
    e.row(
        "post-scrub consistency",
        "fully consistent",
        mem.verify_consistent().to_string(),
    );
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn scrub_time_under_90s() {
        let e = super::run();
        let secs: f64 = e.rows[0]
            .measured
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(secs < 90.0, "{secs}");
        assert!(e.rows[1].measured.contains("intact: true"));
        assert_eq!(e.rows[2].measured, "true");
    }
}
