//! Figure 3 / §IV: commercial-Flash BCH configurations and the
//! storage-style total cost.

use pmck_analysis::flash::FLASH_ECC_TABLE;
use pmck_bch::BchCode;

use crate::report::{pct, Experiment};

/// Regenerates Figure 3: Flash VLEWs over 512 B, their storage overheads,
/// and §IV's 27% total for 41-bit-EC plus a parity chip. Also verifies
/// the codec actually constructs and round-trips each configuration.
pub fn run() -> Experiment {
    let mut e = Experiment::new("fig03", "Figure 3: bit-error-correcting ECC in Flash");
    for entry in FLASH_ECC_TABLE {
        let constructed = BchCode::flash512(entry.t).is_ok();
        e.row(
            entry.device,
            format!("t={} over 512 B", entry.t),
            format!(
                "{} code bits, {} ECC{}",
                entry.code_bits(),
                pct(entry.ecc_overhead(), 1),
                if constructed { "" } else { " (codec failed!)" }
            ),
        );
    }
    let mlc41 = FLASH_ECC_TABLE[5];
    e.row(
        "41-bit-EC + parity chip (§IV)",
        "13% + 1/8·(1+13%) = 27%",
        pct(mlc41.total_overhead_with_parity(), 1),
    );
    e.note("Longer words give strong correction cheaply — the storage-system insight the proposal borrows.");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn total_is_27_percent() {
        let e = super::run();
        let last = e.rows.last().unwrap();
        assert!(last.measured.starts_with("27."), "{}", last.measured);
    }
}
