//! Figure 7: distribution of bit errors per 64 B request at RBER 2·10⁻⁴
//! — analytic binomial plus a Monte-Carlo overlay from the injector.

use pmck_analysis::prob::error_count_distribution;
use pmck_analysis::RUNTIME_RBER_PCM_HOURLY;
use pmck_nvram::BitErrorInjector;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{sci, Experiment};

/// Regenerates Figure 7 and the §V-C threshold argument (>99.98% of
/// accesses carry ≤2 errors).
pub fn run() -> Experiment {
    let p = RUNTIME_RBER_PCM_HOURLY;
    let n_bits = 512;
    let dist = error_count_distribution(n_bits, p, 5);

    // Monte-Carlo overlay.
    let trials = 400_000u64;
    let inj = BitErrorInjector::new(p);
    let mut rng = StdRng::seed_from_u64(7);
    let mut counts = [0u64; 7];
    for _ in 0..trials {
        let k = inj.sample_positions(n_bits, &mut rng).len().min(6);
        counts[k] += 1;
    }

    let mut e = Experiment::new(
        "fig07",
        "Figure 7: #bit errors per 64 B request @ RBER 2e-4",
    );
    for k in 0..=5usize {
        let mc = counts[k] as f64 / trials as f64;
        e.row(
            format!("{k} errors"),
            format!("analytic {}", sci(dist[k])),
            format!("Monte-Carlo {}", sci(mc)),
        );
    }
    let le2 = dist[0] + dist[1] + dist[2];
    e.row("≤2 errors", ">99.98%", format!("{:.4}%", le2 * 100.0));
    e.note("The ≤2 mass justifies the runtime acceptance threshold of 2 (§V-C).");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn le2_above_9998() {
        let e = super::run();
        let r = e.rows.iter().find(|r| r.label == "≤2 errors").unwrap();
        let v: f64 = r.measured.trim_end_matches('%').parse().unwrap();
        assert!(v > 99.98);
    }
}
