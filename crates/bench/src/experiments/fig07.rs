//! Figure 7: distribution of bit errors per 64 B request at RBER 2·10⁻⁴
//! — analytic binomial plus a Monte-Carlo overlay from the injector.

use pmck_analysis::prob::error_count_distribution;
use pmck_analysis::RUNTIME_RBER_PCM_HOURLY;
use pmck_nvram::BitErrorInjector;
use pmck_rt::par;

use crate::report::{sci, Experiment};

/// Monte-Carlo histogram of bit-error counts per 512-bit request (counts
/// of 6 and above share the last bucket), run on `workers` threads.
///
/// Chunked through [`par::mc_chunks`], so the histogram is bit-identical
/// for any worker count.
pub fn monte_carlo_counts(trials: u64, rber: f64, workers: usize) -> [u64; 7] {
    let n_bits = 512;
    let inj = BitErrorInjector::new(rber);
    let partials = par::mc_chunks(trials, 20_000, workers, 7, |rng, n| {
        let mut counts = [0u64; 7];
        for _ in 0..n {
            let k = inj.sample_positions(n_bits, rng).len().min(6);
            counts[k] += 1;
        }
        counts
    });
    let mut counts = [0u64; 7];
    for part in partials {
        for (total, c) in counts.iter_mut().zip(part) {
            *total += c;
        }
    }
    counts
}

/// Regenerates Figure 7 and the §V-C threshold argument (>99.98% of
/// accesses carry ≤2 errors).
pub fn run() -> Experiment {
    run_with_workers(par::default_workers())
}

/// [`run`] with an explicit worker count; the report is identical for
/// every choice (see the determinism test below).
pub fn run_with_workers(workers: usize) -> Experiment {
    let p = RUNTIME_RBER_PCM_HOURLY;
    let n_bits = 512;
    let dist = error_count_distribution(n_bits, p, 5);

    // Monte-Carlo overlay.
    let trials = 400_000u64;
    let counts = monte_carlo_counts(trials, p, workers);

    let mut e = Experiment::new(
        "fig07",
        "Figure 7: #bit errors per 64 B request @ RBER 2e-4",
    );
    for k in 0..=5usize {
        let mc = counts[k] as f64 / trials as f64;
        e.row(
            format!("{k} errors"),
            format!("analytic {}", sci(dist[k])),
            format!("Monte-Carlo {}", sci(mc)),
        );
    }
    let le2 = dist[0] + dist[1] + dist[2];
    e.row("≤2 errors", ">99.98%", format!("{:.4}%", le2 * 100.0));
    e.note("The ≤2 mass justifies the runtime acceptance threshold of 2 (§V-C).");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn le2_above_9998() {
        let e = super::run();
        let r = e.rows.iter().find(|r| r.label == "≤2 errors").unwrap();
        let v: f64 = r.measured.trim_end_matches('%').parse().unwrap();
        assert!(v > 99.98);
    }

    #[test]
    fn report_identical_across_worker_counts() {
        let one = super::run_with_workers(1).to_json().dump();
        assert_eq!(one, super::run_with_workers(2).to_json().dump());
        assert_eq!(one, super::run_with_workers(8).to_json().dump());
    }
}
