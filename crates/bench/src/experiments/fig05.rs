//! Figure 5: read/write bandwidth overheads of naive VLEW protection.

use pmck_analysis::bandwidth::{
    fraction_erroneous_accesses, naive_vlew_read_overhead, refresh_scrub_overhead, VlewGeometry,
    WriteScheme,
};
use pmck_analysis::{RUNTIME_RBER_PCM_HOURLY, RUNTIME_RBER_RERAM};

use crate::report::{pct, Experiment};

/// Regenerates Figure 5: the bandwidth cliffs that motivate the design —
/// 140–360% read overhead and 200–400% write overhead for VLEWs alone.
pub fn run() -> Experiment {
    let g = VlewGeometry::default();
    let mut e = Experiment::new("fig05", "Figure 5: naive-VLEW bandwidth overheads");
    e.row(
        "extra blocks per VLEW correction",
        "32 + 4 − 1 = 35",
        g.extra_blocks_per_correction().to_string(),
    );
    e.row(
        "erroneous accesses @ 7e-5",
        "4%",
        pct(fraction_erroneous_accesses(RUNTIME_RBER_RERAM), 1),
    );
    e.row(
        "erroneous accesses @ 2e-4",
        "10.3%",
        pct(fraction_erroneous_accesses(RUNTIME_RBER_PCM_HOURLY), 1),
    );
    e.row(
        "read overhead @ 7e-5",
        "140%",
        pct(naive_vlew_read_overhead(RUNTIME_RBER_RERAM, g), 0),
    );
    e.row(
        "read overhead @ 2e-4",
        "360%",
        pct(naive_vlew_read_overhead(RUNTIME_RBER_PCM_HOURLY, g), 0),
    );
    for scheme in WriteScheme::ALL {
        e.row(
            scheme.name(),
            match scheme {
                WriteScheme::NaiveVlew => "400%",
                WriteScheme::InChipEncoder => "200%",
                WriteScheme::OmvInLlc => "100%",
                WriteScheme::BitwiseSum => "0%",
            },
            pct(scheme.overhead(), 0),
        );
    }
    e.row(
        "per-second refresh of a 160 GB channel (§IV)",
        "~1000%",
        pct(refresh_scrub_overhead(160e9, 1.0, 19.2e9, 0.27), 0),
    );
    e.note("The write ladder is the §IV-B → §V-D optimization sequence.");
    e
}

#[cfg(test)]
mod tests {
    #[test]
    fn overhead_ladder_is_monotone() {
        let e = super::run();
        let read_hi = e
            .rows
            .iter()
            .find(|r| r.label.contains("read overhead @ 2e-4"))
            .unwrap();
        let v: f64 = read_hi.measured.trim_end_matches('%').parse().unwrap();
        assert!((300.0..420.0).contains(&v), "got {v}");
    }
}
