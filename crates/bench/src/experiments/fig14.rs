//! Figure 14: off-chip memory-access breakdown.

use pmck_sim::NvramKind;

use crate::report::Experiment;
use crate::simsuite::suite;

/// Regenerates Figure 14: PM-read / PM-write / DRAM-read / DRAM-write
/// fractions of off-chip traffic per workload.
pub fn run() -> Experiment {
    let results = suite(NvramKind::ReRam);
    let mut e = Experiment::new("fig14", "Figure 14: off-chip access breakdown");
    for cmp in results {
        let (pr, pw, dr, dw) = cmp.baseline.access_breakdown();
        e.row(
            &cmp.baseline.workload,
            "significant PM traffic",
            format!(
                "PM r {:.0}% / w {:.0}%, DRAM r {:.0}% / w {:.0}%",
                pr * 100.0,
                pw * 100.0,
                dr * 100.0,
                dw * 100.0
            ),
        );
    }
    e.note("All benchmarks significantly exercise persistent memory (the paper's Figure 14 point); WHISPER-style workloads are PM-write heavy, SPLASH-style are PM-read heavy.");
    e
}
