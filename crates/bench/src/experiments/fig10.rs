//! Figure 10: dirty persistent-memory occupancy of the cache hierarchy.

use pmck_sim::NvramKind;

use crate::report::{pct, Experiment};
use crate::simsuite::{mean, suite};

/// Regenerates Figure 10: the average fraction of cache lines (LLC + L1s)
/// holding dirty PM blocks per workload — the observation (a few percent)
/// that makes OMV preservation cheap.
pub fn run() -> Experiment {
    let results = suite(NvramKind::ReRam);
    let mut e = Experiment::new(
        "fig10",
        "Figure 10: dirty-PM occupancy of the cache hierarchy",
    );
    for cmp in results {
        let paper = match cmp.baseline.workload.as_str() {
            "barnes" => "0.5%",
            _ => "~4% average",
        };
        e.row(
            &cmp.baseline.workload,
            paper,
            pct(cmp.proposal.dirty_pm_avg, 2),
        );
    }
    let avg = mean(results.iter().map(|c| c.proposal.dirty_pm_avg));
    e.row("average", "4%", pct(avg, 2));
    e.note("Dirty PM blocks occupy only a small sliver of cache capacity because persistent-memory applications clean proactively (clwb).");
    e
}
