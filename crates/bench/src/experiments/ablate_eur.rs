//! Ablation: the proposal without EUR coalescing (§V-D's registerfile).

use pmck_sim::{NvramKind, Scheme, SimConfig, Simulator};
use pmck_workloads::WorkloadSpec;

use crate::report::Experiment;
use crate::simsuite::{quick_requested, suite, SUITE_SEED};

/// Reruns a representative subset with the worst-case C = 1 (every PM
/// write updates its VLEW code bits individually), showing what the ECC
/// Update Registerfile's coalescing buys in iso-lifetime write slowing.
pub fn run() -> Experiment {
    let results = suite(NvramKind::Pcm);
    let mut e = Experiment::new(
        "ablate_eur",
        "Ablation: proposal without EUR coalescing (C = 1)",
    );
    for name in ["echo", "hashmap", "btree", "memcached"] {
        let cmp = results
            .iter()
            .find(|c| c.baseline.workload == name)
            .expect("workload in suite");
        let spec = WorkloadSpec::by_name(name).expect("known workload");
        let scheme = Scheme::Proposal { c_factor: 1.0 };
        let cfg = if quick_requested() {
            SimConfig::quick(NvramKind::Pcm, scheme)
        } else {
            SimConfig::paper(NvramKind::Pcm, scheme)
        };
        let no_eur = Simulator::run_workload(spec, cfg, SUITE_SEED);
        let coalesced = cmp.normalized_performance();
        let worst = no_eur.ops_per_ns() / cmp.baseline.ops_per_ns();
        e.row(
            name,
            "coalescing lowers C and thus tWR",
            format!("C={:.2} → {coalesced:.4}; C=1.0 → {worst:.4}", cmp.c_factor),
        );
    }
    e.note("tWR scales as 1 + 4.125·C; the EUR's per-row coalescing keeps C well below 1 for workloads with write locality.");
    e
}
