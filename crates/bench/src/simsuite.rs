//! Shared runner for the simulation-based figures (10, 14–18): one
//! baseline/proposal comparison per workload per NVRAM technology,
//! cached per process so the figure modules can share a single pass.

use std::sync::{Mutex, OnceLock};

use pmck_sim::{run_comparison, ComparisonResult, NvramKind};
use pmck_workloads::WorkloadSpec;

/// The seed used by every suite run (fixed for reproducibility).
pub const SUITE_SEED: u64 = 42;

/// Whether quick mode was requested (`PMCK_QUICK=1` or `--quick`).
pub fn quick_requested() -> bool {
    std::env::var_os("PMCK_QUICK").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--quick")
}

/// One memoised suite run: (nvram, quick, leaked results).
type CachedSuite = (NvramKind, bool, &'static [ComparisonResult]);

/// Runs (or returns the cached) full 16-workload suite for `nvram`.
pub fn suite(nvram: NvramKind) -> &'static [ComparisonResult] {
    static CACHE: OnceLock<Mutex<Vec<CachedSuite>>> = OnceLock::new();
    let quick = quick_requested();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    {
        let guard = cache.lock().expect("suite cache lock");
        if let Some(&(_, _, r)) = guard.iter().find(|(k, q, _)| *k == nvram && *q == quick) {
            return r;
        }
    }
    eprintln!(
        "[simsuite] running 16-workload suite under {} latencies{} …",
        nvram.name(),
        if quick { " (quick)" } else { "" }
    );
    let results: Vec<ComparisonResult> = WorkloadSpec::all()
        .into_iter()
        .map(|spec| {
            eprintln!("[simsuite]   {}", spec.name);
            run_comparison(spec, nvram, SUITE_SEED, quick)
        })
        .collect();
    let leaked: &'static [ComparisonResult] = Box::leak(results.into_boxed_slice());
    cache
        .lock()
        .expect("suite cache lock")
        .push((nvram, quick, leaked));
    leaked
}

/// Geometric-mean helper for normalized performance summaries.
pub fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
