//! Structured experiment reports: paper-reported vs measured values.

use std::fmt::Write as _;

use pmck_rt::json::Json;

/// One row of an experiment: a labelled paper-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// What the row reports (e.g. a workload or a parameter point).
    pub label: String,
    /// The value the paper reports, as prose ("—" when the paper gives
    /// no number for this point).
    pub paper: String,
    /// The value this reproduction measures.
    pub measured: String,
}

impl Row {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Self {
        Row {
            label: label.into(),
            paper: paper.into(),
            measured: measured.into(),
        }
    }
}

/// A regenerated table or figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Stable id (`fig04`, `appendix`, …) matching the binary name.
    pub id: &'static str,
    /// Human title (paper artifact).
    pub title: &'static str,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Interpretation notes: what should match and what is expected to
    /// deviate (substrate differences).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Creates an empty experiment.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        Experiment {
            id,
            title,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn row(
        &mut self,
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> &mut Self {
        self.rows.push(Row::new(label, paper, measured));
        self
    }

    /// Adds an interpretation note.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Prints the experiment to stdout as an aligned text table.
    pub fn print(&self) {
        println!("== {} — {} ==", self.id, self.title);
        let w1 = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(["point".len()])
            .max()
            .unwrap_or(8);
        let w2 = self
            .rows
            .iter()
            .map(|r| r.paper.len())
            .chain(["paper".len()])
            .max()
            .unwrap_or(8);
        println!("{:<w1$}  {:<w2$}  measured", "point", "paper");
        for r in &self.rows {
            println!("{:<w1$}  {:<w2$}  {}", r.label, r.paper, r.measured);
        }
        for n in &self.notes {
            println!("note: {n}");
        }
        println!();
    }

    /// Renders the experiment as a JSON document.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::object()
                    .with("label", r.label.as_str())
                    .with("paper", r.paper.as_str())
                    .with("measured", r.measured.as_str())
            })
            .collect();
        let notes = self.notes.iter().map(|n| Json::from(n.as_str())).collect();
        Json::object()
            .with("id", self.id)
            .with("title", self.title)
            .with("rows", Json::Arr(rows))
            .with("notes", Json::Arr(notes))
    }

    /// Renders the experiment as a Markdown section (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### `{}` — {}\n", self.id, self.title);
        let _ = writeln!(s, "| point | paper | measured |");
        let _ = writeln!(s, "|---|---|---|");
        for r in &self.rows {
            let _ = writeln!(s, "| {} | {} | {} |", r.label, r.paper, r.measured);
        }
        if !self.notes.is_empty() {
            let _ = writeln!(s);
            for n in &self.notes {
                let _ = writeln!(s, "> {n}");
            }
        }
        let _ = writeln!(s);
        s
    }
}

/// Formats a fraction as a percentage with `digits` decimals.
pub fn pct(x: f64, digits: usize) -> String {
    format!("{:.digits$}%", x * 100.0)
}

/// Formats a small probability in scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.1e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut e = Experiment::new("figX", "demo");
        e.row("a", "1%", "1.1%").note("shape matches");
        let md = e.to_markdown();
        assert!(md.contains("| a | 1% | 1.1% |"));
        assert!(md.contains("> shape matches"));
        e.print();
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.271, 1), "27.1%");
        assert_eq!(sci(3.3e-22), "3.3e-22");
    }
}
