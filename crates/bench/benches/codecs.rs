//! Criterion benchmarks for the ECC codecs: the VLEW BCH code and the
//! per-block RS code, across the paths the memory controller exercises.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pmck_bch::{BchCode, BitPoly};
use pmck_rs::RsCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_bch(c: &mut Criterion) {
    let code = BchCode::vlew();
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u8> = (0..256).map(|_| rng.gen()).collect();
    let clean = code.encode_bytes(&data);

    let mut g = c.benchmark_group("bch_vlew");
    g.throughput(Throughput::Bytes(256));
    g.bench_function("encode_256B", |b| {
        b.iter(|| code.encode_bytes(std::hint::black_box(&data)))
    });
    g.bench_function("syndromes_clean", |b| {
        b.iter(|| code.syndromes(std::hint::black_box(&clean)))
    });
    for nerr in [1usize, 5, 22] {
        let mut word = clean.clone();
        let mut pos = std::collections::BTreeSet::new();
        while pos.len() < nerr {
            pos.insert(rng.gen_range(0..code.len()));
        }
        for &p in &pos {
            word.flip(p);
        }
        g.bench_function(format!("decode_{nerr}err"), |b| {
            b.iter(|| {
                let mut w = word.clone();
                code.decode(&mut w).expect("correctable")
            })
        });
    }
    g.finish();

    // Sparse delta parity: the write path's per-write cost.
    let mut delta = BitPoly::zero(code.data_bits());
    for i in 0..64 {
        delta.set(512 + i, true);
    }
    c.bench_function("bch_vlew/parity_sparse_delta", |b| {
        b.iter(|| code.parity(std::hint::black_box(&delta)))
    });
}

fn bench_rs(c: &mut Criterion) {
    let code = RsCode::per_block();
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    let clean = code.encode(&data);

    let mut g = c.benchmark_group("rs_per_block");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("encode_64B", |b| {
        b.iter(|| code.encode(std::hint::black_box(&data)))
    });
    g.bench_function("syndromes_clean", |b| {
        b.iter(|| code.syndromes(std::hint::black_box(&clean)))
    });
    for nerr in [1usize, 2, 4] {
        let mut word = clean.clone();
        for k in 0..nerr {
            word[k * 17] ^= 0x5A;
        }
        g.bench_function(format!("threshold_decode_{nerr}err"), |b| {
            b.iter(|| {
                let mut w = word.clone();
                code.decode_with_threshold(&mut w, 2).expect("length ok")
            })
        });
    }
    // Chip-failure erasure correction (8 erasures).
    let mut erased = clean.clone();
    for p in 16..24 {
        erased[p] = 0xFF;
    }
    let erasures: Vec<usize> = (16..24).collect();
    g.bench_function("erasure_decode_chipkill", |b| {
        b.iter(|| {
            let mut w = erased.clone();
            code.decode_with_erasures(&mut w, &erasures).expect("ok")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bch, bench_rs);
criterion_main!(benches);
