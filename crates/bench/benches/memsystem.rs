//! Criterion benchmarks for the memory-system and cache simulators.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pmck_cachesim::{Hierarchy, HierarchyConfig};
use pmck_memsim::{MemConfig, MemRequest, MemoryController, NvramTiming, RankKind, NS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_controller(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let reqs: Vec<MemRequest> = (0..4096u64)
        .map(|i| {
            let addr = rng.gen_range(0..1u64 << 20);
            let rank = if rng.gen_bool(0.5) {
                RankKind::Nvram
            } else {
                RankKind::Dram
            };
            if rng.gen_bool(0.35) {
                MemRequest::write(i, addr, rank)
            } else {
                MemRequest::read(i, addr, rank)
            }
        })
        .collect();
    let mut g = c.benchmark_group("memsim");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    g.bench_function("mixed_4k_requests", |b| {
        b.iter(|| {
            let mut mc = MemoryController::new(MemConfig::paper_hybrid(NvramTiming::reram()));
            let mut t = 0u64;
            for chunk in reqs.chunks(32) {
                for r in chunk {
                    while mc.enqueue(*r).is_err() {
                        t += 1_000 * NS;
                        mc.advance_to(t);
                        let _ = mc.drain_completions();
                    }
                }
                t += 400 * NS;
                mc.advance_to(t);
                let _ = mc.drain_completions();
            }
            while mc.pending() > 0 {
                t += 10_000 * NS;
                mc.advance_to(t);
                let _ = mc.drain_completions();
            }
            mc.stats().reads_for(RankKind::Dram)
        })
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let addrs: Vec<u64> = (0..8192).map(|_| rng.gen_range(0..200_000u64)).collect();
    let mut g = c.benchmark_group("cachesim");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("load_store_clwb_cycle", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(HierarchyConfig::paper(true));
            for (i, &a) in addrs.iter().enumerate() {
                let core = i % 4;
                h.load(core, a, true);
                if i % 3 == 0 {
                    h.store(core, a, true);
                    h.clwb(core, a, true);
                }
            }
            h.llc_stats().omv_hits
        })
    });
    g.finish();
}

criterion_group!(benches, bench_controller, bench_hierarchy);
criterion_main!(benches);
