//! Criterion benchmarks for the end-to-end chipkill engine: the runtime
//! read path at its three tiers, both write paths, and the boot scrub.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pmck_core::{ChipkillConfig, ChipkillMemory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeded_rank(blocks: u64, seed: u64) -> ChipkillMemory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = ChipkillMemory::new(blocks, ChipkillConfig::default());
    for a in 0..mem.num_blocks() {
        let mut b = [0u8; 64];
        rng.fill(&mut b[..]);
        mem.write_block(a, &b).unwrap();
    }
    mem
}

fn bench_read_path(c: &mut Criterion) {
    let clean = seeded_rank(256, 5);
    let mut g = c.benchmark_group("chipkill_read");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("clean_block", |b| {
        let mut mem = clean.clone();
        b.iter(|| mem.read_block(17).expect("clean"))
    });

    // Runtime RBER: mostly clean, occasional RS corrections.
    let mut rng = StdRng::seed_from_u64(6);
    let mut runtime = clean.clone();
    runtime.inject_bit_errors(2e-4, &mut rng);
    g.bench_function("runtime_rber_2e-4", |b| {
        let mut mem = runtime.clone();
        let mut a = 0;
        b.iter(|| {
            a = (a + 1) % mem.num_blocks();
            mem.read_block(a).expect("correctable")
        })
    });

    // Boot-level RBER: frequent RS rejections + VLEW fallbacks.
    let mut boot = clean.clone();
    boot.inject_bit_errors(1e-3, &mut rng);
    g.bench_function("boot_rber_1e-3_no_scrub", |b| {
        let mut mem = boot.clone();
        let mut a = 0;
        b.iter(|| {
            a = (a + 1) % mem.num_blocks();
            mem.read_block(a).expect("correctable")
        })
    });
    g.finish();
}

fn bench_write_paths(c: &mut Criterion) {
    let clean = seeded_rank(256, 7);
    let block = [0xA5u8; 64];
    let mut g = c.benchmark_group("chipkill_write");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("conventional", |b| {
        let mut mem = clean.clone();
        let mut a = 0;
        b.iter(|| {
            a = (a + 1) % mem.num_blocks();
            mem.write_block(a, &block).expect("in range")
        })
    });
    g.bench_function("bitwise_sum", |b| {
        let mut mem = clean.clone();
        let mut a = 0;
        b.iter(|| {
            a = (a + 1) % mem.num_blocks();
            mem.write_block_sum(a, &block).expect("in range")
        })
    });
    g.finish();
}

fn bench_boot_scrub(c: &mut Criterion) {
    let clean = seeded_rank(128, 8);
    let mut rng = StdRng::seed_from_u64(9);
    let mut dirty = clean.clone();
    dirty.inject_bit_errors(1e-3, &mut rng);
    let mut g = c.benchmark_group("boot_scrub");
    g.throughput(Throughput::Bytes(128 * 64));
    g.sample_size(10);
    g.bench_function("scrub_128_blocks_1e-3", |b| {
        b.iter(|| {
            let mut mem = dirty.clone();
            mem.boot_scrub().expect("scrub succeeds")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_read_path, bench_write_paths, bench_boot_scrub);
criterion_main!(benches);
