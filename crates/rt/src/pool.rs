//! A pinned worker pool: one persistent thread per worker, each owning a
//! long-lived state, fed by per-worker job queues and drained by batched,
//! in-order collection.
//!
//! [`crate::par`] spawns scoped threads per call, which suits one-shot
//! Monte-Carlo campaigns but not a service: a sharded memory front end
//! needs its per-shard state (engine scratch buffers, RNG streams) to
//! live across batches on a fixed worker, so decodes stay allocation-free
//! and deterministic. [`PinnedPool`] provides that shape:
//!
//! * `stage(worker, job)` queues work for a specific worker (no locking);
//! * `run(collect)` dispatches every staged queue to its worker, waits,
//!   and hands results back **in worker order, then job order** — so
//!   output depends only on what was staged, never on thread timing;
//! * job and result buffers circulate between the caller and the workers
//!   by `Vec` swaps, so the steady state allocates nothing.
//!
//! A worker panic poisons the pool: the in-flight `run` and every later
//! call reports [`PoolError::WorkerPanicked`] instead of hanging.
//!
//! [`ShardPool`] is the lock-free streaming successor: the same pinned
//! per-worker state, but jobs travel through per-`(client, worker)`
//! SPSC rings ([`crate::ring`]) and completions stream back out of band,
//! so a producer never takes a lock or waits for a whole batch barrier.
//! `PinnedPool` stays as the batched baseline (and as the measuring
//! stick for the saturation benchmark).

use std::sync::atomic::{fence, AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::ring::{spsc, Parker, SpscConsumer, SpscProducer, Unparker};

/// Why the pool could not serve a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The pool was shut down.
    Closed,
    /// A worker thread panicked; the pool is permanently closed.
    WorkerPanicked,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Closed => write!(f, "worker pool is shut down"),
            PoolError::WorkerPanicked => write!(f, "worker thread panicked"),
        }
    }
}

impl std::error::Error for PoolError {}

/// The handshake cell between the caller and one worker.
struct Mailbox<J, R> {
    inbox: Vec<J>,
    outbox: Vec<R>,
    has_work: bool,
    done: bool,
    closed: bool,
    panicked: bool,
}

struct Slot<S, J, R> {
    mailbox: Mutex<Mailbox<J, R>>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// The worker locks the state only while processing a batch, so
    /// between batches [`PinnedPool::with_state`] can inspect it.
    state: Mutex<S>,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned mutex means a worker panicked mid-batch; the pool
    // already reports that via the `panicked` flag, and the state is
    // still wanted for post-mortem stats.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Flags the pool closed if the worker unwinds, so waiting callers get
/// [`PoolError::WorkerPanicked`] instead of a deadlock.
struct PanicGuard<'a, S, J, R> {
    slot: &'a Slot<S, J, R>,
}

impl<S, J, R> Drop for PanicGuard<'_, S, J, R> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut mb = lock_ignore_poison(&self.slot.mailbox);
            mb.closed = true;
            mb.panicked = true;
            self.slot.done_cv.notify_all();
        }
    }
}

/// A pool of persistent worker threads with pinned per-worker state.
///
/// # Examples
///
/// ```
/// use pmck_rt::pool::PinnedPool;
///
/// // Two workers, each owning a counter; jobs add to it.
/// let mut pool = PinnedPool::new(vec![0u64, 100u64], |_, state, job: u64| {
///     *state += job;
///     *state
/// });
/// pool.stage(0, 5);
/// pool.stage(1, 7);
/// let mut out = Vec::new();
/// pool.run(|worker, r| out.push((worker, r))).unwrap();
/// assert_eq!(out, vec![(0, 5), (1, 107)]);
/// ```
pub struct PinnedPool<S, J, R> {
    slots: Vec<Arc<Slot<S, J, R>>>,
    handles: Vec<Option<JoinHandle<()>>>,
    staging: Vec<Vec<J>>,
    dispatched: Vec<bool>,
    gather: Vec<R>,
    closed: bool,
}

impl<S, J, R> PinnedPool<S, J, R>
where
    S: Send + 'static,
    J: Send + 'static,
    R: Send + 'static,
{
    /// Spawns one worker per element of `states`; worker `w` owns
    /// `states[w]` for the pool's lifetime and executes every staged job
    /// as `f(w, &mut state, job)`.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn new<F>(states: Vec<S>, f: F) -> Self
    where
        F: Fn(usize, &mut S, J) -> R + Send + Sync + 'static,
    {
        assert!(!states.is_empty(), "pool needs at least one worker");
        let f = Arc::new(f);
        let mut slots = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for (w, state) in states.into_iter().enumerate() {
            let slot = Arc::new(Slot {
                mailbox: Mutex::new(Mailbox {
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                    has_work: false,
                    done: false,
                    closed: false,
                    panicked: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                state: Mutex::new(state),
            });
            let worker_slot = Arc::clone(&slot);
            let worker_f = Arc::clone(&f);
            handles.push(Some(std::thread::spawn(move || {
                worker_loop(w, &worker_slot, &*worker_f);
            })));
            slots.push(slot);
        }
        let n = slots.len();
        PinnedPool {
            slots,
            handles,
            staging: (0..n).map(|_| Vec::new()).collect(),
            dispatched: vec![false; n],
            gather: Vec::new(),
            closed: false,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Queues `job` for `worker`'s next [`PinnedPool::run`]. Cheap: no
    /// locks, no cross-thread traffic until the batch is dispatched.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn stage(&mut self, worker: usize, job: J) {
        self.staging[worker].push(job);
    }

    /// Dispatches every staged queue to its worker, waits for all of
    /// them, and feeds each result to `collect(worker, result)` — workers
    /// in index order, each worker's results in staged order. Workers
    /// with nothing staged are not woken.
    ///
    /// # Errors
    ///
    /// [`PoolError::Closed`] after [`PinnedPool::shutdown`];
    /// [`PoolError::WorkerPanicked`] if any worker died (staged jobs are
    /// dropped). Either way the pool rejects all further batches.
    pub fn run(&mut self, mut collect: impl FnMut(usize, R)) -> Result<(), PoolError> {
        if self.closed {
            return Err(PoolError::Closed);
        }
        // Dispatch phase: hand each non-empty staging queue to its
        // worker by Vec swap (the worker returns the drained queue, so
        // capacity circulates and the steady state never allocates).
        let mut first_failure = None;
        for (w, slot) in self.slots.iter().enumerate() {
            self.dispatched[w] = false;
            if self.staging[w].is_empty() {
                continue;
            }
            let mut mb = lock_ignore_poison(&slot.mailbox);
            if mb.closed {
                first_failure.get_or_insert(fail_kind(&mb));
                self.staging[w].clear();
                continue;
            }
            std::mem::swap(&mut mb.inbox, &mut self.staging[w]);
            mb.has_work = true;
            mb.done = false;
            slot.work_cv.notify_one();
            self.dispatched[w] = true;
        }
        // Collection phase: wait for dispatched workers in index order
        // so results are deterministic regardless of completion order.
        for (w, slot) in self.slots.iter().enumerate() {
            if !self.dispatched[w] {
                continue;
            }
            let mut mb = lock_ignore_poison(&slot.mailbox);
            while !mb.done && !mb.closed {
                mb = lock_ignore_poison_wait(&slot.done_cv, mb);
            }
            if mb.closed && !mb.done {
                first_failure.get_or_insert(fail_kind(&mb));
                continue;
            }
            mb.done = false;
            std::mem::swap(&mut mb.outbox, &mut self.gather);
            drop(mb);
            for r in self.gather.drain(..) {
                collect(w, r);
            }
        }
        match first_failure {
            None => Ok(()),
            Some(e) => {
                // A dead worker cannot be restarted; poison the pool so
                // callers see a consistent error from now on.
                self.closed = true;
                Err(e)
            }
        }
    }

    /// Runs `f` against `worker`'s pinned state. Blocks while that
    /// worker is mid-batch; between batches the state is idle and the
    /// call is immediate. Works even after shutdown or a panic (for
    /// post-mortem stats), as long as the state itself survived.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn with_state<T>(&self, worker: usize, f: impl FnOnce(&mut S) -> T) -> T {
        f(&mut lock_ignore_poison(&self.slots[worker].state))
    }

    /// Stops all workers and joins them. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.closed = true;
        for slot in &self.slots {
            let mut mb = lock_ignore_poison(&slot.mailbox);
            mb.closed = true;
            slot.work_cv.notify_all();
        }
        for handle in &mut self.handles {
            if let Some(h) = handle.take() {
                // A worker that panicked already reported through the
                // mailbox flags; join just reaps the thread.
                let _ = h.join();
            }
        }
    }
}

fn fail_kind<J, R>(mb: &Mailbox<J, R>) -> PoolError {
    if mb.panicked {
        PoolError::WorkerPanicked
    } else {
        PoolError::Closed
    }
}

fn lock_ignore_poison_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop<S, J, R, F>(w: usize, slot: &Slot<S, J, R>, f: &F)
where
    F: Fn(usize, &mut S, J) -> R,
{
    let guard = PanicGuard { slot };
    let mut jobs: Vec<J> = Vec::new();
    let mut results: Vec<R> = Vec::new();
    loop {
        {
            let mut mb = lock_ignore_poison(&slot.mailbox);
            while !mb.has_work && !mb.closed {
                mb = lock_ignore_poison_wait(&slot.work_cv, mb);
            }
            if mb.closed {
                break;
            }
            mb.has_work = false;
            std::mem::swap(&mut mb.inbox, &mut jobs);
        }
        {
            let mut state = lock_ignore_poison(&slot.state);
            for job in jobs.drain(..) {
                results.push(f(w, &mut state, job));
            }
        }
        {
            let mut mb = lock_ignore_poison(&slot.mailbox);
            // Return the drained job queue and publish the results; the
            // caller swaps both back out, so the buffers circulate.
            std::mem::swap(&mut mb.inbox, &mut jobs);
            std::mem::swap(&mut mb.outbox, &mut results);
            mb.done = true;
            slot.done_cv.notify_all();
        }
    }
    drop(guard);
}

impl<S, J, R> Drop for PinnedPool<S, J, R> {
    fn drop(&mut self) {
        self.closed = true;
        for slot in &self.slots {
            let mut mb = lock_ignore_poison(&slot.mailbox);
            mb.closed = true;
            slot.work_cv.notify_all();
        }
        for handle in &mut self.handles {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ShardPool: the lock-free streaming pool
// ---------------------------------------------------------------------------

/// Why a non-blocking send could not be accepted. The job always comes
/// back to the caller, so nothing is silently dropped.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<J> {
    /// The destination worker's submission ring is full — backpressure.
    Full(J),
    /// The pool was shut down; no new work is accepted.
    Closed(J),
    /// A worker panicked; the pool is poisoned.
    WorkerLost(J),
}

impl<J> TrySendError<J> {
    /// Recovers the job that was not sent.
    pub fn into_job(self) -> J {
        match self {
            TrySendError::Full(j) | TrySendError::Closed(j) | TrySendError::WorkerLost(j) => j,
        }
    }

    /// The pool-level failure, if this was not mere backpressure.
    pub fn pool_error(&self) -> Option<PoolError> {
        match self {
            TrySendError::Full(_) => None,
            TrySendError::Closed(_) => Some(PoolError::Closed),
            TrySendError::WorkerLost(_) => Some(PoolError::WorkerPanicked),
        }
    }
}

/// One peer's sleep handshake: `maybe_sleeping` is the announce flag of
/// the spin-then-park protocol ([`crate::ring::Parker`] docs), and the
/// unparker posts the wake token after a counterpart makes progress.
struct PeerFlag {
    maybe_sleeping: AtomicBool,
    unparker: Unparker,
}

impl PeerFlag {
    /// Wakes the peer if (and only if) it announced it may sleep.
    /// Call *after* a `fence(SeqCst)` that orders the progress-making
    /// ring operation before the flag load.
    fn wake_if_sleeping(&self) {
        if self.maybe_sleeping.load(Ordering::Relaxed)
            && self.maybe_sleeping.swap(false, Ordering::Relaxed)
        {
            self.unparker.unpark();
        }
    }

    fn wake_unconditionally(&self) {
        self.maybe_sleeping.store(false, Ordering::Relaxed);
        self.unparker.unpark();
    }
}

struct StreamShared {
    /// Set by `shutdown` (and by a panicking worker): no new submissions
    /// are accepted, workers drain what is queued and exit.
    closing: AtomicBool,
    /// Set only when a worker panicked: the pool is poisoned and
    /// outstanding work may never complete.
    dead: AtomicBool,
    /// Per-worker sleep handshakes (indexed by shard).
    workers: Box<[PeerFlag]>,
    /// Per-client sleep handshakes (indexed by lane).
    clients: Box<[PeerFlag]>,
}

/// Marks the pool poisoned if the worker unwinds, and wakes every peer
/// either way so nobody sleeps through the exit.
struct StreamPanicGuard {
    shared: Arc<StreamShared>,
}

impl Drop for StreamPanicGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.dead.store(true, Ordering::SeqCst);
            self.shared.closing.store(true, Ordering::SeqCst);
        }
        for w in self.shared.workers.iter() {
            w.wake_unconditionally();
        }
        for c in self.shared.clients.iter() {
            c.wake_unconditionally();
        }
    }
}

/// A worker's view of one client lane.
struct WorkerLane<J, R> {
    sub: SpscConsumer<J>,
    comp: SpscProducer<R>,
}

/// How many times an idle worker retries before yielding, and how many
/// yields before parking. Kept short: the target host may have fewer
/// cores than workers, where spinning only steals the producer's time.
const IDLE_SPINS: u32 = 64;
const IDLE_YIELDS: u32 = 16;

/// A lock-free streaming worker pool: one persistent thread per worker
/// (shard), each owning a long-lived state, fed by per-`(client,
/// worker)` SPSC submission rings and answering through matching
/// completion rings.
///
/// Compared to [`PinnedPool`]:
///
/// * submission is a single ring push (no `Mutex`, no `Condvar` wake in
///   the steady state — workers only park after an idle spin budget);
/// * completions stream back as soon as each job finishes; there is no
///   whole-batch barrier, and different clients never contend;
/// * backpressure is explicit: [`PoolClient::try_send`] returns
///   [`TrySendError::Full`] instead of blocking.
///
/// **Completion-capacity contract:** the caller sizes the completion
/// rings (`completion_depth`) at least as large as the maximum number of
/// results it can leave unclaimed per `(client, worker)` pair. The
/// service layer guarantees this with its ticket window, so a worker's
/// completion push never has to wait.
///
/// On [`ShardPool::shutdown`], workers first drain every queued job and
/// push its completion, then exit; queued work is completed, not
/// dropped. A worker panic instead poisons the pool: every client wakes
/// and sees [`PoolError::WorkerPanicked`].
///
/// # Examples
///
/// ```
/// use pmck_rt::pool::ShardPool;
///
/// let (pool, mut clients) =
///     ShardPool::with_clients(vec![0u64, 100], 1, 8, 8, |_, state, job: u64| {
///         *state += job;
///         *state
///     });
/// let mut client = clients.remove(0);
/// client.try_send(1, 7).unwrap();
/// let (shard, result) = loop {
///     if let Some(got) = client.try_recv() {
///         break got;
///     }
/// };
/// assert_eq!((shard, result), (1, 107));
/// drop(pool);
/// ```
pub struct ShardPool<S> {
    shared: Arc<StreamShared>,
    states: Vec<Arc<Mutex<S>>>,
    handles: Vec<Option<JoinHandle<()>>>,
}

/// One client's sending/receiving endpoint: a private lane of SPSC
/// rings to every worker. `Send` but not `Clone` — move it to the
/// producer thread that owns it.
pub struct PoolClient<J, R> {
    lane: usize,
    subs: Vec<SpscProducer<J>>,
    comps: Vec<SpscConsumer<R>>,
    parker: Parker,
    shared: Arc<StreamShared>,
    /// Round-robin cursor so `try_recv` drains shards fairly.
    rr: usize,
}

impl<S> ShardPool<S>
where
    S: Send + 'static,
{
    /// Spawns one worker per element of `states` and hands back `lanes`
    /// independent clients. Worker `w` owns `states[w]` and executes
    /// every received job as `f(w, &mut state, job)`; per-lane-per-shard
    /// FIFO order is guaranteed (jobs from one client reach one shard in
    /// send order, and their completions come back in that order).
    ///
    /// `depth` bounds each submission ring (the backpressure window);
    /// `completion_depth` bounds each completion ring (see the
    /// completion-capacity contract in the type docs). Both round up to
    /// powers of two.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or `lanes` is zero.
    pub fn with_clients<J, R, F>(
        states: Vec<S>,
        lanes: usize,
        depth: usize,
        completion_depth: usize,
        f: F,
    ) -> (Self, Vec<PoolClient<J, R>>)
    where
        J: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &mut S, J) -> R + Send + Sync + 'static,
    {
        assert!(!states.is_empty(), "pool needs at least one worker");
        assert!(lanes > 0, "pool needs at least one client lane");
        let shards = states.len();
        let worker_parkers: Vec<Parker> = (0..shards).map(|_| Parker::new()).collect();
        let client_parkers: Vec<Parker> = (0..lanes).map(|_| Parker::new()).collect();
        let shared = Arc::new(StreamShared {
            closing: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            workers: worker_parkers
                .iter()
                .map(|p| PeerFlag {
                    maybe_sleeping: AtomicBool::new(false),
                    unparker: p.unparker(),
                })
                .collect(),
            clients: client_parkers
                .iter()
                .map(|p| PeerFlag {
                    maybe_sleeping: AtomicBool::new(false),
                    unparker: p.unparker(),
                })
                .collect(),
        });

        // Build the ring matrix: worker_lanes[w][l] pairs with the
        // client halves collected per lane.
        let mut worker_lanes: Vec<Vec<WorkerLane<J, R>>> =
            (0..shards).map(|_| Vec::with_capacity(lanes)).collect();
        let mut client_subs: Vec<Vec<SpscProducer<J>>> =
            (0..lanes).map(|_| Vec::with_capacity(shards)).collect();
        let mut client_comps: Vec<Vec<SpscConsumer<R>>> =
            (0..lanes).map(|_| Vec::with_capacity(shards)).collect();
        for subs in client_subs.iter_mut().zip(client_comps.iter_mut()) {
            let (lane_subs, lane_comps) = subs;
            for shard_lanes in worker_lanes.iter_mut() {
                let (sub_tx, sub_rx) = spsc::<J>(depth);
                let (comp_tx, comp_rx) = spsc::<R>(completion_depth);
                shard_lanes.push(WorkerLane {
                    sub: sub_rx,
                    comp: comp_tx,
                });
                lane_subs.push(sub_tx);
                lane_comps.push(comp_rx);
            }
        }

        let f = Arc::new(f);
        let states: Vec<Arc<Mutex<S>>> = states
            .into_iter()
            .map(|s| Arc::new(Mutex::new(s)))
            .collect();
        let mut handles = Vec::with_capacity(shards);
        for (w, (lanes_for_w, parker)) in worker_lanes.into_iter().zip(worker_parkers).enumerate() {
            let state = Arc::clone(&states[w]);
            let shared = Arc::clone(&shared);
            let f = Arc::clone(&f);
            handles.push(Some(std::thread::spawn(move || {
                stream_worker_loop(w, lanes_for_w, state, parker, shared, &*f);
            })));
        }

        let clients = client_subs
            .into_iter()
            .zip(client_comps)
            .zip(client_parkers)
            .enumerate()
            .map(|(lane, ((subs, comps), parker))| PoolClient {
                lane,
                subs,
                comps,
                parker,
                shared: Arc::clone(&shared),
                rr: 0,
            })
            .collect();

        (
            ShardPool {
                shared,
                states,
                handles,
            },
            clients,
        )
    }
}

impl<S> ShardPool<S> {
    /// Number of workers (shards).
    pub fn workers(&self) -> usize {
        self.states.len()
    }

    /// Runs `f` against `worker`'s pinned state. Blocks while that
    /// worker is mid-burst; between bursts the state is idle and the
    /// call is immediate. Works after shutdown or a panic.
    pub fn with_state<T>(&self, worker: usize, f: impl FnOnce(&mut S) -> T) -> T {
        f(&mut lock_ignore_poison(&self.states[worker]))
    }

    /// Whether a worker panicked and poisoned the pool.
    pub fn is_poisoned(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// Stops accepting new work, lets every worker **drain** its queued
    /// jobs (completions stay claimable from the clients), joins the
    /// workers, and wakes every blocked client. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        for w in self.shared.workers.iter() {
            w.wake_unconditionally();
        }
        for handle in &mut self.handles {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
        for c in self.shared.clients.iter() {
            c.wake_unconditionally();
        }
    }
}

impl<S> Drop for ShardPool<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn stream_worker_loop<S, J, R, F>(
    w: usize,
    mut lanes: Vec<WorkerLane<J, R>>,
    state: Arc<Mutex<S>>,
    parker: Parker,
    shared: Arc<StreamShared>,
    f: &F,
) where
    F: Fn(usize, &mut S, J) -> R,
{
    let _guard = StreamPanicGuard {
        shared: Arc::clone(&shared),
    };
    let mut idle = 0u32;
    loop {
        let mut did = 0usize;
        for (lane_idx, lane) in lanes.iter_mut().enumerate() {
            // Snapshot the burst size so one chatty lane cannot starve
            // the others; `len()` is exact on the consumer side.
            let burst = lane.sub.len();
            if burst == 0 {
                continue;
            }
            {
                let mut st = lock_ignore_poison(&state);
                for _ in 0..burst {
                    let Some(job) = lane.sub.try_pop() else { break };
                    let mut result = f(w, &mut st, job);
                    // The completion ring is sized to the client's
                    // ticket window, so this push succeeds immediately
                    // under the contract; a slow (or gone) client is
                    // tolerated rather than trusted.
                    loop {
                        match lane.comp.try_push(result) {
                            Ok(()) => break,
                            Err(back) => {
                                if lane.comp.is_abandoned() {
                                    break; // client dropped: discard
                                }
                                result = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                    did += 1;
                }
            }
            // Progress was made for this lane: order the ring stores
            // before the flag load (StoreLoad), then wake the client.
            fence(Ordering::SeqCst);
            shared.clients[lane_idx].wake_if_sleeping();
        }
        if did > 0 {
            idle = 0;
            continue;
        }
        if shared.closing.load(Ordering::Acquire) {
            // Drain contract: exit only once every submission ring is
            // empty, so queued jobs complete rather than vanish.
            if lanes.iter_mut().all(|l| l.sub.is_empty()) {
                break;
            }
            continue;
        }
        idle += 1;
        if idle <= IDLE_SPINS {
            std::hint::spin_loop();
            continue;
        }
        if idle <= IDLE_SPINS + IDLE_YIELDS {
            std::thread::yield_now();
            continue;
        }
        // Announce, re-check, park: the announce flag plus the SeqCst
        // fences on both sides close the lost-wakeup race (a client that
        // misses the flag has pushed after our re-check, and we see it).
        shared.workers[w]
            .maybe_sleeping
            .store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if shared.closing.load(Ordering::SeqCst) || lanes.iter_mut().any(|l| !l.sub.is_empty()) {
            shared.workers[w]
                .maybe_sleeping
                .store(false, Ordering::Relaxed);
            idle = 0;
            continue;
        }
        parker.park();
        shared.workers[w]
            .maybe_sleeping
            .store(false, Ordering::Relaxed);
        idle = 0;
    }
}

impl<J, R> PoolClient<J, R> {
    /// Number of workers reachable from this client.
    pub fn shards(&self) -> usize {
        self.subs.len()
    }

    /// This client's lane index.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Free submission slots guaranteed available toward `shard`.
    pub fn free_slots(&mut self, shard: usize) -> usize {
        self.subs[shard].free()
    }

    /// The pool-level failure visible to this client, if any.
    pub fn pool_error(&self) -> Option<PoolError> {
        if self.shared.dead.load(Ordering::Acquire) {
            Some(PoolError::WorkerPanicked)
        } else if self.shared.closing.load(Ordering::Acquire) {
            Some(PoolError::Closed)
        } else {
            None
        }
    }

    /// Sends `job` to `shard` and signals the worker. Never blocks.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] on backpressure (retry after draining
    /// completions or [`PoolClient::wait_progress`]);
    /// [`TrySendError::Closed`]/[`TrySendError::WorkerLost`] once the
    /// pool is shut down or poisoned. The job is always returned.
    pub fn try_send(&mut self, shard: usize, job: J) -> Result<(), TrySendError<J>> {
        self.try_send_quiet(shard, job)?;
        self.signal(shard);
        Ok(())
    }

    /// [`PoolClient::try_send`] without the worker signal — for batched
    /// submission: push a run of jobs, then [`PoolClient::signal`] each
    /// touched shard once.
    pub fn try_send_quiet(&mut self, shard: usize, job: J) -> Result<(), TrySendError<J>> {
        if self.shared.dead.load(Ordering::Acquire) {
            return Err(TrySendError::WorkerLost(job));
        }
        if self.shared.closing.load(Ordering::Acquire) {
            return Err(TrySendError::Closed(job));
        }
        self.subs[shard].try_push(job).map_err(TrySendError::Full)
    }

    /// Wakes `shard`'s worker if it announced it may sleep. Required
    /// after [`PoolClient::try_send_quiet`]; a missed signal is a lost
    /// wakeup.
    pub fn signal(&self, shard: usize) {
        // Order the ring push (Release) before the flag load.
        fence(Ordering::SeqCst);
        self.shared.workers[shard].wake_if_sleeping();
    }

    /// Claims the oldest unclaimed completion from any shard, scanning
    /// round-robin for fairness. Returns `(shard, result)`.
    pub fn try_recv(&mut self) -> Option<(usize, R)> {
        let n = self.comps.len();
        for i in 0..n {
            let s = (self.rr + i) % n;
            if let Some(r) = self.comps[s].try_pop() {
                self.rr = (s + 1) % n;
                return Some((s, r));
            }
        }
        None
    }

    /// Claims the oldest unclaimed completion from one specific shard.
    pub fn try_recv_from(&mut self, shard: usize) -> Option<R> {
        self.comps[shard].try_pop()
    }

    /// Whether any completion is ready to claim right now.
    pub fn has_completions(&mut self) -> bool {
        self.comps.iter_mut().any(|c| !c.is_empty())
    }

    /// Whether the worker side is gone (threads exited after shutdown or
    /// panic) **and** every completion has been claimed — after this, no
    /// outstanding job will ever complete.
    pub fn workers_gone(&mut self) -> bool {
        self.comps
            .iter_mut()
            .all(|c| c.is_abandoned() && c.is_empty())
    }

    /// Blocks (spin, then yield, then park) until progress is plausible:
    /// a completion is claimable, `watch_shard`'s submission ring has a
    /// free slot, or the pool is closing/poisoned. May return
    /// spuriously; callers loop on their real condition.
    pub fn wait_progress(&mut self, watch_shard: Option<usize>) {
        for _ in 0..IDLE_SPINS {
            if self.progress_ready(watch_shard) {
                return;
            }
            std::hint::spin_loop();
        }
        for _ in 0..IDLE_YIELDS {
            if self.progress_ready(watch_shard) {
                return;
            }
            std::thread::yield_now();
        }
        // Announce, re-check, park (see the worker loop for the fence
        // pairing argument).
        self.shared.clients[self.lane]
            .maybe_sleeping
            .store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if self.progress_ready(watch_shard) {
            self.shared.clients[self.lane]
                .maybe_sleeping
                .store(false, Ordering::Relaxed);
            return;
        }
        self.parker.park();
        self.shared.clients[self.lane]
            .maybe_sleeping
            .store(false, Ordering::Relaxed);
    }

    fn progress_ready(&mut self, watch_shard: Option<usize>) -> bool {
        if self.shared.dead.load(Ordering::Acquire) || self.shared.closing.load(Ordering::Acquire) {
            return true;
        }
        if let Some(s) = watch_shard {
            if self.subs[s].free() > 0 {
                return true;
            }
        }
        self.has_completions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_worker_then_job_order() {
        let mut pool = PinnedPool::new(vec![(); 4], |w, (), job: u64| (w as u64) * 1000 + job);
        // Stage out of worker order on purpose.
        for w in [3usize, 1, 0, 2] {
            for j in 0..3u64 {
                pool.stage(w, j);
            }
        }
        let mut out = Vec::new();
        pool.run(|_, r| out.push(r)).unwrap();
        assert_eq!(
            out,
            vec![0, 1, 2, 1000, 1001, 1002, 2000, 2001, 2002, 3000, 3001, 3002]
        );
    }

    #[test]
    fn state_persists_across_batches_and_is_inspectable() {
        let mut pool = PinnedPool::new(vec![0u64; 2], |_, sum, job: u64| {
            *sum += job;
            *sum
        });
        for round in 1..=3u64 {
            pool.stage(0, round);
            pool.stage(1, 10 * round);
            pool.run(|_, _| {}).unwrap();
        }
        assert_eq!(pool.with_state(0, |s| *s), 1 + 2 + 3);
        assert_eq!(pool.with_state(1, |s| *s), 10 + 20 + 30);
    }

    #[test]
    fn empty_batches_and_idle_workers_are_fine() {
        let mut pool = PinnedPool::new(vec![(); 3], |_, (), job: u64| job);
        pool.run(|_, _: u64| panic!("nothing staged")).unwrap();
        pool.stage(1, 42);
        let mut got = Vec::new();
        pool.run(|w, r| got.push((w, r))).unwrap();
        assert_eq!(got, vec![(1, 42)]);
    }

    #[test]
    fn shutdown_then_run_reports_closed() {
        let mut pool = PinnedPool::new(vec![(); 2], |_, (), job: u64| job);
        pool.shutdown();
        pool.stage(0, 1);
        assert_eq!(pool.run(|_, _| {}), Err(PoolError::Closed));
        // State stays reachable for post-mortem inspection.
        pool.with_state(0, |()| ());
    }

    #[test]
    fn worker_panic_reports_and_poisons_the_pool() {
        let mut pool = PinnedPool::new(vec![(); 2], |_, (), job: u64| {
            assert!(job != 13, "unlucky job");
            job
        });
        pool.stage(0, 1);
        pool.stage(1, 13);
        let err = pool.run(|_, _| {}).unwrap_err();
        assert_eq!(err, PoolError::WorkerPanicked);
        pool.stage(0, 2);
        assert!(pool.run(|_, _| {}).is_err());
    }

    #[test]
    fn steady_state_buffers_circulate() {
        // Not an allocation assertion (that lives in the service bench),
        // but verify the swap protocol round-trips many batches.
        let mut pool = PinnedPool::new(vec![0u64; 4], |_, n, job: u64| {
            *n += 1;
            job * 2
        });
        for round in 0..100u64 {
            for w in 0..4 {
                pool.stage(w, round + w as u64);
            }
            let mut seen = 0;
            pool.run(|w, r| {
                assert_eq!(r, (round + w as u64) * 2);
                seen += 1;
            })
            .unwrap();
            assert_eq!(seen, 4);
        }
        for w in 0..4 {
            assert_eq!(pool.with_state(w, |n| *n), 100);
        }
    }

    #[test]
    fn shard_pool_per_shard_fifo_single_client() {
        let (pool, mut clients) =
            ShardPool::with_clients(vec![(); 2], 1, 16, 64, |w, (), job: u64| {
                (w as u64) * 1_000_000 + job
            });
        let mut c = clients.remove(0);
        for j in 0..20u64 {
            let shard = (j % 2) as usize;
            loop {
                match c.try_send(shard, j) {
                    Ok(()) => break,
                    Err(TrySendError::Full(_)) => c.wait_progress(Some(shard)),
                    Err(e) => panic!("unexpected send failure: {e:?}"),
                }
            }
        }
        let mut per_shard: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        while per_shard[0].len() + per_shard[1].len() < 20 {
            match c.try_recv() {
                Some((s, r)) => {
                    assert_eq!(r / 1_000_000, s as u64);
                    per_shard[s].push(r % 1_000_000);
                }
                None => c.wait_progress(None),
            }
        }
        // FIFO per (lane, shard): each shard saw its jobs in send order.
        assert_eq!(per_shard[0], (0..20).step_by(2).collect::<Vec<u64>>());
        assert_eq!(per_shard[1], (1..20).step_by(2).collect::<Vec<u64>>());
        drop(pool);
    }

    #[test]
    fn shard_pool_many_clients_stream_concurrently() {
        const LANES: usize = 4;
        const PER: u64 = 2_000;
        let (pool, clients) =
            ShardPool::with_clients(vec![0u64; 2], LANES, 8, 16, |_, hits, job: u64| {
                *hits += 1;
                job * 2
            });
        std::thread::scope(|s| {
            for (lane, mut c) in clients.into_iter().enumerate() {
                s.spawn(move || {
                    let mut sum = 0u64;
                    let mut sent = 0u64;
                    let mut got = 0u64;
                    while got < PER {
                        if sent < PER {
                            let job = lane as u64 * PER + sent;
                            let shard = (job % 2) as usize;
                            match c.try_send(shard, job) {
                                Ok(()) => {
                                    sent += 1;
                                    continue;
                                }
                                Err(TrySendError::Full(_)) => {}
                                Err(e) => panic!("send failed: {e:?}"),
                            }
                        }
                        match c.try_recv() {
                            Some((_, r)) => {
                                sum += r;
                                got += 1;
                            }
                            None => c.wait_progress(None),
                        }
                    }
                    let lo = lane as u64 * PER;
                    let expect: u64 = (lo..lo + PER).map(|v| v * 2).sum();
                    assert_eq!(sum, expect);
                });
            }
        });
        let total = pool.with_state(0, |h| *h) + pool.with_state(1, |h| *h);
        assert_eq!(total, LANES as u64 * PER);
        drop(pool);
    }

    #[test]
    fn shard_pool_backpressure_is_reported_not_blocking() {
        // A worker that can't proceed until we let it: the first job
        // parks the lane behind a slow operation.
        let gate = Arc::new(AtomicBool::new(false));
        let wgate = Arc::clone(&gate);
        let (pool, mut clients) =
            ShardPool::with_clients(vec![(); 1], 1, 1, 8, move |_, (), job: u32| {
                while !wgate.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                job
            });
        let mut c = clients.remove(0);
        c.try_send(0, 1).unwrap();
        // Ring depth 1: once the (possibly) un-popped first job occupies
        // the ring, a second+third send must eventually report Full
        // rather than block.
        let mut saw_full = false;
        for j in 2..100u32 {
            match c.try_send(0, j) {
                Ok(()) => {}
                Err(TrySendError::Full(back)) => {
                    assert_eq!(back, j);
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected: {e:?}"),
            }
        }
        assert!(saw_full, "depth-1 ring never reported backpressure");
        gate.store(true, Ordering::Release);
        drop(pool);
    }

    #[test]
    fn shard_pool_shutdown_drains_in_flight() {
        let (mut pool, mut clients) =
            ShardPool::with_clients(vec![0u64; 2], 1, 64, 64, |_, n, job: u64| {
                // Slow worker so shutdown races real in-flight work.
                std::thread::sleep(std::time::Duration::from_micros(50));
                *n += 1;
                job + 1
            });
        let mut c = clients.remove(0);
        let mut sent = 0u64;
        for j in 0..32u64 {
            if c.try_send((j % 2) as usize, j).is_ok() {
                sent += 1;
            }
        }
        // Shut down immediately: every accepted job must still complete.
        pool.shutdown();
        let mut got = 0u64;
        while !c.workers_gone() || c.has_completions() {
            match c.try_recv() {
                Some((_, r)) => {
                    assert!(r >= 1);
                    got += 1;
                }
                None => {
                    if c.workers_gone() {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        assert_eq!(got, sent, "shutdown dropped in-flight jobs");
        assert_eq!(c.pool_error(), Some(PoolError::Closed));
        assert!(matches!(c.try_send(0, 99), Err(TrySendError::Closed(99))));
    }

    #[test]
    fn shard_pool_worker_panic_poisons_and_wakes_clients() {
        let (pool, mut clients) =
            ShardPool::with_clients(vec![(); 2], 1, 16, 16, |_, (), job: u32| {
                assert!(job != 13, "unlucky job");
                job
            });
        let mut c = clients.remove(0);
        c.try_send(0, 1).unwrap();
        c.try_send(0, 13).unwrap(); // worker 0 dies on this one
                                    // Eventually the poison is visible; blocked waits wake up.
        loop {
            if c.pool_error() == Some(PoolError::WorkerPanicked) {
                break;
            }
            c.wait_progress(None);
        }
        assert!(pool.is_poisoned());
        // The pre-panic completion may or may not have been claimed;
        // after draining, the client can prove nothing more will come.
        while let Some(_r) = c.try_recv() {}
        assert!(matches!(c.try_send(1, 7), Err(TrySendError::WorkerLost(7))));
        drop(pool);
    }

    #[test]
    fn shard_pool_with_state_sees_pinned_state() {
        let (pool, mut clients) =
            ShardPool::with_clients(vec![0u64; 2], 1, 8, 8, |_, s, job: u64| {
                *s += job;
                *s
            });
        let mut c = clients.remove(0);
        for j in [5u64, 7, 11] {
            c.try_send(1, j).unwrap();
        }
        let mut got = 0;
        while got < 3 {
            if c.try_recv().is_some() {
                got += 1;
            } else {
                c.wait_progress(None);
            }
        }
        assert_eq!(pool.with_state(1, |s| *s), 23);
        assert_eq!(pool.with_state(0, |s| *s), 0);
    }
}
