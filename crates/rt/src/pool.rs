//! A pinned worker pool: one persistent thread per worker, each owning a
//! long-lived state, fed by per-worker job queues and drained by batched,
//! in-order collection.
//!
//! [`crate::par`] spawns scoped threads per call, which suits one-shot
//! Monte-Carlo campaigns but not a service: a sharded memory front end
//! needs its per-shard state (engine scratch buffers, RNG streams) to
//! live across batches on a fixed worker, so decodes stay allocation-free
//! and deterministic. [`PinnedPool`] provides that shape:
//!
//! * `stage(worker, job)` queues work for a specific worker (no locking);
//! * `run(collect)` dispatches every staged queue to its worker, waits,
//!   and hands results back **in worker order, then job order** — so
//!   output depends only on what was staged, never on thread timing;
//! * job and result buffers circulate between the caller and the workers
//!   by `Vec` swaps, so the steady state allocates nothing.
//!
//! A worker panic poisons the pool: the in-flight `run` and every later
//! call reports [`PoolError::WorkerPanicked`] instead of hanging.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Why the pool could not serve a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The pool was shut down.
    Closed,
    /// A worker thread panicked; the pool is permanently closed.
    WorkerPanicked,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Closed => write!(f, "worker pool is shut down"),
            PoolError::WorkerPanicked => write!(f, "worker thread panicked"),
        }
    }
}

impl std::error::Error for PoolError {}

/// The handshake cell between the caller and one worker.
struct Mailbox<J, R> {
    inbox: Vec<J>,
    outbox: Vec<R>,
    has_work: bool,
    done: bool,
    closed: bool,
    panicked: bool,
}

struct Slot<S, J, R> {
    mailbox: Mutex<Mailbox<J, R>>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// The worker locks the state only while processing a batch, so
    /// between batches [`PinnedPool::with_state`] can inspect it.
    state: Mutex<S>,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned mutex means a worker panicked mid-batch; the pool
    // already reports that via the `panicked` flag, and the state is
    // still wanted for post-mortem stats.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Flags the pool closed if the worker unwinds, so waiting callers get
/// [`PoolError::WorkerPanicked`] instead of a deadlock.
struct PanicGuard<'a, S, J, R> {
    slot: &'a Slot<S, J, R>,
}

impl<S, J, R> Drop for PanicGuard<'_, S, J, R> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut mb = lock_ignore_poison(&self.slot.mailbox);
            mb.closed = true;
            mb.panicked = true;
            self.slot.done_cv.notify_all();
        }
    }
}

/// A pool of persistent worker threads with pinned per-worker state.
///
/// # Examples
///
/// ```
/// use pmck_rt::pool::PinnedPool;
///
/// // Two workers, each owning a counter; jobs add to it.
/// let mut pool = PinnedPool::new(vec![0u64, 100u64], |_, state, job: u64| {
///     *state += job;
///     *state
/// });
/// pool.stage(0, 5);
/// pool.stage(1, 7);
/// let mut out = Vec::new();
/// pool.run(|worker, r| out.push((worker, r))).unwrap();
/// assert_eq!(out, vec![(0, 5), (1, 107)]);
/// ```
pub struct PinnedPool<S, J, R> {
    slots: Vec<Arc<Slot<S, J, R>>>,
    handles: Vec<Option<JoinHandle<()>>>,
    staging: Vec<Vec<J>>,
    dispatched: Vec<bool>,
    gather: Vec<R>,
    closed: bool,
}

impl<S, J, R> PinnedPool<S, J, R>
where
    S: Send + 'static,
    J: Send + 'static,
    R: Send + 'static,
{
    /// Spawns one worker per element of `states`; worker `w` owns
    /// `states[w]` for the pool's lifetime and executes every staged job
    /// as `f(w, &mut state, job)`.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn new<F>(states: Vec<S>, f: F) -> Self
    where
        F: Fn(usize, &mut S, J) -> R + Send + Sync + 'static,
    {
        assert!(!states.is_empty(), "pool needs at least one worker");
        let f = Arc::new(f);
        let mut slots = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for (w, state) in states.into_iter().enumerate() {
            let slot = Arc::new(Slot {
                mailbox: Mutex::new(Mailbox {
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                    has_work: false,
                    done: false,
                    closed: false,
                    panicked: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                state: Mutex::new(state),
            });
            let worker_slot = Arc::clone(&slot);
            let worker_f = Arc::clone(&f);
            handles.push(Some(std::thread::spawn(move || {
                worker_loop(w, &worker_slot, &*worker_f);
            })));
            slots.push(slot);
        }
        let n = slots.len();
        PinnedPool {
            slots,
            handles,
            staging: (0..n).map(|_| Vec::new()).collect(),
            dispatched: vec![false; n],
            gather: Vec::new(),
            closed: false,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Queues `job` for `worker`'s next [`PinnedPool::run`]. Cheap: no
    /// locks, no cross-thread traffic until the batch is dispatched.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn stage(&mut self, worker: usize, job: J) {
        self.staging[worker].push(job);
    }

    /// Dispatches every staged queue to its worker, waits for all of
    /// them, and feeds each result to `collect(worker, result)` — workers
    /// in index order, each worker's results in staged order. Workers
    /// with nothing staged are not woken.
    ///
    /// # Errors
    ///
    /// [`PoolError::Closed`] after [`PinnedPool::shutdown`];
    /// [`PoolError::WorkerPanicked`] if any worker died (staged jobs are
    /// dropped). Either way the pool rejects all further batches.
    pub fn run(&mut self, mut collect: impl FnMut(usize, R)) -> Result<(), PoolError> {
        if self.closed {
            return Err(PoolError::Closed);
        }
        // Dispatch phase: hand each non-empty staging queue to its
        // worker by Vec swap (the worker returns the drained queue, so
        // capacity circulates and the steady state never allocates).
        let mut first_failure = None;
        for (w, slot) in self.slots.iter().enumerate() {
            self.dispatched[w] = false;
            if self.staging[w].is_empty() {
                continue;
            }
            let mut mb = lock_ignore_poison(&slot.mailbox);
            if mb.closed {
                first_failure.get_or_insert(fail_kind(&mb));
                self.staging[w].clear();
                continue;
            }
            std::mem::swap(&mut mb.inbox, &mut self.staging[w]);
            mb.has_work = true;
            mb.done = false;
            slot.work_cv.notify_one();
            self.dispatched[w] = true;
        }
        // Collection phase: wait for dispatched workers in index order
        // so results are deterministic regardless of completion order.
        for (w, slot) in self.slots.iter().enumerate() {
            if !self.dispatched[w] {
                continue;
            }
            let mut mb = lock_ignore_poison(&slot.mailbox);
            while !mb.done && !mb.closed {
                mb = lock_ignore_poison_wait(&slot.done_cv, mb);
            }
            if mb.closed && !mb.done {
                first_failure.get_or_insert(fail_kind(&mb));
                continue;
            }
            mb.done = false;
            std::mem::swap(&mut mb.outbox, &mut self.gather);
            drop(mb);
            for r in self.gather.drain(..) {
                collect(w, r);
            }
        }
        match first_failure {
            None => Ok(()),
            Some(e) => {
                // A dead worker cannot be restarted; poison the pool so
                // callers see a consistent error from now on.
                self.closed = true;
                Err(e)
            }
        }
    }

    /// Runs `f` against `worker`'s pinned state. Blocks while that
    /// worker is mid-batch; between batches the state is idle and the
    /// call is immediate. Works even after shutdown or a panic (for
    /// post-mortem stats), as long as the state itself survived.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn with_state<T>(&self, worker: usize, f: impl FnOnce(&mut S) -> T) -> T {
        f(&mut lock_ignore_poison(&self.slots[worker].state))
    }

    /// Stops all workers and joins them. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.closed = true;
        for slot in &self.slots {
            let mut mb = lock_ignore_poison(&slot.mailbox);
            mb.closed = true;
            slot.work_cv.notify_all();
        }
        for handle in &mut self.handles {
            if let Some(h) = handle.take() {
                // A worker that panicked already reported through the
                // mailbox flags; join just reaps the thread.
                let _ = h.join();
            }
        }
    }
}

fn fail_kind<J, R>(mb: &Mailbox<J, R>) -> PoolError {
    if mb.panicked {
        PoolError::WorkerPanicked
    } else {
        PoolError::Closed
    }
}

fn lock_ignore_poison_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop<S, J, R, F>(w: usize, slot: &Slot<S, J, R>, f: &F)
where
    F: Fn(usize, &mut S, J) -> R,
{
    let guard = PanicGuard { slot };
    let mut jobs: Vec<J> = Vec::new();
    let mut results: Vec<R> = Vec::new();
    loop {
        {
            let mut mb = lock_ignore_poison(&slot.mailbox);
            while !mb.has_work && !mb.closed {
                mb = lock_ignore_poison_wait(&slot.work_cv, mb);
            }
            if mb.closed {
                break;
            }
            mb.has_work = false;
            std::mem::swap(&mut mb.inbox, &mut jobs);
        }
        {
            let mut state = lock_ignore_poison(&slot.state);
            for job in jobs.drain(..) {
                results.push(f(w, &mut state, job));
            }
        }
        {
            let mut mb = lock_ignore_poison(&slot.mailbox);
            // Return the drained job queue and publish the results; the
            // caller swaps both back out, so the buffers circulate.
            std::mem::swap(&mut mb.inbox, &mut jobs);
            std::mem::swap(&mut mb.outbox, &mut results);
            mb.done = true;
            slot.done_cv.notify_all();
        }
    }
    drop(guard);
}

impl<S, J, R> Drop for PinnedPool<S, J, R> {
    fn drop(&mut self) {
        self.closed = true;
        for slot in &self.slots {
            let mut mb = lock_ignore_poison(&slot.mailbox);
            mb.closed = true;
            slot.work_cv.notify_all();
        }
        for handle in &mut self.handles {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_worker_then_job_order() {
        let mut pool = PinnedPool::new(vec![(); 4], |w, (), job: u64| (w as u64) * 1000 + job);
        // Stage out of worker order on purpose.
        for w in [3usize, 1, 0, 2] {
            for j in 0..3u64 {
                pool.stage(w, j);
            }
        }
        let mut out = Vec::new();
        pool.run(|_, r| out.push(r)).unwrap();
        assert_eq!(
            out,
            vec![0, 1, 2, 1000, 1001, 1002, 2000, 2001, 2002, 3000, 3001, 3002]
        );
    }

    #[test]
    fn state_persists_across_batches_and_is_inspectable() {
        let mut pool = PinnedPool::new(vec![0u64; 2], |_, sum, job: u64| {
            *sum += job;
            *sum
        });
        for round in 1..=3u64 {
            pool.stage(0, round);
            pool.stage(1, 10 * round);
            pool.run(|_, _| {}).unwrap();
        }
        assert_eq!(pool.with_state(0, |s| *s), 1 + 2 + 3);
        assert_eq!(pool.with_state(1, |s| *s), 10 + 20 + 30);
    }

    #[test]
    fn empty_batches_and_idle_workers_are_fine() {
        let mut pool = PinnedPool::new(vec![(); 3], |_, (), job: u64| job);
        pool.run(|_, _: u64| panic!("nothing staged")).unwrap();
        pool.stage(1, 42);
        let mut got = Vec::new();
        pool.run(|w, r| got.push((w, r))).unwrap();
        assert_eq!(got, vec![(1, 42)]);
    }

    #[test]
    fn shutdown_then_run_reports_closed() {
        let mut pool = PinnedPool::new(vec![(); 2], |_, (), job: u64| job);
        pool.shutdown();
        pool.stage(0, 1);
        assert_eq!(pool.run(|_, _| {}), Err(PoolError::Closed));
        // State stays reachable for post-mortem inspection.
        pool.with_state(0, |()| ());
    }

    #[test]
    fn worker_panic_reports_and_poisons_the_pool() {
        let mut pool = PinnedPool::new(vec![(); 2], |_, (), job: u64| {
            assert!(job != 13, "unlucky job");
            job
        });
        pool.stage(0, 1);
        pool.stage(1, 13);
        let err = pool.run(|_, _| {}).unwrap_err();
        assert_eq!(err, PoolError::WorkerPanicked);
        pool.stage(0, 2);
        assert!(pool.run(|_, _| {}).is_err());
    }

    #[test]
    fn steady_state_buffers_circulate() {
        // Not an allocation assertion (that lives in the service bench),
        // but verify the swap protocol round-trips many batches.
        let mut pool = PinnedPool::new(vec![0u64; 4], |_, n, job: u64| {
            *n += 1;
            job * 2
        });
        for round in 0..100u64 {
            for w in 0..4 {
                pool.stage(w, round + w as u64);
            }
            let mut seen = 0;
            pool.run(|w, r| {
                assert_eq!(r, (round + w as u64) * 2);
                seen += 1;
            })
            .unwrap();
            assert_eq!(seen, 4);
        }
        for w in 0..4 {
            assert_eq!(pool.with_state(w, |n| *n), 100);
        }
    }
}
