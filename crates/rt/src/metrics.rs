//! A lightweight metrics registry: counters, gauges, histograms, JSON
//! export.
//!
//! Simulator components (memory controller, LLC, chipkill engine) publish
//! their counters into one [`MetricsRegistry`], giving every experiment
//! binary a uniform observability surface: `registry.to_json().pretty()`
//! is the whole story of a run.
//!
//! All mutation goes through `&self` (a mutex guards the map), so one
//! registry can be shared across components and threads.
//!
//! # Examples
//!
//! ```
//! use pmck_rt::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! reg.inc("mem.reads", 3);
//! reg.set_gauge("llc.hit_rate", 0.93);
//! reg.observe("read.latency_ns", 120.0);
//! assert_eq!(reg.counter("mem.reads"), 3);
//! let json = reg.to_json();
//! assert_eq!(json.get("mem.reads").unwrap().as_u64(), Some(3));
//! ```

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::Json;

/// Histogram bucket layout: powers of two up to 2⁶³ plus overflow.
const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of non-negative samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// `counts[i]` holds samples with `floor(log2(v)) == i - 1`
    /// (`counts[0]` holds samples `< 1`); the last bucket is overflow.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    fn bucket(v: f64) -> usize {
        if v < 1.0 {
            0
        } else {
            let exp = v.log2().floor() as usize;
            (exp + 1).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one sample; negative or non-finite samples clamp to 0.
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.counts[Self::bucket(v)] += 1;
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile from the bucket boundaries
    /// (0 when empty; `q` clamps to `[0, 1]`).
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Bucket i spans [2^(i-1), 2^i); report the upper edge.
                return if i == 0 { 1.0 } else { 2f64.powi(i as i32) };
            }
        }
        self.max
    }

    fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("count", self.count);
        j.set("sum", self.sum);
        j.set("mean", self.mean());
        j.set("min", if self.count == 0 { 0.0 } else { self.min });
        j.set("max", if self.count == 0 { 0.0 } else { self.max });
        j.set("p50_bound", self.quantile_bound(0.5));
        j.set("p99_bound", self.quantile_bound(0.99));
        j
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// A named collection of counters, gauges, and histograms.
///
/// Names are free-form; the convention used by the simulators is
/// dotted paths with a component prefix (`mem.row_hits`,
/// `llc.omv_hits`, `core.fallbacks`).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_lock<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> T) -> T {
        f(&mut self.metrics.lock().expect("metrics registry poisoned"))
    }

    /// Adds `by` to the counter `name` (creating it at 0).
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a gauge or histogram.
    pub fn inc(&self, name: &str, by: u64) {
        self.with_lock(
            |m| match m.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
                Metric::Counter(v) => *v += by,
                _ => panic!("metric {name} is not a counter"),
            },
        );
    }

    /// Sets the counter `name` to an absolute value (for publishing a
    /// finished stats struct in one shot).
    pub fn set_counter(&self, name: &str, value: u64) {
        self.with_lock(|m| {
            m.insert(name.to_owned(), Metric::Counter(value));
        });
    }

    /// Sets the gauge `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.with_lock(|m| {
            m.insert(name.to_owned(), Metric::Gauge(value));
        });
    }

    /// Records a sample into the histogram `name` (creating it empty).
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a counter or gauge.
    pub fn observe(&self, name: &str, value: f64) {
        self.with_lock(|m| {
            match m
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Histogram(Histogram::default()))
            {
                Metric::Histogram(h) => h.observe(value),
                _ => panic!("metric {name} is not a histogram"),
            }
        });
    }

    /// Reads a counter (0 if absent or a different kind).
    pub fn counter(&self, name: &str) -> u64 {
        self.with_lock(|m| match m.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        })
    }

    /// Reads a gauge (`None` if absent or a different kind).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.with_lock(|m| match m.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        })
    }

    /// Reads a snapshot of the histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.with_lock(|m| match m.get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        })
    }

    /// The sorted metric names currently registered.
    pub fn names(&self) -> Vec<String> {
        self.with_lock(|m| m.keys().cloned().collect())
    }

    /// Removes every metric.
    pub fn clear(&self) {
        self.with_lock(|m| m.clear());
    }

    /// Exports every metric as one JSON object, keys sorted; counters
    /// become integers, gauges floats, histograms summary objects.
    pub fn to_json(&self) -> Json {
        self.with_lock(|m| {
            let mut out = Json::object();
            for (name, metric) in m.iter() {
                match metric {
                    Metric::Counter(v) => out.set(name.clone(), *v),
                    Metric::Gauge(v) => out.set(name.clone(), *v),
                    Metric::Histogram(h) => out.set(name.clone(), h.to_json()),
                };
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.inc("a", 1);
        reg.inc("a", 2);
        assert_eq!(reg.counter("a"), 3);
        assert_eq!(reg.counter("missing"), 0);
        reg.set_counter("a", 10);
        assert_eq!(reg.counter("a"), 10);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("g", 1.5);
        reg.set_gauge("g", 2.5);
        assert_eq!(reg.gauge("g"), Some(2.5));
        assert_eq!(reg.gauge("missing"), None);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 26.5).abs() < 1e-12);
        assert!(h.quantile_bound(0.5) <= 4.0);
        assert!(h.quantile_bound(1.0) >= 100.0);
        let empty = Histogram::default();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile_bound(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("x", 1.0);
        reg.inc("x", 1);
    }

    #[test]
    fn json_export_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.inc("z.counter", 5);
        reg.set_gauge("a.gauge", 0.5);
        reg.observe("m.hist", 7.0);
        let j = reg.to_json();
        let keys: Vec<&str> = j
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["a.gauge", "m.hist", "z.counter"]);
        assert_eq!(j.get("z.counter").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("a.gauge").unwrap().as_f64(), Some(0.5));
        assert_eq!(
            j.get("m.hist").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn shared_across_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.inc("t", 1);
                    }
                });
            }
        });
        assert_eq!(reg.counter("t"), 4000);
    }
}
