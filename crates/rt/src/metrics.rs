//! A lightweight metrics registry: counters, gauges, histograms, JSON
//! export.
//!
//! Simulator components (memory controller, LLC, chipkill engine) publish
//! their counters into one [`MetricsRegistry`], giving every experiment
//! binary a uniform observability surface: `registry.to_json().pretty()`
//! is the whole story of a run.
//!
//! Two recording speeds coexist:
//!
//! * **Registry calls** (`inc`, `set_gauge`, `observe`) take the map
//!   mutex per call — fine for publishing a finished stats struct or
//!   low-rate events.
//! * **Handles** ([`MetricsRegistry::counter_handle`] /
//!   [`MetricsRegistry::gauge_handle`]) resolve the name once and hand
//!   back the underlying atomic cell; recording through a handle is one
//!   `fetch_add`/`store`, safe from any number of threads, and never
//!   touches the registry lock — the shape per-op hot paths (shard
//!   workers, producer threads) need.
//!
//! [`Histogram`] is an HDR-style log-bucketed histogram: power-of-two
//! major buckets refined by 16 linear sub-buckets each, so any recorded
//! value is off by at most 1/16 (6.25%) and p50/p99/p999 extraction
//! ([`Histogram::quantile`]) is a single bucket walk. Latency samples in
//! nanoseconds span nine decades; this layout covers the full `u64`
//! range in 976 counters.
//!
//! # Examples
//!
//! ```
//! use pmck_rt::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! reg.inc("mem.reads", 3);
//! reg.set_gauge("llc.hit_rate", 0.93);
//! reg.observe("read.latency_ns", 120.0);
//! assert_eq!(reg.counter("mem.reads"), 3);
//!
//! // Hot-path form: resolve once, record lock-free.
//! let reads = reg.counter_handle("mem.reads");
//! reads.inc(1);
//! assert_eq!(reg.counter("mem.reads"), 4);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Linear sub-buckets per power-of-two major bucket (and the size of
/// the leading exact-value region `0..16`).
const SUB: usize = 16;
const SUB_BITS: u32 = 4;
/// 16 exact low buckets + 16 sub-buckets for each exponent 4..=63.
const HIST_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// An HDR-style histogram of non-negative integer samples (latencies in
/// nanoseconds, sizes in bytes, ...).
///
/// Values `0..16` are exact; larger values land in the sub-bucket
/// `[v, v·(1+1/16))` of their power of two, so quantiles are tight to
/// 6.25% across the whole `u64` range with a fixed 976-slot footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Box<[u64; HIST_BUCKETS]>,
    sum: f64,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: Box::new([0; HIST_BUCKETS]),
            sum: 0.0,
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let e = 63 - v.leading_zeros(); // 4..=63
            let sub = ((v >> (e - SUB_BITS)) & (SUB as u64 - 1)) as usize;
            SUB + (e - SUB_BITS) as usize * SUB + sub
        }
    }

    /// The largest value mapping into bucket `i` (the bound
    /// [`Histogram::quantile`] reports).
    fn bucket_upper(i: usize) -> u64 {
        if i < SUB {
            i as u64
        } else {
            let e = (i - SUB) / SUB + SUB_BITS as usize;
            let sub = ((i - SUB) % SUB) as u128;
            let upper = (SUB as u128 + sub + 1) << (e - SUB_BITS as usize);
            u64::try_from(upper - 1).unwrap_or(u64::MAX)
        }
    }

    /// Records one integer sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.sum += v as f64;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records one float sample; negative or non-finite samples clamp
    /// to 0, fractional samples round to the nearest integer.
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.record(v.round() as u64);
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile: an upper bound within 1/16 of the true value
    /// (0 when empty; `q` clamps to `[0, 1]`). `quantile(0.5)` is the
    /// median bucket's upper edge, `quantile(0.999)` the p999.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report past the actually-observed extremes.
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// [`Histogram::quantile`] as `f64`, for callers mixing histogram
    /// bounds with gauge arithmetic.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        self.quantile(q) as f64
    }

    fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("count", self.count);
        j.set("sum", self.sum);
        j.set("mean", self.mean());
        j.set("min", self.min());
        j.set("max", self.max());
        j.set("p50", self.quantile(0.5));
        j.set("p99", self.quantile(0.99));
        j.set("p999", self.quantile(0.999));
        j
    }
}

/// A lock-free counter cell handed out by
/// [`MetricsRegistry::counter_handle`]. Cloning shares the same cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `by` (wrapping); safe from any thread, no lock.
    pub fn inc(&self, by: u64) {
        self.cell.fetch_add(by, Ordering::Relaxed);
    }

    /// Sets the absolute value.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A lock-free gauge cell handed out by
/// [`MetricsRegistry::gauge_handle`]. Cloning shares the same cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge; safe from any thread, no lock.
    pub fn set(&self, value: f64) {
        self.cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    /// The cell is shared with every handed-out [`Counter`], so
    /// `set_counter`/`inc` and handle recordings see one value.
    Counter(Arc<AtomicU64>),
    /// f64 bits, shared with every handed-out [`Gauge`].
    Gauge(Arc<AtomicU64>),
    Histogram(Histogram),
}

/// A named collection of counters, gauges, and histograms.
///
/// Names are free-form; the convention used by the simulators is
/// dotted paths with a component prefix (`mem.row_hits`,
/// `llc.omv_hits`, `core.fallbacks`).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_lock<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> T) -> T {
        f(&mut self.metrics.lock().expect("metrics registry poisoned"))
    }

    /// Adds `by` to the counter `name` (creating it at 0).
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a gauge or histogram.
    pub fn inc(&self, name: &str, by: u64) {
        self.counter_cell(name).fetch_add(by, Ordering::Relaxed);
    }

    /// Sets the counter `name` to an absolute value (for publishing a
    /// finished stats struct in one shot).
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a gauge or histogram.
    pub fn set_counter(&self, name: &str, value: u64) {
        self.counter_cell(name).store(value, Ordering::Relaxed);
    }

    /// The shared atomic cell behind counter `name`, creating it at 0.
    /// Recording through the returned [`Counter`] never takes the
    /// registry lock — hand one to each hot-path thread.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a gauge or histogram.
    pub fn counter_handle(&self, name: &str) -> Counter {
        Counter {
            cell: self.counter_cell(name),
        }
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        self.with_lock(|m| {
            match m
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
            {
                Metric::Counter(cell) => Arc::clone(cell),
                _ => panic!("metric {name} is not a counter"),
            }
        })
    }

    /// Sets the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a counter or histogram.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauge_cell(name)
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// The shared atomic cell behind gauge `name`, creating it at 0.0.
    /// Recording through the returned [`Gauge`] never takes the
    /// registry lock.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a counter or histogram.
    pub fn gauge_handle(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.gauge_cell(name),
        }
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        self.with_lock(|m| {
            match m
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            {
                Metric::Gauge(cell) => Arc::clone(cell),
                _ => panic!("metric {name} is not a gauge"),
            }
        })
    }

    /// Records a sample into the histogram `name` (creating it empty).
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a counter or gauge.
    pub fn observe(&self, name: &str, value: f64) {
        self.with_lock(|m| {
            match m
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Histogram(Histogram::default()))
            {
                Metric::Histogram(h) => h.observe(value),
                _ => panic!("metric {name} is not a histogram"),
            }
        });
    }

    /// Merges a whole pre-aggregated histogram into `name` (creating it
    /// empty first) — the bulk-publication path for components that
    /// record into their own [`Histogram`] off-lock and flush
    /// periodically.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a counter or gauge.
    pub fn record_histogram(&self, name: &str, hist: &Histogram) {
        self.with_lock(|m| {
            match m
                .entry(name.to_owned())
                .or_insert_with(|| Metric::Histogram(Histogram::default()))
            {
                Metric::Histogram(h) => h.merge(hist),
                _ => panic!("metric {name} is not a histogram"),
            }
        });
    }

    /// Replaces the histogram `name` with a snapshot (overwrite, not
    /// merge) — for republishing a live histogram each reporting tick.
    pub fn set_histogram(&self, name: &str, hist: &Histogram) {
        self.with_lock(|m| {
            m.insert(name.to_owned(), Metric::Histogram(hist.clone()));
        });
    }

    /// Reads a counter (0 if absent or a different kind).
    pub fn counter(&self, name: &str) -> u64 {
        self.with_lock(|m| match m.get(name) {
            Some(Metric::Counter(v)) => v.load(Ordering::Relaxed),
            _ => 0,
        })
    }

    /// Reads a gauge (`None` if absent or a different kind).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.with_lock(|m| match m.get(name) {
            Some(Metric::Gauge(v)) => Some(f64::from_bits(v.load(Ordering::Relaxed))),
            _ => None,
        })
    }

    /// Reads a snapshot of the histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.with_lock(|m| match m.get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        })
    }

    /// The sorted metric names currently registered.
    pub fn names(&self) -> Vec<String> {
        self.with_lock(|m| m.keys().cloned().collect())
    }

    /// Removes every metric. Handles issued earlier keep working but
    /// are orphaned (their cells are no longer exported).
    pub fn clear(&self) {
        self.with_lock(|m| m.clear());
    }

    /// Exports every metric as one JSON object, keys sorted; counters
    /// become integers, gauges floats, histograms summary objects.
    pub fn to_json(&self) -> Json {
        self.with_lock(|m| {
            let mut out = Json::object();
            for (name, metric) in m.iter() {
                match metric {
                    Metric::Counter(v) => out.set(name.clone(), v.load(Ordering::Relaxed)),
                    Metric::Gauge(v) => {
                        out.set(name.clone(), f64::from_bits(v.load(Ordering::Relaxed)))
                    }
                    Metric::Histogram(h) => out.set(name.clone(), h.to_json()),
                };
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.inc("a", 1);
        reg.inc("a", 2);
        assert_eq!(reg.counter("a"), 3);
        assert_eq!(reg.counter("missing"), 0);
        reg.set_counter("a", 10);
        assert_eq!(reg.counter("a"), 10);
    }

    #[test]
    fn counter_handles_share_the_cell() {
        let reg = MetricsRegistry::new();
        let h1 = reg.counter_handle("ops");
        let h2 = reg.counter_handle("ops");
        h1.inc(5);
        h2.inc(7);
        assert_eq!(h1.get(), 12);
        assert_eq!(reg.counter("ops"), 12);
        // set_counter writes the same cell the handles hold.
        reg.set_counter("ops", 100);
        assert_eq!(h2.get(), 100);
        h1.set(3);
        assert_eq!(reg.counter("ops"), 3);
    }

    #[test]
    fn handles_record_concurrently_without_the_lock() {
        let reg = MetricsRegistry::new();
        let h = reg.counter_handle("t");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.inc(1);
                    }
                });
            }
        });
        assert_eq!(reg.counter("t"), 4000);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("g", 1.5);
        reg.set_gauge("g", 2.5);
        assert_eq!(reg.gauge("g"), Some(2.5));
        assert_eq!(reg.gauge("missing"), None);
        let h = reg.gauge_handle("g");
        h.set(-0.25);
        assert_eq!(reg.gauge("g"), Some(-0.25));
        assert_eq!(h.get(), -0.25);
    }

    #[test]
    fn histogram_buckets_are_tight() {
        // Exact below 16.
        for v in 0..16u64 {
            assert_eq!(Histogram::bucket_upper(Histogram::bucket(v)), v);
        }
        // Within 1/16 above.
        for &v in &[16u64, 100, 1000, 123_456, u32::MAX as u64, u64::MAX / 3] {
            let upper = Histogram::bucket_upper(Histogram::bucket(v));
            assert!(upper >= v, "{v}: upper {upper}");
            assert!(
                (upper - v) as f64 <= v as f64 / 16.0 + 1.0,
                "{v}: upper {upper} too loose"
            );
        }
        assert_eq!(
            Histogram::bucket_upper(Histogram::bucket(u64::MAX)),
            u64::MAX
        );
    }

    #[test]
    fn histogram_summary_and_quantiles() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 26.5).abs() < 1e-12);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!(h.quantile(0.5) <= 4);
        assert!(h.quantile(1.0) >= 100);
        let empty = Histogram::default();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.min(), 0);

        // A long-tailed latency shape: quantiles order correctly and
        // land inside 1/16 of the true order statistics.
        let mut lat = Histogram::default();
        for i in 0..1000u64 {
            lat.record(100 + i); // uniform 100..1100
        }
        lat.record(1_000_000); // one outlier
        let (p50, p99, p999) = (lat.quantile(0.5), lat.quantile(0.99), lat.quantile(0.999));
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!((550..=700).contains(&p50), "p50 {p50}");
        assert!((1050..=1200).contains(&p99), "p99 {p99}");
        // True p999 order statistic is 1099; the bound is its bucket's
        // upper edge, within 1/16.
        assert!((1099..=1099 + 1099 / 16 + 1).contains(&p999), "p999 {p999}");
        assert_eq!(lat.quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for i in 0..500u64 {
            a.record(i * 3);
            both.record(i * 3);
        }
        for i in 0..300u64 {
            b.record(i * 7 + 1);
            both.record(i * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a, both);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("x", 1.0);
        reg.inc("x", 1);
    }

    #[test]
    fn json_export_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.inc("z.counter", 5);
        reg.set_gauge("a.gauge", 0.5);
        reg.observe("m.hist", 7.0);
        let j = reg.to_json();
        let keys: Vec<&str> = j
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["a.gauge", "m.hist", "z.counter"]);
        assert_eq!(j.get("z.counter").unwrap().as_u64(), Some(5));
        assert_eq!(j.get("a.gauge").unwrap().as_f64(), Some(0.5));
        let hist = j.get("m.hist").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("p999").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn record_histogram_merges_and_set_histogram_overwrites() {
        let reg = MetricsRegistry::new();
        let mut local = Histogram::default();
        for v in [10u64, 20, 30] {
            local.record(v);
        }
        reg.record_histogram("lat", &local);
        reg.record_histogram("lat", &local);
        assert_eq!(reg.histogram("lat").unwrap().count(), 6);
        reg.set_histogram("lat", &local);
        assert_eq!(reg.histogram("lat").unwrap(), local);
    }

    #[test]
    fn shared_across_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.inc("t", 1);
                    }
                });
            }
        });
        assert_eq!(reg.counter("t"), 4000);
    }
}
