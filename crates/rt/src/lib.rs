//! `pmck-rt` — the dependency-free runtime foundation of the workspace.
//!
//! Every other `pmck-*` crate builds on these four modules instead of
//! crates.io dependencies, so the whole workspace compiles and tests with
//! **zero registry access**:
//!
//! * [`rng`] — deterministic pseudo-randomness: SplitMix64 seeding,
//!   xoshiro256\*\* streams, uniform ranges, Bernoulli/binomial samplers
//!   tailored to RBER bit-flip injection (replaces `rand`).
//! * [`json`] — a small JSON value tree with writer and parser for
//!   experiment-result serialization (replaces `serde`/`serde_json`).
//! * [`par`] — a `std::thread::scope`-based chunked parallel map whose
//!   per-chunk RNG seeds are derived deterministically, so Monte-Carlo
//!   campaigns are bit-identical at any worker count.
//! * [`pool`] — worker pools with pinned per-worker state: the batched
//!   [`pool::PinnedPool`] (Mutex+Condvar mailboxes, whole-batch
//!   collection) and the lock-free streaming [`pool::ShardPool`] built
//!   on [`ring`] (replaces `rayon`/`crossbeam` channel pools).
//! * [`ring`] — fixed-capacity lock-free SPSC/MPSC rings plus a
//!   spin-then-park [`ring::Parker`]: the transport under `ShardPool`
//!   and the telemetry path of `pmck-service`.
//! * [`metrics`] — a lightweight counter/gauge/histogram registry with
//!   JSON export: one uniform observability surface for the memory
//!   controller, the LLC, and the chipkill engine.
//!
//! # Determinism contract
//!
//! Given the same seed, every generator in [`rng`] produces the same
//! stream on every platform, and [`par::mc_chunks`] produces the same
//! per-chunk results for any worker count — the scheduling only decides
//! *who* computes a chunk, never *what* the chunk computes.

pub mod json;
pub mod metrics;
pub mod par;
pub mod pool;
pub mod ring;
pub mod rng;

pub use json::Json;
pub use metrics::MetricsRegistry;
pub use rng::{Rng, SmallRng, SplitMix64, StdRng, Xoshiro256StarStar};
