//! A small JSON value tree with writer and parser.
//!
//! Covers exactly what the workspace needs for experiment-result
//! serialization: building values programmatically, rendering compact or
//! pretty text, and parsing text back (round trips preserve object key
//! order). Not a general serde replacement — no derive, no zero-copy —
//! but also no dependencies.
//!
//! # Examples
//!
//! ```
//! use pmck_rt::Json;
//!
//! let mut obj = Json::object();
//! obj.set("workload", "btree");
//! obj.set("ops", 200_000u64);
//! obj.set("norm_perf", 0.97);
//! let text = obj.dump();
//! assert_eq!(Json::parse(&text).unwrap(), obj);
//! assert_eq!(obj.get("workload").and_then(Json::as_str), Some("btree"));
//! ```

use std::fmt;

/// A JSON value.
///
/// Numbers keep their source flavor (`I64`/`U64`/`F64`) so `u64`
/// counters survive a round trip exactly; equality treats numerically
/// equal integers of either sign flavor as equal.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        use Json::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (I64(a), U64(b)) | (U64(b), I64(a)) => u64::try_from(*a).is_ok_and(|a| a == *b),
            (Str(a), Str(b)) => a == b,
            (Arr(a), Arr(b)) => a == b,
            (Obj(a), Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Creates an empty array.
    pub fn array() -> Json {
        Json::Arr(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Self {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Appends to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Json>) -> &mut Self {
        let Json::Arr(items) = self else {
            panic!("Json::push on a non-array");
        };
        items.push(value.into());
        self
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::I64(v) => Some(*v as f64),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders compact JSON text.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON text (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::I64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::U64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    write_escaped(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// Writes an `f64` the way serde_json does: shortest round-trip text,
/// `null` for non-finite values, and a trailing `.0` distinguishing
/// float-typed whole numbers from integers.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::F64(v as f64)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

macro_rules! impl_from_int {
    ($($t:ty => $variant:ident as $as:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                Json::$variant(v as $as)
            }
        }
    )*};
}
impl_from_int!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64
);

/// Conversion into the [`Json`] tree, for result structs.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the input where it was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if len == 0 || end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_dumps() {
        let mut o = Json::object();
        o.set("name", "fig07")
            .set("trials", 400_000u64)
            .set("p", 2e-4);
        o.set("ok", true).set("note", Json::Null);
        let mut arr = Json::array();
        arr.push(1u32).push(2u32).push(3u32);
        o.set("counts", arr);
        assert_eq!(
            o.dump(),
            r#"{"name":"fig07","trials":400000,"p":0.0002,"ok":true,"note":null,"counts":[1,2,3]}"#
        );
    }

    #[test]
    fn round_trips() {
        let src = Json::object()
            .with("s", "a \"quoted\"\nline\twith \\ unicode é✓")
            .with("neg", -42i64)
            .with("big", u64::MAX)
            .with("f", 1.5e-9)
            .with("whole_float", 2.0)
            .with("arr", vec![Json::Bool(false), Json::Null])
            .with("nested", Json::object().with("k", 7u8));
        let parsed = Json::parse(&src.dump()).unwrap();
        assert_eq!(parsed, src);
        let parsed_pretty = Json::parse(&src.pretty()).unwrap();
        assert_eq!(parsed_pretty, src);
    }

    #[test]
    fn float_flavor_survives() {
        let j = Json::parse("[2.0, 2, -3]").unwrap();
        let items = j.as_array().unwrap();
        assert_eq!(items[0], Json::F64(2.0));
        assert_eq!(items[1], Json::U64(2));
        assert_eq!(items[2], Json::I64(-3));
        assert_eq!(j.dump(), "[2.0,2,-3]");
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let j = Json::parse(r#""\u00e9 \ud83d\ude00 \n""#).unwrap();
        assert_eq!(j.as_str(), Some("é 😀 \n"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"\\q\"", "{} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::F64(f64::NAN).dump(), "null");
        assert_eq!(Json::F64(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut o = Json::object();
        o.set("k", 1u8);
        o.set("k", 2u8);
        assert_eq!(o.dump(), r#"{"k":2}"#);
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"a":1,"b":-2,"c":1.5,"d":"x","e":[true]}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(j.get("b").unwrap().as_i64(), Some(-2));
        assert_eq!(j.get("b").unwrap().as_u64(), None);
        assert_eq!(j.get("c").unwrap().as_f64(), Some(1.5));
        assert_eq!(j.get("d").unwrap().as_str(), Some("x"));
        assert_eq!(
            j.get("e").unwrap().as_array().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(j.get("zz").is_none());
    }
}
