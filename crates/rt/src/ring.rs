//! Lock-free fixed-capacity rings and a spin-then-park parker.
//!
//! The service plane moves every request and response through these
//! rings instead of `Mutex`+`Condvar` mailboxes: a producer thread and a
//! shard worker exchange work through an [`spsc`] pair (one atomic store
//! per push/pop in the steady state), and many threads funnel telemetry
//! samples into one collector through an [`mpsc`] ring. Everything is
//! `std` atomics only — no external crates, no allocation after
//! construction.
//!
//! Three design points, borrowed from the llfree-rs school of
//! dependency-free atomics:
//!
//! * **Cache-line padding.** The producer index, the consumer index,
//!   and each side's cached view of the other live on distinct 64-byte
//!   lines ([`CachePadded`]), so a push never steals the popper's line.
//! * **Cached peer indices.** The SPSC producer re-reads the consumer's
//!   index only when its cached copy says the ring *looks* full (and
//!   symmetrically for the consumer), so the common case touches one
//!   shared line, not two.
//! * **Parking is a separate concern.** The rings themselves never
//!   block; [`Parker`]/[`Unparker`] implement the spin-then-park
//!   admission control on top (an atomic handshake that only falls back
//!   to a `Mutex`+`Condvar` sleep after the caller has exhausted its
//!   spin budget).
//!
//! # Examples
//!
//! ```
//! use pmck_rt::ring::spsc;
//!
//! let (mut tx, mut rx) = spsc::<u64>(8);
//! for v in 0..8 {
//!     tx.try_push(v).unwrap();
//! }
//! assert!(tx.try_push(99).is_err()); // full: capacity is exact
//! assert_eq!(rx.try_pop(), Some(0));
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Pads (and aligns) a value to a 64-byte cache line so neighboring
/// atomics never share a line (false sharing).
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct CachePadded<T>(pub T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// The shared core of one SPSC ring: a slot array plus the two indices.
///
/// Indices count *pushes/pops ever made* (monotonic, wrapping mod
/// 2^usize); slot for operation `i` is `i & (cap - 1)`. With capacity a
/// power of two and both counters monotonic, `head - tail` is the exact
/// queue length even across wrap-around.
struct SpscCore<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Total pushes (owned by the producer, read by the consumer).
    head: CachePadded<AtomicUsize>,
    /// Total pops (owned by the consumer, read by the producer).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the producer half writes slots only between claiming them
// (head not yet published) and publishing head with Release; the
// consumer reads them only after observing that head with Acquire. Each
// slot is therefore accessed by exactly one side at a time.
unsafe impl<T: Send> Send for SpscCore<T> {}
unsafe impl<T: Send> Sync for SpscCore<T> {}

impl<T> Drop for SpscCore<T> {
    fn drop(&mut self) {
        // Both halves are gone; drain whatever is still queued.
        let head = self.head.load(Ordering::Relaxed);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            let slot = &self.buf[tail & self.mask];
            // SAFETY: slots in [tail, head) were initialized by pushes
            // and never popped.
            unsafe { (*slot.get()).assume_init_drop() };
            tail = tail.wrapping_add(1);
        }
    }
}

/// The producing half of an SPSC ring. `!Clone`; exactly one thread may
/// hold it (it is `Send`, so that thread can change).
pub struct SpscProducer<T> {
    core: Arc<SpscCore<T>>,
    /// Producer-private copy of `head` (saves an atomic load per push).
    head: usize,
    /// Cached view of the consumer's `tail`; refreshed only when the
    /// ring looks full.
    tail_cache: usize,
}

/// The consuming half of an SPSC ring.
pub struct SpscConsumer<T> {
    core: Arc<SpscCore<T>>,
    /// Consumer-private copy of `tail`.
    tail: usize,
    /// Cached view of the producer's `head`; refreshed only when the
    /// ring looks empty.
    head_cache: usize,
}

/// Creates an SPSC ring holding up to `capacity` items (rounded up to a
/// power of two, minimum 1). The two halves are independent values; move
/// one to the consuming thread.
pub fn spsc<T>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let core = Arc::new(SpscCore {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        SpscProducer {
            core: Arc::clone(&core),
            head: 0,
            tail_cache: 0,
        },
        SpscConsumer {
            core,
            tail: 0,
            head_cache: 0,
        },
    )
}

impl<T> SpscProducer<T> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.core.mask + 1
    }

    /// Items currently queued, as seen from the producer side (exact:
    /// the producer owns `head`, and `tail` only ever grows).
    pub fn len(&mut self) -> usize {
        self.tail_cache = self.core.tail.load(Ordering::Acquire);
        self.head.wrapping_sub(self.tail_cache)
    }

    /// Whether the ring is empty from the producer's view.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Free slots guaranteed available to this producer right now.
    pub fn free(&mut self) -> usize {
        self.capacity() - self.len()
    }

    /// Pushes `v`, or returns it if the ring is full. Never blocks; one
    /// Release store in the common case.
    pub fn try_push(&mut self, v: T) -> Result<(), T> {
        let cap = self.core.mask + 1;
        if self.head.wrapping_sub(self.tail_cache) == cap {
            // Looks full through the cache; refresh the real tail once.
            self.tail_cache = self.core.tail.load(Ordering::Acquire);
            if self.head.wrapping_sub(self.tail_cache) == cap {
                return Err(v);
            }
        }
        let slot = &self.core.buf[self.head & self.core.mask];
        // SAFETY: slot `head` is unoccupied (head - tail < cap) and the
        // consumer cannot read it until the Release store below.
        unsafe { (*slot.get()).write(v) };
        self.head = self.head.wrapping_add(1);
        self.core.head.store(self.head, Ordering::Release);
        Ok(())
    }

    /// True once the consumer half has been dropped (pushes can still
    /// succeed but will never be observed).
    pub fn is_abandoned(&self) -> bool {
        Arc::strong_count(&self.core) == 1
    }
}

impl<T> SpscConsumer<T> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.core.mask + 1
    }

    /// Items currently queued, as seen from the consumer side.
    pub fn len(&mut self) -> usize {
        self.head_cache = self.core.head.load(Ordering::Acquire);
        self.head_cache.wrapping_sub(self.tail)
    }

    /// Whether the ring is empty from the consumer's view.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Pops the oldest item, or `None` if the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.head_cache == self.tail {
            // Looks empty through the cache; refresh the real head once.
            self.head_cache = self.core.head.load(Ordering::Acquire);
            if self.head_cache == self.tail {
                return None;
            }
        }
        let slot = &self.core.buf[self.tail & self.core.mask];
        // SAFETY: head > tail, so slot `tail` holds an initialized item
        // published by the producer's Release store (paired with the
        // Acquire load of `head` above).
        let v = unsafe { (*slot.get()).assume_init_read() };
        self.tail = self.tail.wrapping_add(1);
        self.core.tail.store(self.tail, Ordering::Release);
        Some(v)
    }

    /// True once the producer half has been dropped; combined with
    /// [`SpscConsumer::try_pop`] returning `None` this means no item
    /// will ever arrive again.
    pub fn is_abandoned(&self) -> bool {
        Arc::strong_count(&self.core) == 1
    }
}

/// The shared core of the MPSC ring: a Vyukov-style bounded queue with
/// per-slot sequence numbers, restricted to one consumer.
///
/// Producers claim a slot by CAS on `head`, write the payload, then
/// publish by bumping the slot's sequence; the consumer spins past
/// slots whose payload is still being written only in the sense that
/// `try_pop` reports "empty" until the claimed slot is published —
/// there is no blocking anywhere.
struct MpscCore<T> {
    buf: Box<[MpscSlot<T>]>,
    mask: usize,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
}

struct MpscSlot<T> {
    /// Slot state: `seq == index` ⇒ free for the producer claiming
    /// `index`; `seq == index + 1` ⇒ holds the payload for pop `index`.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

unsafe impl<T: Send> Send for MpscCore<T> {}
unsafe impl<T: Send> Sync for MpscCore<T> {}

impl<T> Drop for MpscCore<T> {
    fn drop(&mut self) {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[tail & self.mask];
            if slot.seq.load(Ordering::Relaxed) != tail.wrapping_add(1) {
                break;
            }
            // SAFETY: published and never popped.
            unsafe { (*slot.val.get()).assume_init_drop() };
            tail = tail.wrapping_add(1);
        }
    }
}

/// A producing handle to an MPSC ring; `Clone` to hand to more threads.
pub struct MpscProducer<T> {
    core: Arc<MpscCore<T>>,
}

impl<T> Clone for MpscProducer<T> {
    fn clone(&self) -> Self {
        MpscProducer {
            core: Arc::clone(&self.core),
        }
    }
}

/// The single consuming half of an MPSC ring.
pub struct MpscConsumer<T> {
    core: Arc<MpscCore<T>>,
}

/// Creates an MPSC ring holding up to `capacity` items (rounded up to a
/// power of two, minimum 2 — a Vyukov ring needs distinct free/busy
/// sequence values per slot).
pub fn mpsc<T>(capacity: usize) -> (MpscProducer<T>, MpscConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[MpscSlot<T>]> = (0..cap)
        .map(|i| MpscSlot {
            seq: AtomicUsize::new(i),
            val: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let core = Arc::new(MpscCore {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        MpscProducer {
            core: Arc::clone(&core),
        },
        MpscConsumer { core },
    )
}

impl<T> MpscProducer<T> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.core.mask + 1
    }

    /// Pushes `v` from any thread, or returns it if the ring is full.
    /// Lock-free: a stalled competitor cannot make this spin.
    pub fn try_push(&self, v: T) -> Result<(), T> {
        let core = &*self.core;
        let mut head = core.head.load(Ordering::Relaxed);
        loop {
            let slot = &core.buf[head & core.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head {
                // Slot free for this index: claim it.
                match core.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS makes this thread the unique
                        // owner of slot `head` until the seq publish.
                        unsafe { (*slot.val.get()).write(v) };
                        slot.seq.store(head.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => head = actual,
                }
            } else if seq.wrapping_sub(head) as isize > 0 {
                // Someone else claimed this index; advance.
                head = core.head.load(Ordering::Relaxed);
            } else {
                // seq lags the index: the slot still holds an unpopped
                // item from one lap ago — the ring is full.
                return Err(v);
            }
        }
    }
}

impl<T> MpscConsumer<T> {
    /// Pops the oldest published item, or `None` if the ring is empty
    /// (or the next slot's payload is still being written).
    pub fn try_pop(&mut self) -> Option<T> {
        let core = &*self.core;
        let tail = core.tail.load(Ordering::Relaxed);
        let slot = &core.buf[tail & core.mask];
        if slot.seq.load(Ordering::Acquire) != tail.wrapping_add(1) {
            return None;
        }
        // SAFETY: seq == tail + 1 means the payload is published and
        // this is the only consumer.
        let v = unsafe { (*slot.val.get()).assume_init_read() };
        // Mark the slot free for the producer one lap ahead.
        slot.seq
            .store(tail.wrapping_add(core.mask + 1), Ordering::Release);
        core.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// `true` once every producer handle has been dropped. Items already
    /// published are still poppable; combined with an empty ring this
    /// means the stream is finished.
    pub fn is_abandoned(&self) -> bool {
        Arc::strong_count(&self.core) == 1
    }
}

const PARKER_EMPTY: u8 = 0;
const PARKER_PARKED: u8 = 1;
const PARKER_NOTIFIED: u8 = 2;

struct ParkerCore {
    state: AtomicU8,
    lock: Mutex<()>,
    cv: Condvar,
}

/// The sleeping half of a spin-then-park handshake.
///
/// The intended protocol (both the shard workers and blocked producers
/// use it):
///
/// 1. spin: retry the lock-free operation a bounded number of times;
/// 2. announce: publish "I may sleep" (e.g. a `sleeping` flag), then
///    **re-check the condition** — this closes the lost-wakeup race
///    because every notifier calls [`Unparker::unpark`] *after* making
///    the condition true;
/// 3. park: [`Parker::park`] sleeps until someone unparks, consuming at
///    most one token (a token posted while awake makes the next park
///    return immediately, so notify-before-park is never lost).
pub struct Parker {
    core: Arc<ParkerCore>,
}

/// The waking half; `Clone` to hand to any number of notifiers.
pub struct Unparker {
    core: Arc<ParkerCore>,
}

impl Clone for Unparker {
    fn clone(&self) -> Self {
        Unparker {
            core: Arc::clone(&self.core),
        }
    }
}

impl Default for Parker {
    fn default() -> Self {
        Parker::new()
    }
}

impl Parker {
    /// A fresh parker with no pending token.
    pub fn new() -> Self {
        Parker {
            core: Arc::new(ParkerCore {
                state: AtomicU8::new(PARKER_EMPTY),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            }),
        }
    }

    /// A waking handle for this parker.
    pub fn unparker(&self) -> Unparker {
        Unparker {
            core: Arc::clone(&self.core),
        }
    }

    /// Sleeps until an unpark token arrives; returns immediately if one
    /// is already pending. Spurious returns are possible and benign
    /// (callers loop on their real condition).
    pub fn park(&self) {
        let core = &*self.core;
        // Fast path: consume a pending token without the lock.
        if core.state.swap(PARKER_EMPTY, Ordering::Acquire) == PARKER_NOTIFIED {
            return;
        }
        let mut guard = core.lock.lock().unwrap_or_else(|e| e.into_inner());
        // Publish PARKED under the lock, unless a token raced in.
        if core
            .state
            .compare_exchange(
                PARKER_EMPTY,
                PARKER_PARKED,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_err()
        {
            // NOTIFIED won the race: consume it and return.
            core.state.store(PARKER_EMPTY, Ordering::Relaxed);
            return;
        }
        while core.state.load(Ordering::Relaxed) == PARKER_PARKED {
            guard = core.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        core.state.store(PARKER_EMPTY, Ordering::Relaxed);
    }
}

impl Unparker {
    /// Posts a wake token: wakes the parked thread, or makes the next
    /// [`Parker::park`] return immediately. Cheap when nobody sleeps
    /// (one atomic swap, no lock).
    pub fn unpark(&self) {
        let core = &*self.core;
        if core.state.swap(PARKER_NOTIFIED, Ordering::Release) == PARKER_PARKED {
            // The sleeper committed to the condvar; take the lock so
            // the notify cannot land between its check and wait.
            drop(core.lock.lock().unwrap_or_else(|e| e.into_inner()));
            core.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_fifo_and_boundaries() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        assert_eq!(rx.try_pop(), None);
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert_eq!(tx.try_push(4), Err(4));
        for v in 0..4 {
            assert_eq!(rx.try_pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn spsc_wraps_around_many_laps() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for round in 0..1000 {
            let burst = 1 + (round % 8) as u64;
            for _ in 0..burst {
                if tx.try_push(next_in).is_ok() {
                    next_in += 1;
                }
            }
            for _ in 0..(round % 5) {
                if let Some(v) = rx.try_pop() {
                    assert_eq!(v, next_out);
                    next_out += 1;
                }
            }
        }
        while let Some(v) = rx.try_pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    fn spsc_capacity_one() {
        let (mut tx, mut rx) = spsc::<String>(1);
        assert_eq!(tx.capacity(), 1);
        tx.try_push("a".into()).unwrap();
        assert_eq!(tx.try_push("b".into()), Err("b".into()));
        assert_eq!(rx.try_pop().as_deref(), Some("a"));
        tx.try_push("c".into()).unwrap();
        assert_eq!(rx.try_pop().as_deref(), Some("c"));
    }

    #[test]
    fn spsc_drops_queued_items() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = spsc::<D>(8);
        for _ in 0..5 {
            tx.try_push(D).unwrap();
        }
        drop(rx.try_pop()); // 1 drop via pop
        drop((tx, rx)); // 4 drops via ring teardown
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn spsc_abandonment_is_visible() {
        let (tx, mut rx) = spsc::<u8>(2);
        assert!(!rx.is_abandoned());
        drop(tx);
        assert!(rx.is_abandoned());
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn mpsc_single_thread_fifo() {
        let (tx, mut rx) = mpsc::<u32>(4);
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert_eq!(tx.try_push(9), Err(9));
        assert_eq!(rx.try_pop(), Some(0));
        tx.try_push(4).unwrap();
        for v in 1..5 {
            assert_eq!(rx.try_pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn mpsc_many_producers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 5_000;
        let (tx, mut rx) = mpsc::<u64>(64);
        let mut sum = 0u64;
        let mut seen = 0u64;
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        let mut v = p * PER + i;
                        loop {
                            match tx.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            while seen < PRODUCERS * PER {
                match rx.try_pop() {
                    Some(v) => {
                        sum += v;
                        seen += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
        let n = PRODUCERS * PER;
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn parker_token_before_park_is_not_lost() {
        let p = Parker::new();
        let u = p.unparker();
        u.unpark();
        u.unpark(); // tokens don't accumulate past one
        p.park(); // consumes the token, returns immediately
        let woke = std::sync::Arc::new(AtomicUsize::new(0));
        let woke2 = std::sync::Arc::clone(&woke);
        std::thread::scope(|s| {
            let u = p.unparker();
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                woke2.store(1, Ordering::SeqCst);
                u.unpark();
            });
            // Parks until the real wake arrives (spurious wakes loop).
            while woke.load(Ordering::SeqCst) == 0 {
                p.park();
            }
        });
    }
}
