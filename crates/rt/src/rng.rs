//! Deterministic pseudo-random number generation.
//!
//! The workspace's randomness needs are Monte-Carlo shaped: billions of
//! uniform draws, geometric gap sampling for RBER bit-flip injection, and
//! reproducible streams that can be split across worker threads. Two
//! generators cover all of it:
//!
//! * [`SplitMix64`] — a 64-bit state mixer used for seeding and for
//!   deriving independent per-chunk streams.
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman/Vigna
//!   xoshiro256\*\*, period 2²⁵⁶−1), aliased as [`StdRng`]/[`SmallRng`].
//!
//! The [`Rng`] trait carries the sampling surface (`gen`, `gen_range`,
//! `gen_bool`, `fill_bytes`, `binomial`, …) so simulator code can stay
//! generic over the generator, exactly as it was over `rand::Rng`.
//!
//! # Examples
//!
//! ```
//! use pmck_rt::rng::{Rng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let byte: u8 = rng.gen();
//! let die = rng.gen_range(1..=6u32);
//! let coin = rng.gen_bool(0.5);
//! assert!((1..=6).contains(&die));
//! let _ = (byte, coin);
//! ```

/// SplitMix64 (Steele/Lea/Flood): a tiny, well-mixed 64-bit generator.
///
/// Used to expand a single `u64` seed into xoshiro state words and to
/// derive independent streams for parallel Monte-Carlo chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment used by SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// xoshiro256\*\* (Blackman/Vigna): fast, high-quality, 256-bit state.
///
/// This is the workspace's standard generator; [`StdRng`] and
/// [`SmallRng`] are aliases for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's default generator.
pub type StdRng = Xoshiro256StarStar;

/// Alias kept for call sites that want a cheap thread-local generator;
/// xoshiro256\*\* is already small and fast.
pub type SmallRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state from a single `u64` via SplitMix64, the
    /// seeding procedure recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Derives the generator for stream `stream` of master seed `seed`.
    ///
    /// For a fixed `seed`, distinct streams are seeded from distinct
    /// SplitMix64 states, giving statistically independent sequences;
    /// [`crate::par::mc_chunks`] uses one stream per Monte-Carlo chunk so
    /// results do not depend on which thread runs which chunk.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
        Self::seed_from_u64(stream_seed(seed, stream))
    }

    /// Returns the next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

/// The derived `u64` seed for stream `stream` of master seed `seed` —
/// the same derivation [`Xoshiro256StarStar::from_seed_stream`] uses.
///
/// Exposed so components that seed *sub*-systems per stream (e.g. one
/// `Stack` per shard in `pmck-service`) can reproduce a shard's seed
/// exactly when replaying its request stream sequentially.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    // Mix the stream index through one SplitMix64 step so that
    // (seed, stream) and (seed + k·GAMMA, 0) cannot collide for the
    // small stream indices used in practice.
    seed ^ SplitMix64::new(stream).next_u64()
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniformly samples one value of `Self` from an [`Rng`] — the glue
/// behind [`Rng::gen`].
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                // Truncation of a uniform u64 is uniform.
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// An integer type usable with [`Rng::gen_range`]; the `u64` round trip
/// is modular, so signed offsets work out via wrapping arithmetic.
pub trait UniformInt: Copy + PartialOrd {
    /// Converts to `u64` (sign-extending for signed types).
    fn to_u64(self) -> u64;
    /// Converts back from `u64` (truncating).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Single generic impls (rather than one per type) so an unsuffixed
// literal like `0..72` unifies with the use site's type instead of
// falling back to `i32`.
impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        let off = uniform_below(rng, span);
        T::from_u64(self.start.to_u64().wrapping_add(off))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let span = hi.to_u64().wrapping_sub(lo.to_u64());
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        let off = uniform_below(rng, span + 1);
        T::from_u64(lo.to_u64().wrapping_add(off))
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::random(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Uniform draw from `[0, n)` by Lemire's multiply-with-rejection; exact
/// (no modulo bias). `n == 0` means the full 64-bit range.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    if n == 0 {
        return rng.next_u64();
    }
    let mut m = (rng.next_u64() as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// The sampling interface shared by all generators.
///
/// Only [`Rng::next_u64`] is required; everything else is derived from
/// it, so any implementor automatically gets the full surface.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly distributed bits (the upper half of
    /// [`Rng::next_u64`], which carries the best-mixed bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range` (`lo..hi` or `lo..=hi` for
    /// integers, `lo..hi` for `f64`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        f64::random(self) < p
    }

    /// Samples a Binomial(n, p) count of successes.
    ///
    /// Uses geometric gap sampling (cost proportional to the number of
    /// successes, not to `n`), which is exactly the regime of RBER
    /// bit-flip injection: huge `n`, tiny `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn binomial(&mut self, n: u64, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "binomial: p={p} outside [0, 1]");
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Flip to the rarer outcome so the expected work is min(np, nq).
        if p > 0.5 {
            return n - self.binomial(n, 1.0 - p);
        }
        let ln_q = (1.0 - p).ln();
        let mut successes = 0u64;
        let mut pos = 0u64;
        loop {
            let gap = geometric_gap(self, ln_q);
            if gap >= (n - pos) as f64 {
                return successes;
            }
            pos += gap as u64;
            successes += 1;
            pos += 1;
            if pos >= n {
                return successes;
            }
        }
    }
}

/// Draws the Geometric(p) number of failures before the next success,
/// given `ln_q = ln(1 - p)`; may be `+inf`.
fn geometric_gap<R: Rng + ?Sized>(rng: &mut R, ln_q: f64) -> f64 {
    let u = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let gap = (u.ln() / ln_q).floor();
    if gap.is_finite() {
        gap
    } else {
        f64::INFINITY
    }
}

/// A pre-validated Bernoulli(p) sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a sampler that fires with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Bernoulli: p={p} outside [0, 1]");
        Bernoulli { p }
    }

    /// Draws one trial.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_spread() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            seen.insert(v);
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn streams_are_distinct() {
        let mut s0 = StdRng::from_seed_stream(7, 0);
        let mut s1 = StdRng::from_seed_stream(7, 1);
        let same = (0..64).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..1000 {
            let v = rng.gen_range(10..=12u64);
            assert!((10..=12).contains(&v));
            let f = rng.gen_range(2.5..3.0f64);
            assert!((2.5..3.0).contains(&f));
            let s = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_min_positive_open_unit() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
        // Determinism: same seed, same bytes.
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn binomial_mean_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let (n, p) = (576u64, 2e-4);
        let trials = 200_000;
        let total: u64 = (0..trials).map(|_| rng.binomial(n, p)).sum();
        let mean = total as f64 / trials as f64;
        let expect = n as f64 * p;
        assert!(
            (mean / expect - 1.0).abs() < 0.05,
            "mean {mean} vs {expect}"
        );
        assert_eq!(rng.binomial(0, 0.5), 0);
        assert_eq!(rng.binomial(10, 0.0), 0);
        assert_eq!(rng.binomial(10, 1.0), 10);
    }

    #[test]
    fn binomial_high_p_flips() {
        let mut rng = StdRng::seed_from_u64(13);
        let total: u64 = (0..10_000).map(|_| rng.binomial(100, 0.9)).sum();
        let mean = total as f64 / 10_000.0;
        assert!((mean - 90.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn generic_rng_via_mut_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u8 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let _ = draw(&mut rng);
        let _ = draw(&mut &mut rng);
    }

    #[test]
    fn bernoulli_sampler() {
        let b = Bernoulli::new(0.25);
        let mut rng = StdRng::seed_from_u64(21);
        let hits = (0..40_000).filter(|_| b.sample(&mut rng)).count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
