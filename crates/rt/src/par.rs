//! Deterministic chunked parallelism for Monte-Carlo campaigns.
//!
//! The scheduling invariant everything here preserves: *worker count and
//! thread interleaving decide only who computes a chunk, never what the
//! chunk computes*. Each chunk owns an index-derived RNG stream
//! ([`crate::rng::Xoshiro256StarStar::from_seed_stream`]) and results are
//! returned in chunk order, so a campaign run with 1 worker and with 32
//! workers produces bit-identical output.
//!
//! # Examples
//!
//! ```
//! use pmck_rt::par;
//! use pmck_rt::rng::Rng;
//!
//! // 100k Bernoulli(0.25) trials in 8 chunks, summed — identical for
//! // any worker count.
//! let count = |workers: usize| -> u64 {
//!     par::mc_chunks(100_000, 12_500, workers, 42, |rng, trials| {
//!         (0..trials).filter(|_| rng.gen_bool(0.25)).count() as u64
//!     })
//!     .into_iter()
//!     .sum()
//! };
//! assert_eq!(count(1), count(8));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::rng::StdRng;

/// The number of workers to use by default: the machine's available
/// parallelism (1 if it cannot be queried).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Computes `f(0), f(1), …, f(n-1)` on `workers` scoped threads and
/// returns the results in index order.
///
/// Work is distributed by an atomic work-stealing counter, so uneven
/// item costs balance automatically; determinism comes from keying every
/// result to its index, not to its thread.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map_indexed<U, F>(n: usize, workers: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pmck-rt par worker panicked"))
            .collect()
    });
    let mut all: Vec<(usize, U)> = parts.into_iter().flatten().collect();
    all.sort_unstable_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, v)| v).collect()
}

/// Parallel map over a slice; results are in item order.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), workers, |i| f(&items[i]))
}

/// Runs a Monte-Carlo campaign of `total_trials` trials split into
/// chunks of (at most) `chunk_trials`, in parallel on `workers` threads.
///
/// Chunk `c` receives a fresh RNG derived from `(seed, c)` and its trial
/// count, and produces one accumulator value; the per-chunk results come
/// back in chunk order. Because the chunking depends only on
/// `(total_trials, chunk_trials, seed)`, the output is bit-identical at
/// any worker count — the determinism contract the fig07/appendix
/// experiments and their tests rely on.
///
/// # Panics
///
/// Panics if `chunk_trials == 0`.
pub fn mc_chunks<A, F>(
    total_trials: u64,
    chunk_trials: u64,
    workers: usize,
    seed: u64,
    f: F,
) -> Vec<A>
where
    A: Send,
    F: Fn(&mut StdRng, u64) -> A + Sync,
{
    assert!(chunk_trials > 0, "mc_chunks: chunk_trials must be > 0");
    let n_chunks = total_trials.div_ceil(chunk_trials);
    let n_chunks = usize::try_from(n_chunks).expect("mc_chunks: too many chunks");
    par_map_indexed(n_chunks, workers, |c| {
        let start = c as u64 * chunk_trials;
        let trials = chunk_trials.min(total_trials - start);
        let mut rng = StdRng::from_seed_stream(seed, c as u64);
        f(&mut rng, trials)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..103).collect();
        let doubled = par_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_handles_edges() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i), vec![0]);
        assert_eq!(par_map_indexed(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(par_map_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn mc_chunks_identical_across_worker_counts() {
        let run = |workers| {
            mc_chunks(10_000, 512, workers, 7, |rng, trials| {
                (0..trials).map(|_| rng.gen_range(0..1000u64)).sum::<u64>()
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        // ceil(10000/512) = 20 chunks, last one short.
        assert_eq!(one.len(), 20);
    }

    #[test]
    fn mc_chunks_trial_counts_cover_total() {
        let counts = mc_chunks(1000, 300, 4, 0, |_, trials| trials);
        assert_eq!(counts, vec![300, 300, 300, 100]);
        let exact = mc_chunks(600, 300, 4, 0, |_, trials| trials);
        assert_eq!(exact, vec![300, 300]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items slow to force out-of-order completion.
        let out = par_map_indexed(32, 8, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * i
        });
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "chunk_trials must be > 0")]
    fn rejects_zero_chunk() {
        let _ = mc_chunks(10, 0, 1, 0, |_, _| ());
    }
}
