//! Round-trip properties for `pmck_rt::json` on the harness runner:
//! `parse ∘ dump` and `parse ∘ pretty` are the identity on generated
//! value trees, including escape-heavy strings, nested arrays/objects,
//! and both integer flavors.

use pmck_harness::{JsonCase, Runner};
use pmck_rt::Json;

#[test]
fn parse_after_dump_is_identity() {
    Runner::new("rt:json:roundtrip-compact")
        .seed(0xD0C)
        .cases(3000)
        .run(
            |rng| JsonCase::generate(rng, 4),
            |case| {
                let text = case.0.dump();
                match Json::parse(&text) {
                    Ok(back) if back == case.0 => Ok(()),
                    Ok(back) => Err(format!(
                        "round trip changed the value: {text} reparsed as {}",
                        back.dump()
                    )),
                    Err(e) => Err(format!("reparse failed on {text}: {e}")),
                }
            },
        );
}

#[test]
fn parse_after_pretty_is_identity() {
    Runner::new("rt:json:roundtrip-pretty")
        .seed(0xD0D)
        .cases(3000)
        .run(
            |rng| JsonCase::generate(rng, 4),
            |case| {
                let text = case.0.pretty();
                match Json::parse(&text) {
                    Ok(back) if back == case.0 => Ok(()),
                    Ok(back) => Err(format!(
                        "pretty round trip changed the value: {} vs {}",
                        case.0.dump(),
                        back.dump()
                    )),
                    Err(e) => Err(format!("reparse of pretty output failed: {e}")),
                }
            },
        );
}

#[test]
fn dump_and_pretty_parse_to_the_same_value() {
    Runner::new("rt:json:dump-pretty-agree")
        .seed(0xD0E)
        .cases(1000)
        .run(
            |rng| JsonCase::generate(rng, 3),
            |case| {
                let compact = Json::parse(&case.0.dump()).map_err(|e| e.to_string())?;
                let pretty = Json::parse(&case.0.pretty()).map_err(|e| e.to_string())?;
                if compact == pretty {
                    Ok(())
                } else {
                    Err("compact and pretty renderings disagree after parsing".into())
                }
            },
        );
}
