//! Seeded multi-thread stress for the lock-free rings.
//!
//! The unit tests in `ring.rs` pin the single-threaded contracts; these
//! tests hammer the concurrent ones: a producer and consumer running
//! flat out across millions of wrap-arounds must deliver every value
//! exactly once, in order, for any capacity — including the degenerate
//! capacity-1 ring, which wraps on every push and so exercises the
//! index arithmetic hardest. Payloads carry a seeded checksum so a
//! torn or duplicated slot read shows up as a value mismatch, not just
//! a count mismatch.

use std::thread;

use pmck_rt::ring::{mpsc, spsc, Parker};
use pmck_rt::rng::{stream_seed, Rng, StdRng};

/// A payload whose fields are mutually checked: `check` is a function
/// of `seq` and the stream seed, so any slot-level tearing (reading a
/// half-written payload) or duplication is caught by value, not count.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Sealed {
    seq: u64,
    check: u64,
}

fn seal(seed: u64, seq: u64) -> Sealed {
    Sealed {
        seq,
        check: seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed,
    }
}

/// SPSC: every capacity (1, 2, 7→8, 64) delivers a long seeded stream
/// exactly once, in order, under concurrent push/pop.
#[test]
fn spsc_stress_delivers_in_order_across_wraps() {
    for (cap, items) in [
        (1usize, 40_000u64),
        (2, 80_000),
        (7, 120_000),
        (64, 400_000),
    ] {
        let seed = stream_seed(0xA11CE, cap as u64);
        let (mut tx, mut rx) = spsc::<Sealed>(cap);
        let producer = thread::spawn(move || {
            let mut backoffs = 0u64;
            for seq in 0..items {
                let mut v = seal(seed, seq);
                loop {
                    match tx.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            backoffs += 1;
                            thread::yield_now();
                        }
                    }
                }
            }
            backoffs
        });
        let mut next = 0u64;
        while next < items {
            if let Some(got) = rx.try_pop() {
                assert_eq!(got, seal(seed, next), "cap {cap}: out of order or torn");
                next += 1;
            } else {
                thread::yield_now();
            }
        }
        assert_eq!(rx.try_pop(), None, "cap {cap}: ring must end empty");
        let backoffs = producer.join().unwrap();
        // A bounded ring must have pushed back at least once somewhere
        // in a 40k+ item run through a ≤64-slot buffer on one machine —
        // if not, the full check never ran and the test proved nothing.
        // (Not asserted: legal schedules exist where the consumer always
        // keeps up. Recorded for debugging instead.)
        let _ = backoffs;
    }
}

/// SPSC full/empty edges: a capacity-`n` ring accepts exactly `n`
/// pushes when undrained, reports `len`/`free` consistently at every
/// fill level, and round-trips the rejected value back to the caller.
#[test]
fn spsc_full_and_empty_edges_are_exact() {
    for cap in [1usize, 2, 4, 8] {
        let (mut tx, mut rx) = spsc::<u64>(cap);
        assert_eq!(tx.capacity(), cap);
        for i in 0..cap as u64 {
            assert_eq!(tx.free(), cap - i as usize);
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.free(), 0);
        assert_eq!(tx.try_push(99), Err(99), "cap {cap}: full ring must reject");
        assert_eq!(rx.len(), cap);
        for i in 0..cap as u64 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
        assert_eq!(rx.len(), 0);
        // Interleave across the wrap point a few thousand times.
        for i in 0..5_000u64 {
            tx.try_push(i).unwrap();
            assert_eq!(rx.try_pop(), Some(i));
        }
    }
}

/// SPSC abandonment: dropping one side is visible to the other, and a
/// consumer can still drain values that were in flight at drop time.
#[test]
fn spsc_abandonment_is_visible_and_drainable() {
    let (mut tx, mut rx) = spsc::<u64>(8);
    tx.try_push(1).unwrap();
    tx.try_push(2).unwrap();
    assert!(!rx.is_abandoned());
    drop(tx);
    assert!(rx.is_abandoned());
    assert_eq!(rx.try_pop(), Some(1));
    assert_eq!(rx.try_pop(), Some(2));
    assert_eq!(rx.try_pop(), None);

    let (tx, rx) = spsc::<u64>(8);
    assert!(!tx.is_abandoned());
    drop(rx);
    assert!(tx.is_abandoned());
}

/// MPSC: four producers race 25k seeded items each through one ring;
/// the consumer must see every item exactly once and each producer's
/// sub-stream in FIFO order.
#[test]
fn mpsc_stress_keeps_per_producer_fifo() {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 25_000;
    let (tx, mut rx) = mpsc::<(u64, Sealed)>(32);
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let tx = tx.clone();
            thread::spawn(move || {
                let seed = stream_seed(0xB0B, p);
                // A touch of seeded jitter so the producers interleave
                // differently from run to run within the same schedule
                // space — the ordering assertions must hold regardless.
                let mut rng = StdRng::seed_from_u64(seed);
                for seq in 0..PER_PRODUCER {
                    let mut v = (p, seal(seed, seq));
                    loop {
                        match tx.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                thread::yield_now();
                            }
                        }
                    }
                    if rng.gen_range(0u32..64) == 0 {
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();
    drop(tx);
    let mut next = [0u64; PRODUCERS as usize];
    let mut total = 0u64;
    while total < PRODUCERS * PER_PRODUCER {
        if let Some((p, got)) = rx.try_pop() {
            let seed = stream_seed(0xB0B, p);
            let want = next[p as usize];
            assert_eq!(got, seal(seed, want), "producer {p} out of order or torn");
            next[p as usize] += 1;
            total += 1;
        } else {
            thread::yield_now();
        }
    }
    assert!(rx.try_pop().is_none());
    assert_eq!(next, [PER_PRODUCER; PRODUCERS as usize]);
    for h in handles {
        h.join().unwrap();
    }
}

/// SPSC and MPSC sharing threads: models the service topology, where a
/// worker drains an SPSC submission ring while pushing telemetry into a
/// shared MPSC ring. Both streams must stay internally FIFO.
#[test]
fn spsc_and_mpsc_compose_without_interference() {
    const ITEMS: u64 = 60_000;
    let (mut job_tx, mut job_rx) = spsc::<u64>(16);
    let (tel_tx, mut tel_rx) = mpsc::<u64>(16);
    // "Worker": drains jobs, reports every 16th to telemetry (lossy —
    // full telemetry is dropped, like the service's latency ring).
    let tel_tx2 = tel_tx.clone();
    let worker = thread::spawn(move || {
        let mut seen = 0u64;
        let mut dropped = 0u64;
        while seen < ITEMS {
            if let Some(v) = job_rx.try_pop() {
                assert_eq!(v, seen, "job stream out of order");
                if v % 16 == 0 && tel_tx2.try_push(v).is_err() {
                    dropped += 1;
                }
                seen += 1;
            } else {
                thread::yield_now();
            }
        }
        dropped
    });
    let producer = thread::spawn(move || {
        for mut v in 0..ITEMS {
            loop {
                match job_tx.try_push(v) {
                    Ok(()) => break,
                    Err(back) => {
                        v = back;
                        thread::yield_now();
                    }
                }
            }
        }
    });
    // The worker's clone is the only live producer now, so abandonment
    // below fires exactly when the worker finishes.
    drop(tel_tx);
    // Main thread consumes telemetry: values must be multiples of 16,
    // strictly increasing (per-producer FIFO with a single producer).
    let mut last: Option<u64> = None;
    let mut received = 0u64;
    loop {
        match tel_rx.try_pop() {
            Some(v) => {
                assert_eq!(v % 16, 0);
                assert!(last.is_none_or(|l| v > l), "telemetry reordered");
                last = Some(v);
                received += 1;
            }
            None => {
                if tel_rx.is_abandoned() {
                    break;
                }
                thread::yield_now();
            }
        }
    }
    let dropped = worker.join().unwrap();
    producer.join().unwrap();
    // Lossiness is allowed; losing *everything* is not.
    assert!(received > 0, "no telemetry got through");
    assert_eq!(received + dropped, ITEMS / 16);
}

/// Parker handshake under contention: a consumer that parks whenever
/// the ring is empty must still drain the full stream (no lost wakeup)
/// when the producer signals after every push.
#[test]
fn parked_consumer_never_loses_a_wakeup() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const ITEMS: u64 = 20_000;
    let (mut tx, mut rx) = spsc::<u64>(8);
    let parker = Parker::new();
    let unparker = parker.unparker();
    let sleeping = Arc::new(AtomicBool::new(false));
    let sleeping2 = Arc::clone(&sleeping);
    let consumer = thread::spawn(move || {
        let mut next = 0u64;
        while next < ITEMS {
            if let Some(v) = rx.try_pop() {
                assert_eq!(v, next);
                next += 1;
            } else {
                // Dekker-style: announce, re-check, then sleep.
                sleeping2.store(true, Ordering::SeqCst);
                if rx.is_empty() && next < ITEMS {
                    parker.park();
                }
                sleeping2.store(false, Ordering::SeqCst);
            }
        }
    });
    for mut v in 0..ITEMS {
        loop {
            match tx.try_push(v) {
                Ok(()) => break,
                Err(back) => {
                    v = back;
                    thread::yield_now();
                }
            }
        }
        if sleeping.load(Ordering::SeqCst) {
            unparker.unpark();
        }
    }
    // Belt and braces: one final wake covers a consumer that announced
    // after our last check.
    unparker.unpark();
    consumer.join().unwrap();
}
