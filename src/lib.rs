//! # pmck — chipkill-correct for persistent memory on high-density NVRAMs
//!
//! A full reproduction of *"Exploring and Optimizing Chipkill-correct for
//! Persistent Memory Based on High-density NVRAMs"* (Zhang, Sridharan,
//! Jian — MICRO 2018) as a Rust workspace. This facade crate re-exports
//! every subsystem:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`gf`] | `pmck-gf` | GF(2^m)/GF(2^8) arithmetic, polynomials |
//! | [`bch`] | `pmck-bch` | parametric binary BCH codec (the VLEWs) |
//! | [`rs`] | `pmck-rs` | RS(72,64) with erasures + threshold decoding |
//! | [`nvram`] | `pmck-nvram` | RBER retention curves, error injection |
//! | [`memsim`] | `pmck-memsim` | bank-timing memory controller + EUR |
//! | [`cachesim`] | `pmck-cachesim` | SAM/OMV LLC hierarchy |
//! | [`pmem`] | `pmck-pmem` | persistent media: flush/fence epochs, intent log |
//! | [`chipkill`] | `pmck-core` | **the proposal**: boot scrub + runtime path |
//! | [`service`] | `pmck-service` | sharded multi-threaded memory service front end |
//! | [`cluster`] | `pmck-cluster` | replicated multi-node tier: quorum reads, read-repair |
//! | [`workloads`] | `pmck-workloads` | WHISPER/SPLASH-style trace generators |
//! | [`analysis`] | `pmck-analysis` | storage/SDC/bandwidth analytics |
//! | [`sim`] | `pmck-sim` | full-system simulator (Figures 10–18) |
//! | [`rt`] | `pmck-rt` | runtime: deterministic RNG, JSON, parallel MC, metrics |
//!
//! The workspace has **zero third-party dependencies**: everything above
//! builds offline from `std` alone (see `pmck-rt`).
//!
//! # Quickstart
//!
//! ```
//! use pmck::chipkill::{ChipkillConfig, ChipkillMemory};
//!
//! let mut rng = pmck::rt::rng::StdRng::seed_from_u64(0);
//! let mut mem = ChipkillMemory::new(64, ChipkillConfig::default());
//! mem.write_block(0, &[7u8; 64]).unwrap();
//! mem.inject_bit_errors(1e-3, &mut rng);
//! mem.boot_scrub().unwrap();
//! assert_eq!(mem.read_block(0).unwrap().data, [7u8; 64]);
//! ```

pub use pmck_analysis as analysis;
pub use pmck_bch as bch;
pub use pmck_cachesim as cachesim;
pub use pmck_cluster as cluster;
pub use pmck_core as chipkill;
pub use pmck_gf as gf;
pub use pmck_memsim as memsim;
pub use pmck_nvram as nvram;
pub use pmck_pmem as pmem;
pub use pmck_rs as rs;
pub use pmck_rt as rt;
pub use pmck_service as service;
pub use pmck_sim as sim;
pub use pmck_workloads as workloads;
