//! Chipkill in action: a whole NVRAM chip dies mid-run.
//!
//! Shows the §V-B/§V-E failure lifecycle on both the proposal and the
//! bit-error-only baseline:
//!
//! 1. the proposal detects the failure (RS rejection → VLEW
//!    uncorrectable), erasure-corrects every read, and keeps serving;
//! 2. the operator then either rebuilds the chip in place or re-stripes
//!    VLEWs across the surviving chips (§V-E), dropping fallback cost
//!    from 36 fetched blocks to 4;
//! 3. the same failure destroys the baseline.
//!
//! ```text
//! cargo run --example chip_failure
//! ```

use pmck::chipkill::{
    BaselineMemory, ChipFailureKind, ChipkillConfig, ChipkillMemory, ReadPath, RestripedMemory,
};
use pmck_rt::rng::StdRng;

fn pattern(a: u64) -> [u8; 64] {
    let mut b = [0u8; 64];
    for (i, x) in b.iter_mut().enumerate() {
        *x = (a as u8).wrapping_mul(31) ^ (i as u8).wrapping_mul(7);
    }
    b
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let blocks = 256u64;

    // --- The proposal ---
    let mut mem = ChipkillMemory::new(blocks, ChipkillConfig::default());
    for a in 0..mem.num_blocks() {
        mem.write_block(a, &pattern(a)).expect("in range");
    }
    mem.inject_bit_errors(2e-4, &mut rng); // normal runtime errors too

    println!("killing chip 5 (random garbage output)…");
    mem.fail_chip(5, ChipFailureKind::RandomGarbage, &mut rng);

    let first = mem.read_block(0).expect("recovered");
    assert_eq!(first.data, pattern(0));
    println!("first read after failure: {:?} — data intact", first.path);
    assert_eq!(mem.detected_failed_chip(), Some(5));

    // Degraded mode: every read erasure-corrects through the parity chip.
    for a in 0..mem.num_blocks() {
        let out = mem.read_block(a).expect("degraded reads succeed");
        assert_eq!(out.data, pattern(a), "block {a}");
        assert!(matches!(out.path, ReadPath::ChipkillErasure { chip: 5 }));
    }
    println!("all {blocks} blocks served in degraded mode (erasure correction)");

    // Option A (§V-E): rebuild the chip in place.
    let mut rebuilt = mem.clone();
    rebuilt.repair_chip(5).expect("rebuild succeeds");
    assert!(rebuilt.verify_consistent());
    println!("option A: chip rebuilt in place; rank fully consistent again");

    // Option B (§V-E): remap onto the ECC chip and re-stripe VLEWs
    // across the survivors (4-block VLEW groups).
    let mut restriped = RestripedMemory::from_failed_rank(&mut mem).expect("restripe");
    restriped.inject_bit_errors(2e-4, &mut rng);
    for a in 0..restriped.num_blocks() {
        assert_eq!(restriped.read_block(a).expect("readable"), pattern(a));
    }
    println!(
        "option B: re-striped rank serves all blocks; corrections now fetch {} blocks instead of 36",
        restriped.blocks_fetched_per_correction()
    );

    // --- The baseline under the same failure ---
    let mut base = BaselineMemory::new(blocks);
    for a in 0..blocks {
        base.write_block(a, &pattern(a)).expect("in range");
    }
    base.fail_chip(5, ChipFailureKind::RandomGarbage, &mut rng);
    let lost = (0..blocks)
        .filter(|&a| match base.read_block(a) {
            Ok(out) => out.data != pattern(a), // a miscorrection = SDC
            Err(_) => true,
        })
        .count();
    println!("baseline (bit-error BCH only) under the same failure: {lost}/{blocks} blocks lost");
    assert!(lost > blocks as usize * 9 / 10);
    println!("chipkill-correct is the difference between a rebuild and a dead rank.");
}
