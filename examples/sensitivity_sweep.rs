//! Sensitivity study: how the proposal's overhead scales with the C
//! factor (the one free parameter of the iso-lifetime write slowing).
//!
//! The paper fixes C per workload by measurement (Figure 15); this sweep
//! decouples it, running the worst-case workload (`hashmap`) under PCM
//! latencies with C forced to each value in a grid — quantifying how much
//! of the worst case is attributable to write slowing versus the other
//! proposal mechanisms (OMV misses, fallback prefetch).
//!
//! ```text
//! cargo run --release --example sensitivity_sweep
//! ```

use pmck::sim::{NvramKind, Scheme, SimConfig, Simulator};
use pmck::workloads::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec::by_name("hashmap").expect("known workload");
    let mut cfg = SimConfig::quick(NvramKind::Pcm, Scheme::Baseline);
    cfg.warmup_ops = 60_000;
    cfg.measure_ops = 60_000;
    let seed = 42;

    let baseline = Simulator::run_workload(spec, cfg, seed);
    let base_perf = baseline.ops_per_ns();
    println!(
        "baseline (hashmap, PCM): {:.4} ops/ns, measured C would be {:.3}\n",
        base_perf, baseline.c_factor
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "C", "tWR mult", "norm. perf", "overhead"
    );
    for c in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let prop_cfg = SimConfig {
            scheme: Scheme::Proposal { c_factor: c },
            ..cfg
        };
        let r = Simulator::run_workload(spec, prop_cfg, seed);
        let norm = r.ops_per_ns() / base_perf;
        println!(
            "{:<8.2} {:>11.2}x {:>12.4} {:>11.1}%",
            c,
            1.0 + 33.0 / 8.0 * c,
            norm,
            (1.0 - norm) * 100.0
        );
    }
    println!(
        "\nEven at C=0 a small overhead remains (OMV misses + 0.02% VLEW\n\
         fallback prefetch); everything above that is iso-lifetime write\n\
         slowing — which is why the EUR's coalescing (lowering C) matters."
    );
}
