//! Wear-out handling (§V-E): Start-Gap wear leveling spreads hot writes,
//! worn blocks are disabled under the VLEW, and the rest of the stripe
//! stays fully protected.
//!
//! ```text
//! cargo run --example wear_and_disable
//! ```

use pmck::chipkill::{ChipkillConfig, ChipkillMemory, CoreError, WearLevelledMemory};
use pmck::nvram::{WearModel, WearState};
use pmck_rt::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let model = WearModel {
        endurance: 10_000,
        gamma: 3.0,
        p_max: 1.0,
    };
    let mut mem = ChipkillMemory::new(128, ChipkillConfig::default());
    let mut wear: Vec<WearState> = (0..mem.num_blocks()).map(|_| WearState::new()).collect();

    // Seed data.
    for a in 0..mem.num_blocks() {
        mem.write_block(a, &[a as u8; 64]).expect("in range");
    }

    // Hammer a handful of hot blocks; account amplified code-bit writes
    // exactly the way §V-E does (33B/8B extra per coalesced VLEW update).
    let hot = [7u64, 8, 9];
    for round in 0..9_000u64 {
        for &a in &hot {
            let val = [(round % 251) as u8; 64];
            mem.write_block(a, &val).expect("in range");
            wear[a as usize].record_writes(1 + 33 / 8);
        }
    }

    // Disable blocks whose wear-induced error probability crosses 1%.
    let mut disabled = Vec::new();
    for a in 0..mem.num_blocks() {
        if model.is_worn_out(wear[a as usize].writes(), 0.01) {
            mem.disable_block(a).expect("disable");
            wear[a as usize].disable();
            disabled.push(a);
        }
    }
    println!("disabled worn blocks: {disabled:?}");
    assert_eq!(disabled, hot);

    // Disabled blocks reject access…
    for &a in &hot {
        assert!(matches!(mem.read_block(a), Err(CoreError::Disabled(_))));
    }
    // …while their stripe remains fully protected: inject boot-level
    // errors and scrub.
    let injected = mem.inject_bit_errors(1e-3, &mut rng);
    let report = mem.boot_scrub().expect("scrub succeeds with holes");
    println!(
        "{injected} bits injected, {} corrected with {} disabled blocks in place",
        report.bits_corrected,
        disabled.len()
    );
    for a in 0..mem.num_blocks() {
        if disabled.contains(&a) {
            continue;
        }
        assert_eq!(mem.read_block(a).expect("readable").data, [a as u8; 64]);
    }
    assert!(mem.verify_consistent());
    println!("all surviving blocks intact; VLEWs consistent around the holes.");

    // --- Start-Gap wear leveling (§V-E, [87]) ---
    // The same hot-write hammering, but behind the remap layer: the hot
    // logical block rotates through many physical slots, dividing
    // per-cell wear by the rotation factor.
    let mut levelled = WearLevelledMemory::new(63, ChipkillConfig::default(), 8);
    let mut touched = std::collections::HashSet::new();
    for round in 0..4000u64 {
        touched.insert(levelled.physical_of(7));
        levelled
            .write_block(7, &[(round % 256) as u8; 64])
            .expect("in range");
    }
    println!(
        "start-gap: hot logical block 7 rotated through {} physical slots ({} gap moves)",
        touched.len(),
        levelled.gap_moves()
    );
    assert!(touched.len() >= 8);
    // Data integrity under leveling + errors.
    levelled.inner_mut().inject_bit_errors(2e-4, &mut rng);
    assert_eq!(
        levelled.read_block(7).expect("readable").data[0],
        ((4000 - 1) % 256) as u8
    );
    println!("levelled rank reads back the latest value through the remap + ECC stack.");
}
