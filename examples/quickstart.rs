//! Quickstart: the proposal in five minutes.
//!
//! Builds a small chipkill-protected persistent-memory rank, walks the
//! runtime read path (clean → RS-corrected → VLEW fallback), survives a
//! simulated power outage via the boot scrub, and survives a chip kill.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pmck::chipkill::{ChipFailureKind, ChipkillConfig, ChipkillMemory, ReadPath};
use pmck_rt::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // A rank of 9 NVRAM chips (8 data + 1 parity) holding 256 blocks.
    let mut mem = ChipkillMemory::new(256, ChipkillConfig::default());
    println!(
        "rank: {} blocks, {} stripes, storage cost {:.1}%",
        mem.num_blocks(),
        mem.stripes(),
        mem.layout().total_storage_cost() * 100.0
    );

    // Write a recognizable pattern.
    for a in 0..mem.num_blocks() {
        let mut block = [0u8; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (a as u8) ^ (i as u8);
        }
        mem.write_block(a, &block).expect("in range");
    }

    // Runtime: a refreshed system sees RBER ~2e-4; reads sail through the
    // per-block RS tier.
    mem.inject_bit_errors(2e-4, &mut rng);
    let mut paths = [0u32; 3];
    for a in 0..mem.num_blocks() {
        match mem.read_block(a).expect("correctable").path {
            ReadPath::Clean => paths[0] += 1,
            ReadPath::RsCorrected { .. } => paths[1] += 1,
            ReadPath::VlewFallback { .. } | ReadPath::VlewListDecoded { .. } => paths[2] += 1,
            ReadPath::ChipkillErasure { .. } | ReadPath::BitCorrected { .. } => {
                unreachable!("no chip failed and the proposal has no bit-only tier")
            }
        }
    }
    println!(
        "runtime reads: {} clean, {} RS-corrected, {} VLEW fallbacks",
        paths[0], paths[1], paths[2]
    );

    // A long outage: a week unrefreshed pushes RBER to ~1e-3. The boot
    // scrub decodes every VLEW and restores full consistency.
    let outage_rber = pmck::nvram::rber_at(pmck::nvram::MemoryTech::Pcm3Bit, 7.0 * 86400.0);
    let injected = mem.inject_bit_errors(outage_rber, &mut rng);
    let report = mem.boot_scrub().expect("scrub recovers");
    println!(
        "boot scrub after outage (RBER {outage_rber:.1e}): {injected} bits injected, {} corrected",
        report.bits_corrected
    );
    assert!(mem.verify_consistent());

    // Chipkill: kill a whole data chip; the first read detects it and
    // erasure-corrects through the parity chip.
    mem.fail_chip(3, ChipFailureKind::RandomGarbage, &mut rng);
    let out = mem.read_block(42).expect("erasure-corrected");
    println!("after chip 3 failure: read path {:?}", out.path);
    mem.repair_chip(3).expect("rebuild");
    println!("chip 3 rebuilt; consistent: {}", mem.verify_consistent());

    // All data still exactly what we wrote.
    for a in 0..mem.num_blocks() {
        let got = mem.read_block(a).expect("clean").data;
        for (i, b) in got.iter().enumerate() {
            assert_eq!(*b, (a as u8) ^ (i as u8));
        }
    }
    println!("all {} blocks verified — no data loss.", mem.num_blocks());
}
