//! Reliability design-space explorer.
//!
//! Sweeps RBER across the NVRAM operating range and prints, at each
//! point: the minimum ECC strengths, the storage cost of every scheme
//! from the paper's Figure 2/4 comparison, and the runtime SDC/fallback
//! trade-off of the threshold decoder — the full §III–§V design argument
//! as one table.
//!
//! ```text
//! cargo run --example reliability_explorer
//! ```

use pmck::analysis::schemes::ExtendedScheme;
use pmck::analysis::sdc::{fallback_fraction, sdc_rate};
use pmck::analysis::storage::{min_bch_t, vlew_plus_parity_cost};
use pmck::analysis::{SDC_TARGET, UE_TARGET};
use pmck::nvram::{rber_at, MemoryTech};

fn main() {
    println!("== NVRAM operating points (retention model) ==");
    for (label, tech, secs) in [
        ("ReRAM, refreshed (runtime)", MemoryTech::ReRam, 1.0),
        ("3-bit PCM, hourly refresh", MemoryTech::Pcm3Bit, 3600.0),
        (
            "3-bit PCM, 1 week unrefreshed",
            MemoryTech::Pcm3Bit,
            7.0 * 86400.0,
        ),
        (
            "ReRAM, 1 year unrefreshed",
            MemoryTech::ReRam,
            365.25 * 86400.0,
        ),
    ] {
        println!("  {label:<32} RBER = {:.2e}", rber_at(tech, secs));
    }

    println!("\n== Storage cost vs RBER (UE target 1e-15/block) ==");
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>14} {:>14}",
        "RBER", "VLEW t", "proposal", "XED-ext", "Samsung-ext", "DUO-ext"
    );
    for exp in [-5i32, -4, -3] {
        let rber = 10f64.powi(exp);
        let (t, proposal) = vlew_plus_parity_cost(256, rber, UE_TARGET, 8).expect("feasible");
        let cost = |s: ExtendedScheme| {
            s.total_cost(rber, UE_TARGET)
                .map_or("inf".to_string(), |c| format!("{:.1}%", c * 100.0))
        };
        println!(
            "{:<10.0e} {:>10} {:>11.1}% {:>14} {:>14} {:>14}",
            rber,
            t,
            proposal * 100.0,
            cost(ExtendedScheme::Xed),
            cost(ExtendedScheme::Samsung),
            cost(ExtendedScheme::Duo)
        );
    }

    println!("\n== Per-block BCH strength needed (bit errors only) ==");
    for exp in [-5i32, -4, -3] {
        let rber = 10f64.powi(exp);
        let t = min_bch_t(512, rber, UE_TARGET, 100).expect("feasible");
        println!(
            "  RBER {rber:.0e}: t = {t:>2}  ({:.1}% storage)",
            t as f64 * 10.0 / 512.0 * 100.0
        );
    }

    println!("\n== Runtime threshold trade-off @ RBER 2e-4 (RS(72,64)) ==");
    println!(
        "{:<6} {:>12} {:>14} {:>10}",
        "t", "SDC rate", "vs 1e-17 tgt", "fallback"
    );
    for t in 1..=4usize {
        let sdc = sdc_rate(2e-4, 64, 8, t);
        let fb = fallback_fraction(2e-4, 64, 8, t);
        println!(
            "{:<6} {:>12.1e} {:>14} {:>9.4}%",
            t,
            sdc,
            if sdc <= SDC_TARGET {
                "meets ✓"
            } else {
                "violates ✗"
            },
            fb * 100.0
        );
    }
    println!("\nthe paper's pick: threshold 2 — the largest t that meets the SDC target.");
}
