//! A persistent key-value store over chipkill-protected NVRAM — the
//! memcached-style workload the paper's introduction motivates.
//!
//! The store lays records out on the block-granular persistent memory the
//! proposal protects: a header block (commit point), an append-only write
//! log (crash consistency), and value blocks. A simulated crash mid-burst
//! plus a week-long outage exercise recovery: boot scrub first, then log
//! replay.
//!
//! ```text
//! cargo run --example kv_store
//! ```

use pmck::chipkill::{ChipkillConfig, ChipkillMemory};
use pmck_rt::rng::Rng;
use pmck_rt::rng::StdRng;

const LOG_BLOCKS: u64 = 64; // log region
const VALUES_BASE: u64 = 1 + LOG_BLOCKS;

/// A fixed-size record: key and value packed into one 64 B block.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Record {
    key: u64,
    value: [u8; 48],
}

impl Record {
    fn to_block(self) -> [u8; 64] {
        let mut b = [0u8; 64];
        b[..8].copy_from_slice(&self.key.to_le_bytes());
        b[8] = 1; // valid marker
        b[16..64].copy_from_slice(&self.value);
        b
    }

    fn from_block(b: &[u8; 64]) -> Option<Record> {
        if b[8] != 1 {
            return None;
        }
        let key = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        Some(Record {
            key,
            value: b[16..64].try_into().expect("48 bytes"),
        })
    }
}

/// The store: block 0 = header (log head), then the log, then value
/// blocks addressed by a deterministic key→block map.
struct KvStore {
    mem: ChipkillMemory,
    log_head: u64,
}

impl KvStore {
    fn format(mut mem: ChipkillMemory) -> Self {
        let zero = [0u8; 64];
        for a in 0..VALUES_BASE {
            mem.write_block(a, &zero).expect("format");
        }
        KvStore { mem, log_head: 0 }
    }

    fn value_block_of(key: u64) -> u64 {
        VALUES_BASE + (key % 800)
    }

    /// Durable put: log record first (commit point in the header), then
    /// the value in place — the WHISPER write-query pattern
    /// (log + item update + clean).
    fn put(&mut self, key: u64, value: [u8; 48]) {
        let rec = Record { key, value };
        let log_block = 1 + (self.log_head % LOG_BLOCKS);
        self.mem
            .write_block(log_block, &rec.to_block())
            .expect("log");
        self.log_head += 1;
        // Header records the log head (the commit point).
        let mut header = [0u8; 64];
        header[..8].copy_from_slice(&self.log_head.to_le_bytes());
        self.mem.write_block(0, &header).expect("header");
        // Value update in place (may be torn by a crash; the log repairs it).
        let vb = Self::value_block_of(key);
        self.mem.write_block(vb, &rec.to_block()).expect("value");
    }

    fn get(&mut self, key: u64) -> Option<[u8; 48]> {
        let vb = Self::value_block_of(key);
        let rec = Record::from_block(&self.mem.read_block(vb).ok()?.data)?;
        (rec.key == key).then_some(rec.value)
    }

    /// Crash recovery: replay the last `LOG_BLOCKS` log entries, newest
    /// wins, rebuilding torn value blocks.
    fn recover(mut mem: ChipkillMemory) -> Self {
        let header = mem.read_block(0).expect("header readable").data;
        let log_head = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
        let mut store = KvStore { mem, log_head };
        let replay_from = log_head.saturating_sub(LOG_BLOCKS);
        for seq in replay_from..log_head {
            let block = 1 + (seq % LOG_BLOCKS);
            let data = store.mem.read_block(block).expect("log intact").data;
            if let Some(rec) = Record::from_block(&data) {
                let vb = Self::value_block_of(rec.key);
                store.mem.write_block(vb, &rec.to_block()).expect("value");
            }
        }
        store
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mem = ChipkillMemory::new(1024, ChipkillConfig::default());
    let mut store = KvStore::format(mem);

    // Load a dataset.
    let mut truth = std::collections::HashMap::new();
    for k in 0..500u64 {
        let mut v = [0u8; 48];
        rng.fill_bytes(&mut v[..]);
        store.put(k, v);
        truth.insert(k, v);
    }
    println!("loaded {} keys", truth.len());

    // CRASH mid-operation: drop the store, keep the raw memory, then a
    // week-long outage accumulates bit errors at RBER ~1e-3.
    let mut raw = store.mem;
    let injected = raw.inject_bit_errors(1e-3, &mut rng);
    println!("power lost; one week passes: {injected} bit errors accumulate");

    // Boot: scrub first (the paper's §V-B), then replay the log.
    let report = raw.boot_scrub().expect("scrub succeeds");
    println!(
        "boot scrub corrected {} bits across {} stripes",
        report.bits_corrected, report.stripes_scrubbed
    );
    let mut store = KvStore::recover(raw);

    // Every record survives, bit-exact.
    let mut ok = 0;
    for (k, v) in &truth {
        let got = store.get(*k).expect("key survives the outage");
        assert_eq!(&got, v, "key {k} corrupted");
        ok += 1;
    }
    println!(
        "verified {ok}/{} records after crash + outage — zero data loss",
        truth.len()
    );
}
