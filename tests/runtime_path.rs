//! End-to-end runtime read path (Figure 9) across crates: the engine's
//! measured behaviour must track the analytic models at both runtime
//! RBER design points.

use pmck::analysis::sdc::fallback_fraction;
use pmck::analysis::{RUNTIME_RBER_PCM_HOURLY, RUNTIME_RBER_RERAM};
use pmck::chipkill::{ChipkillConfig, ChipkillMemory, ReadPath};
use pmck_rt::rng::Rng;
use pmck_rt::rng::StdRng;

fn filled(blocks: u64, seed: u64) -> (ChipkillMemory, Vec<[u8; 64]>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = ChipkillMemory::new(blocks, ChipkillConfig::default());
    let data: Vec<[u8; 64]> = (0..mem.num_blocks())
        .map(|a| {
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut b[..]);
            mem.write_block(a, &b).unwrap();
            b
        })
        .collect();
    (mem, data, rng)
}

#[test]
fn no_read_ever_returns_wrong_data_at_runtime_rber() {
    for (rber, seed) in [(RUNTIME_RBER_RERAM, 1u64), (RUNTIME_RBER_PCM_HOURLY, 2)] {
        let (mem0, data, mut rng) = filled(256, seed);
        for round in 0..6 {
            let mut mem = mem0.clone();
            mem.inject_bit_errors(rber, &mut rng);
            for (a, b) in data.iter().enumerate() {
                let out = mem.read_block(a as u64).expect("correctable");
                assert_eq!(&out.data, b, "rber {rber:e} round {round} block {a}");
            }
        }
    }
}

#[test]
fn fallback_rate_tracks_analytic_model() {
    let p = RUNTIME_RBER_PCM_HOURLY;
    let analytic = fallback_fraction(p, 64, 8, 2);
    let (mem0, _, mut rng) = filled(1024, 3);
    let mut reads = 0u64;
    let mut fallbacks = 0u64;
    for _ in 0..60 {
        let mut mem = mem0.clone();
        mem.inject_bit_errors(p, &mut rng);
        for a in 0..mem.num_blocks() {
            let _ = mem.read_block(a).expect("correctable");
        }
        reads += mem.stats().reads;
        fallbacks += mem.stats().fallbacks;
    }
    let measured = fallbacks as f64 / reads as f64;
    // ~0.02% expected; allow generous sampling noise on ~61k reads.
    assert!(
        measured < analytic * 4.0 + 1e-4,
        "measured {measured:e} vs analytic {analytic:e}"
    );
    assert!(fallbacks > 0, "at 2e-4 over 61k reads some fallbacks occur");
}

#[test]
fn accepted_corrections_never_exceed_threshold() {
    let (mem0, _, mut rng) = filled(256, 4);
    for thr in [0usize, 1, 2, 3] {
        let mut mem = ChipkillMemory::new(256, ChipkillConfig::with_threshold(thr));
        for a in 0..mem.num_blocks() {
            let out = mem0.clone().read_block(a).expect("clean source");
            mem.write_block(a, &out.data).unwrap();
        }
        mem.inject_bit_errors(5e-4, &mut rng);
        for a in 0..mem.num_blocks() {
            if let Ok(out) = mem.read_block(a) {
                if let ReadPath::RsCorrected { corrections } = out.path {
                    assert!(corrections <= thr, "thr {thr}: {corrections}");
                }
            }
        }
    }
}

#[test]
fn boot_rber_still_fully_correctable_via_fallback() {
    // Even if runtime RBER spikes to the boot level (a missed refresh
    // window), the VLEW fallback keeps every read exact.
    let (mut mem, data, mut rng) = filled(128, 5);
    mem.inject_bit_errors(1e-3, &mut rng);
    let mut fallbacks = 0;
    for (a, b) in data.iter().enumerate() {
        let out = mem.read_block(a as u64).expect("correctable");
        assert_eq!(&out.data, b);
        if matches!(out.path, ReadPath::VlewFallback { .. }) {
            fallbacks += 1;
        }
    }
    assert!(fallbacks > 0, "1e-3 must trigger fallbacks on 128 blocks");
}
