//! Full-system simulator smoke tests: determinism, baseline/proposal
//! trace equivalence, and directionally correct sensitivities.

use pmck::sim::{NvramKind, Scheme, SimConfig, Simulator};
use pmck::workloads::WorkloadSpec;

fn tiny(nvram: NvramKind, scheme: Scheme) -> SimConfig {
    SimConfig {
        warmup_ops: 4_000,
        measure_ops: 10_000,
        ..SimConfig::quick(nvram, scheme)
    }
}

#[test]
fn simulation_is_deterministic() {
    let spec = WorkloadSpec::by_name("redis").unwrap();
    let cfg = tiny(NvramKind::ReRam, Scheme::Baseline);
    let a = Simulator::run_workload(spec, cfg, 7);
    let b = Simulator::run_workload(spec, cfg, 7);
    assert_eq!(a, b, "same seed → identical results");
    let c = Simulator::run_workload(spec, cfg, 8);
    assert_ne!(
        a.measured_ps, c.measured_ps,
        "different seed → different run"
    );
}

#[test]
fn baseline_and_proposal_replay_the_same_trace() {
    let spec = WorkloadSpec::by_name("btree").unwrap();
    let base = Simulator::run_workload(spec, tiny(NvramKind::Pcm, Scheme::Baseline), 3);
    let prop = Simulator::run_workload(
        spec,
        tiny(NvramKind::Pcm, Scheme::Proposal { c_factor: 0.4 }),
        3,
    );
    assert_eq!(base.ops_measured, prop.ops_measured);
    // Demand traffic mixes stay close (the proposal adds only OMV-miss
    // reads and fallback prefetches).
    assert_eq!(base.pm_writes, prop.pm_writes);
}

#[test]
fn proposal_overhead_grows_with_c() {
    let spec = WorkloadSpec::by_name("hashmap").unwrap();
    let base = Simulator::run_workload(spec, tiny(NvramKind::Pcm, Scheme::Baseline), 5);
    let lo = Simulator::run_workload(
        spec,
        tiny(NvramKind::Pcm, Scheme::Proposal { c_factor: 0.1 }),
        5,
    );
    let hi = Simulator::run_workload(
        spec,
        tiny(NvramKind::Pcm, Scheme::Proposal { c_factor: 1.0 }),
        5,
    );
    let perf = |r: &pmck::sim::SimResult| r.ops_per_ns();
    assert!(perf(&lo) <= perf(&base) * 1.02, "small C ≈ baseline");
    assert!(perf(&hi) < perf(&lo), "C=1 must cost more than C=0.1");
}

#[test]
fn pcm_overhead_exceeds_reram_overhead() {
    // The paper's Figure 16-vs-17 observation, on the worst workload.
    let spec = WorkloadSpec::by_name("hashmap").unwrap();
    let ratio = |kind| {
        let base = Simulator::run_workload(spec, tiny(kind, Scheme::Baseline), 9);
        let prop = Simulator::run_workload(spec, tiny(kind, Scheme::Proposal { c_factor: 0.5 }), 9);
        prop.ops_per_ns() / base.ops_per_ns()
    };
    let reram = ratio(NvramKind::ReRam);
    let pcm = ratio(NvramKind::Pcm);
    assert!(
        pcm <= reram + 0.02,
        "longer PCM writes amplify the slowing: reram {reram:.3} pcm {pcm:.3}"
    );
}

#[test]
fn omv_misses_cost_extra_reads() {
    let spec = WorkloadSpec::by_name("echo").unwrap();
    let with_omv = Simulator::run_workload(
        spec,
        tiny(NvramKind::ReRam, Scheme::Proposal { c_factor: 0.3 }),
        11,
    );
    let without = Simulator::run_workload(
        spec,
        SimConfig {
            force_omv_off: true,
            ..tiny(NvramKind::ReRam, Scheme::Proposal { c_factor: 0.3 })
        },
        11,
    );
    assert!(with_omv.omv_hit_rate > 0.9);
    assert_eq!(without.omv_hit_rate, 0.0);
    assert!(
        without.ops_per_ns() <= with_omv.ops_per_ns() + 1e-6,
        "losing OMV caching cannot speed things up"
    );
}
