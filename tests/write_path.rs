//! The §V-D write path across crates: the SAM/OMV cache hierarchy feeds
//! `old ⊕ new` sums into the engine's bitwise-sum writes, and the result
//! must be bit-identical to conventional writes.

use pmck::cachesim::{Hierarchy, HierarchyConfig};
use pmck::chipkill::{ChipkillConfig, ChipkillMemory};
use pmck_rt::rng::Rng;
use pmck_rt::rng::StdRng;

/// A miniature system: a cache hierarchy whose data values we shadow, in
/// front of a chipkill rank written exclusively through bitwise sums —
/// exactly the Figure 12 flow (OMV in LLC → XOR → memory write).
struct MiniSystem {
    hierarchy: Hierarchy,
    /// Shadow of cached values (the cachesim tracks state, not bytes).
    cached: std::collections::HashMap<u64, [u8; 64]>,
    /// OMVs preserved alongside (what the LLC's OMV lines hold).
    omv: std::collections::HashMap<u64, [u8; 64]>,
    mem: ChipkillMemory,
}

impl MiniSystem {
    fn new(blocks: u64) -> Self {
        MiniSystem {
            hierarchy: Hierarchy::new(HierarchyConfig::paper(true)),
            cached: std::collections::HashMap::new(),
            omv: std::collections::HashMap::new(),
            mem: ChipkillMemory::new(blocks, ChipkillConfig::default()),
        }
    }

    fn store(&mut self, addr: u64, value: [u8; 64]) {
        // Load-for-ownership, then dirty the line; preserve the OMV the
        // first time a clean (SameAsMem) line is dirtied.
        let acts = self.hierarchy.load(0, addr, true);
        if !acts.mem_reads.is_empty() || acts.llc_hit == Some(true) || acts.l1_hit {
            let from_mem = self.mem.read_block(addr).expect("readable").data;
            let cur = *self.cached.entry(addr).or_insert(from_mem);
            self.omv.entry(addr).or_insert(cur);
        }
        self.hierarchy.store(0, addr, true);
        self.cached.insert(addr, value);
    }

    fn clwb(&mut self, addr: u64) {
        let acts = self.hierarchy.clwb(0, addr, true);
        for w in &acts.mem_writes {
            assert!(w.is_pm);
            let new = self.cached[&addr];
            let old = match w.omv_served {
                Some(true) => self.omv.remove(&addr).expect("OMV present"),
                Some(false) | None => {
                    // OMV miss: fetch the old value from memory (the
                    // extra read the proposal avoids 98.6% of the time).
                    self.mem.read_block(addr).expect("readable").data
                }
            };
            let mut sum = [0u8; 64];
            for i in 0..64 {
                sum[i] = old[i] ^ new[i];
            }
            self.mem.write_block_sum(addr, &sum).expect("sum write");
        }
    }
}

#[test]
fn cache_fed_sum_writes_match_conventional_writes() {
    let mut rng = StdRng::seed_from_u64(11);
    let blocks = 128u64;
    let mut sys = MiniSystem::new(blocks);
    let mut reference = ChipkillMemory::new(blocks, ChipkillConfig::default());

    for _ in 0..600 {
        let addr = rng.gen_range(0..blocks);
        let mut value = [0u8; 64];
        rng.fill_bytes(&mut value[..]);
        sys.store(addr, value);
        sys.clwb(addr);
        reference.write_block(addr, &value).unwrap();
    }
    sys.mem.flush_eur();
    for a in 0..blocks {
        assert_eq!(
            sys.mem.read_block(a).unwrap().data,
            reference.read_block(a).unwrap().data,
            "block {a}"
        );
    }
    assert!(sys.mem.verify_consistent());
}

#[test]
fn omv_hit_rate_is_high_for_store_clean_patterns() {
    let mut sys = MiniSystem::new(256);
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..2000 {
        let addr = rng.gen_range(0..256);
        let mut value = [0u8; 64];
        rng.fill_bytes(&mut value[..]);
        sys.store(addr, value);
        sys.clwb(addr);
    }
    let stats = sys.hierarchy.llc_stats();
    assert!(
        stats.omv_hit_rate() > 0.95,
        "Figure 18-style rate, got {}",
        stats.omv_hit_rate()
    );
}

#[test]
fn sum_writes_survive_subsequent_outage() {
    // Data written through the cache-fed sum path must be exactly as
    // durable as conventionally written data.
    let mut sys = MiniSystem::new(64);
    let mut rng = StdRng::seed_from_u64(17);
    let mut truth = Vec::new();
    for a in 0..64u64 {
        let mut value = [0u8; 64];
        rng.fill_bytes(&mut value[..]);
        sys.store(a, value);
        sys.clwb(a);
        truth.push(value);
    }
    let mut mem = sys.mem;
    mem.flush_eur();
    mem.inject_bit_errors(1e-3, &mut rng);
    mem.boot_scrub().expect("scrub");
    for (a, v) in truth.iter().enumerate() {
        assert_eq!(&mem.read_block(a as u64).unwrap().data, v);
    }
}
