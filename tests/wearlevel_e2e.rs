//! Wear management end to end: Start-Gap leveling + patrol scrubbing +
//! block disabling + a chip failure, all composed on one rank.

use pmck::chipkill::{ChipFailureKind, ChipkillConfig, PatrolScrubber, WearLevelledMemory};
use pmck::nvram::{WearModel, WearState};
use pmck_rt::rng::Rng;
use pmck_rt::rng::StdRng;

#[test]
fn leveling_plus_patrol_plus_errors() {
    let mut rng = StdRng::seed_from_u64(51);
    let mut mem = WearLevelledMemory::new(63, ChipkillConfig::default(), 4);
    let mut truth = vec![[0u8; 64]; 63];
    for l in 0..63u64 {
        let mut v = [0u8; 64];
        rng.fill_bytes(&mut v[..]);
        mem.write_block(l, &v).unwrap();
        truth[l as usize] = v;
    }
    let mut patrol = PatrolScrubber::new(16);
    for round in 0..40u64 {
        // Hot updates.
        for _ in 0..8 {
            let l = rng.gen_range(0..8);
            let mut v = [0u8; 64];
            rng.fill_bytes(&mut v[..]);
            mem.write_block(l, &v).unwrap();
            truth[l as usize] = v;
        }
        // Runtime errors trickle in; patrol cleans behind them.
        mem.inner_mut().inject_bit_errors(5e-5, &mut rng);
        patrol.step(mem.inner_mut()).unwrap();
        let _ = round;
    }
    for (l, v) in truth.iter().enumerate() {
        assert_eq!(&mem.read_block(l as u64).unwrap().data, v, "logical {l}");
    }
    assert!(mem.gap_moves() > 50);
}

#[test]
fn chip_failure_under_wear_leveling() {
    let mut rng = StdRng::seed_from_u64(53);
    let mut mem = WearLevelledMemory::new(31, ChipkillConfig::default(), 2);
    let mut truth = vec![[0u8; 64]; 31];
    for l in 0..31u64 {
        let mut v = [0u8; 64];
        rng.fill_bytes(&mut v[..]);
        mem.write_block(l, &v).unwrap();
        truth[l as usize] = v;
    }
    // Rotate a while, then kill a chip.
    for i in 0..100u64 {
        let l = i % 31;
        let mut v = [0u8; 64];
        rng.fill_bytes(&mut v[..]);
        mem.write_block(l, &v).unwrap();
        truth[l as usize] = v;
    }
    mem.inner_mut()
        .fail_chip(3, ChipFailureKind::RandomGarbage, &mut rng);
    // Reads still resolve through the remap + erasure correction.
    for (l, v) in truth.iter().enumerate() {
        assert_eq!(&mem.read_block(l as u64).unwrap().data, v, "logical {l}");
    }
    // Rebuild and confirm clean operation resumes (including gap moves,
    // which read+write through the engine).
    mem.inner_mut().repair_chip(3).unwrap();
    for i in 0..50u64 {
        let l = i % 31;
        mem.write_block(l, &truth[l as usize]).unwrap();
    }
    assert!(mem.inner_mut().verify_consistent());
}

#[test]
fn wear_accounting_drives_disabling_decision() {
    // The §V-E loop: account amplified writes, disable at the wear
    // threshold, and verify the levelled rank spreads writes enough to
    // delay that point.
    let model = WearModel {
        endurance: 2_000,
        gamma: 2.0,
        p_max: 1.0,
    };
    // Unlevelled: all writes hit one physical block.
    let mut hot_state = WearState::new();
    for _ in 0..1_500u64 {
        hot_state.record_writes(1 + 33 / 8);
    }
    assert!(model.is_worn_out(hot_state.writes(), 0.5));

    // Levelled: the same write stream spreads over many slots.
    let mut mem = WearLevelledMemory::new(15, ChipkillConfig::default(), 1);
    let mut per_slot: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for i in 0..1_500u64 {
        let phys = mem.physical_of(3);
        *per_slot.entry(phys).or_insert(0) += 1 + 33 / 8;
        mem.write_block(3, &[i as u8; 64]).unwrap();
    }
    let worst = per_slot.values().copied().max().unwrap();
    assert!(
        !model.is_worn_out(worst, 0.5),
        "leveling keeps the hottest slot below wear-out: {worst} writes"
    );
}
