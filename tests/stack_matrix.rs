//! The composition matrix: every stack permutation the builder can
//! produce must preserve read-after-write and agree with a mirror model
//! under a short, benign `FaultSchedule` (background RBER only).
//!
//! Proposal bases run all 16 combinations of {restripeable, wear-level,
//! auto-patrol, link protection} at the paper tier, plus the 8 combos
//! without re-striping (a paper-layout mechanism) at each of the other
//! two protection tiers; baseline bases run the 8 combinations without
//! re-striping. Tiered bases run the 8 {wear, patrol, link} combos with
//! periodic tier-policy passes folded into the campaign — reads must
//! survive the migrations. Restripeable variants additionally
//! transition in place at the end of the campaign and must still read
//! back every block, and a differential leg replays one identical
//! request sequence against a tiered stack and a fixed single-tier
//! stack, asserting every read agrees.

use pmck::chipkill::{BusFault, ChipkillConfig, ProtectionTier, Stack, StackBuilder, TierPolicy};
use pmck::nvram::FaultSchedule;
use pmck::rt::rng::{Rng, StdRng};

const BLOCKS: u64 = 96;
const ROUNDS: u64 = 120;

struct Variant {
    name: String,
    stack: Stack,
    restripeable: bool,
    tiered: bool,
}

fn variants() -> Vec<Variant> {
    let mut out = Vec::new();
    for tier in ProtectionTier::ALL {
        for restripe in [false, true] {
            // The §V-E re-stripe flip is a paper-layout mechanism.
            if restripe && tier != ProtectionTier::Paper {
                continue;
            }
            for wear in [false, true] {
                for patrol in [false, true] {
                    for link in [false, true] {
                        let mut b = StackBuilder::proposal(BLOCKS, ChipkillConfig::for_tier(tier));
                        let mut name = format!("proposal:{}", tier.as_str());
                        if restripe {
                            b = b.restripeable();
                            name.push_str("+restripe");
                        }
                        if patrol {
                            b = b.patrolled(3, 16);
                            name.push_str("+patrol");
                        }
                        if wear {
                            b = b.wear_levelled(4);
                            name.push_str("+wearlevel");
                        }
                        if link {
                            b = b.link_protected(BusFault { ber: 1e-6 }, 8);
                            name.push_str("+link");
                        }
                        out.push(Variant {
                            stack: b.seed(0xA11 ^ out.len() as u64).build(),
                            name,
                            restripeable: restripe,
                            tiered: false,
                        });
                    }
                }
            }
        }
    }
    // Tiered bases: the adaptive policy owns the rank layout, so no
    // re-stripe; the campaign folds tier-policy passes in instead.
    for wear in [false, true] {
        for patrol in [false, true] {
            for link in [false, true] {
                let mut b = StackBuilder::proposal(BLOCKS, ChipkillConfig::default())
                    .tiered(3, TierPolicy::default());
                let mut name = String::from("tiered");
                if patrol {
                    b = b.patrolled(3, 16);
                    name.push_str("+patrol");
                }
                if wear {
                    b = b.wear_levelled(4);
                    name.push_str("+wearlevel");
                }
                if link {
                    b = b.link_protected(BusFault { ber: 1e-6 }, 8);
                    name.push_str("+link");
                }
                out.push(Variant {
                    stack: b.seed(0x71E2 ^ out.len() as u64).build(),
                    name,
                    restripeable: false,
                    tiered: true,
                });
            }
        }
    }
    for wear in [false, true] {
        for patrol in [false, true] {
            for link in [false, true] {
                let mut b = StackBuilder::baseline(BLOCKS);
                let mut name = String::from("baseline");
                if patrol {
                    b = b.patrolled(3, 16);
                    name.push_str("+patrol");
                }
                if wear {
                    b = b.wear_levelled(4);
                    name.push_str("+wearlevel");
                }
                if link {
                    b = b.link_protected(BusFault { ber: 1e-6 }, 8);
                    name.push_str("+link");
                }
                out.push(Variant {
                    stack: b.seed(0xBA5E ^ out.len() as u64).build(),
                    name,
                    restripeable: false,
                    tiered: false,
                });
            }
        }
    }
    out
}

fn pattern(block: u64, version: u32) -> [u8; 64] {
    let mut data = [0u8; 64];
    for (i, byte) in data.iter_mut().enumerate() {
        *byte = (block as u8)
            .wrapping_mul(53)
            .wrapping_add((version as u8).wrapping_mul(11))
            .wrapping_add(i as u8);
    }
    data
}

/// A benign campaign: low background RBER from cycle 0, ramping slightly
/// through the middle — nothing a healthy stack cannot correct inline.
fn benign_schedule() -> FaultSchedule {
    FaultSchedule::parse(
        "at 0 rber 1e-7\n\
         ramp 30..90 rber 1e-7..8e-7\n",
    )
    .expect("benign schedule must parse")
}

#[test]
fn every_stack_permutation_preserves_read_after_write() {
    let schedule = benign_schedule();
    for variant in &mut variants() {
        let Variant {
            name,
            stack,
            restripeable,
            tiered,
        } = variant;
        let mut rng = StdRng::seed_from_u64(0x3A7A ^ name.len() as u64);
        let mut versions = vec![0u32; BLOCKS as usize];
        assert_eq!(stack.num_blocks(), BLOCKS, "{name}: logical capacity");

        for block in 0..BLOCKS {
            stack
                .write(block, &pattern(block, 0))
                .unwrap_or_else(|e| panic!("{name}: fill of block {block} failed: {e}"));
        }

        for round in 0..ROUNDS {
            let block = rng.gen_range(0..BLOCKS);
            match rng.gen_range(0u32..4) {
                0 | 1 => {
                    versions[block as usize] += 1;
                    let data = pattern(block, versions[block as usize]);
                    stack
                        .write(block, &data)
                        .unwrap_or_else(|e| panic!("{name}: round {round} write failed: {e}"));
                    // Read-after-write: the block must echo immediately.
                    let out = stack
                        .read(block)
                        .unwrap_or_else(|e| panic!("{name}: round {round} readback failed: {e}"));
                    assert_eq!(out.data, data, "{name}: round {round} read-after-write");
                }
                2 => {
                    let out = stack
                        .read(block)
                        .unwrap_or_else(|e| panic!("{name}: round {round} read failed: {e}"));
                    assert_eq!(
                        out.data,
                        pattern(block, versions[block as usize]),
                        "{name}: round {round} diverged from the mirror"
                    );
                }
                _ => {
                    let rber = schedule.rber_at(round);
                    stack
                        .inject_bit_errors(rber)
                        .unwrap_or_else(|e| panic!("{name}: round {round} inject failed: {e}"));
                }
            }
            // Tiered bases take a policy pass mid-campaign; reads after
            // it must survive whatever migrations the measured RBER
            // triggered.
            if *tiered && round % 40 == 39 {
                stack
                    .tier_step()
                    .unwrap_or_else(|e| panic!("{name}: round {round} tier step failed: {e}"));
            }
        }

        for block in 0..BLOCKS {
            let out = stack
                .read(block)
                .unwrap_or_else(|e| panic!("{name}: closing read of {block} failed: {e}"));
            assert_eq!(
                out.data,
                pattern(block, versions[block as usize]),
                "{name}: closing sweep diverged at block {block}"
            );
        }

        // Tiered permutations must have actually migrated under the
        // benign schedule (pristine regions settle onto rs-only).
        if *tiered {
            let report = stack.tier_report().expect("tiered base reports a census");
            assert!(
                report.migrations >= 1,
                "{name}: the campaign never exercised a migration"
            );
        }

        // Restripeable permutations must also survive the in-place §V-E
        // transition with the mirror intact.
        if *restripeable {
            stack
                .restripe()
                .unwrap_or_else(|e| panic!("{name}: restripe failed: {e}"));
            for block in 0..BLOCKS {
                let out = stack
                    .read(block)
                    .unwrap_or_else(|e| panic!("{name}: post-restripe read failed: {e}"));
                assert_eq!(
                    out.data,
                    pattern(block, versions[block as usize]),
                    "{name}: post-restripe sweep diverged at block {block}"
                );
            }
        }
    }
}

/// Differential replay: one identical request sequence runs against a
/// three-region tiered stack (tier-policy passes folded in) and a fixed
/// single-tier stack. Tier migrations are a protection-layout concern
/// only — every read must agree between the two, before and after the
/// regions settle onto their measured tiers.
#[test]
fn tiered_replay_is_differentially_equivalent_to_single_tier() {
    let schedule = benign_schedule();
    let mut tiered = StackBuilder::proposal(BLOCKS, ChipkillConfig::default())
        .tiered(3, TierPolicy::default())
        .seed(0xD1FF)
        .build();
    let mut fixed = StackBuilder::proposal(BLOCKS, ChipkillConfig::default())
        .seed(0xD1FF)
        .build();
    let mut rng = StdRng::seed_from_u64(0x0DD_B175);

    for block in 0..BLOCKS {
        let data = pattern(block, 0);
        tiered.write(block, &data).unwrap();
        fixed.write(block, &data).unwrap();
    }
    let mut migrations = 0u64;
    for round in 0..ROUNDS {
        let block = rng.gen_range(0..BLOCKS);
        match rng.gen_range(0u32..4) {
            0 | 1 => {
                let data = pattern(block, round as u32 + 1);
                tiered.write(block, &data).unwrap();
                fixed.write(block, &data).unwrap();
            }
            2 => {
                let a = tiered.read(block).unwrap();
                let b = fixed.read(block).unwrap();
                assert_eq!(
                    a.data, b.data,
                    "round {round}: replay diverged at block {block}"
                );
            }
            _ => {
                let rber = schedule.rber_at(round);
                tiered.inject_bit_errors(rber).unwrap();
                fixed.inject_bit_errors(rber).unwrap();
            }
        }
        if round % 24 == 23 {
            migrations += tiered.tier_step().unwrap().migrations;
        }
    }
    assert!(migrations >= 1, "the replay never exercised a migration");
    for block in 0..BLOCKS {
        let a = tiered.read(block).unwrap();
        let b = fixed.read(block).unwrap();
        assert_eq!(a.data, b.data, "closing sweep diverged at block {block}");
    }
}
