//! The composition matrix: every stack permutation the builder can
//! produce must preserve read-after-write and agree with a mirror model
//! under a short, benign `FaultSchedule` (background RBER only).
//!
//! Proposal bases run all 16 combinations of {restripeable, wear-level,
//! auto-patrol, link protection}; baseline bases run the 8 combinations
//! without re-striping (a proposal-only mechanism). Restripeable
//! variants additionally transition in place at the end of the campaign
//! and must still read back every block.

use pmck::chipkill::{BusFault, ChipkillConfig, Stack, StackBuilder};
use pmck::nvram::FaultSchedule;
use pmck::rt::rng::{Rng, StdRng};

const BLOCKS: u64 = 96;
const ROUNDS: u64 = 120;

struct Variant {
    name: String,
    stack: Stack,
    restripeable: bool,
}

fn variants() -> Vec<Variant> {
    let mut out = Vec::new();
    for restripe in [false, true] {
        for wear in [false, true] {
            for patrol in [false, true] {
                for link in [false, true] {
                    let mut b = StackBuilder::proposal(BLOCKS, ChipkillConfig::default());
                    let mut name = String::from("proposal");
                    if restripe {
                        b = b.restripeable();
                        name.push_str("+restripe");
                    }
                    if patrol {
                        b = b.patrolled(3, 16);
                        name.push_str("+patrol");
                    }
                    if wear {
                        b = b.wear_levelled(4);
                        name.push_str("+wearlevel");
                    }
                    if link {
                        b = b.link_protected(BusFault { ber: 1e-6 }, 8);
                        name.push_str("+link");
                    }
                    out.push(Variant {
                        stack: b.seed(0xA11 ^ out.len() as u64).build(),
                        name,
                        restripeable: restripe,
                    });
                }
            }
        }
    }
    for wear in [false, true] {
        for patrol in [false, true] {
            for link in [false, true] {
                let mut b = StackBuilder::baseline(BLOCKS);
                let mut name = String::from("baseline");
                if patrol {
                    b = b.patrolled(3, 16);
                    name.push_str("+patrol");
                }
                if wear {
                    b = b.wear_levelled(4);
                    name.push_str("+wearlevel");
                }
                if link {
                    b = b.link_protected(BusFault { ber: 1e-6 }, 8);
                    name.push_str("+link");
                }
                out.push(Variant {
                    stack: b.seed(0xBA5E ^ out.len() as u64).build(),
                    name,
                    restripeable: false,
                });
            }
        }
    }
    out
}

fn pattern(block: u64, version: u32) -> [u8; 64] {
    let mut data = [0u8; 64];
    for (i, byte) in data.iter_mut().enumerate() {
        *byte = (block as u8)
            .wrapping_mul(53)
            .wrapping_add((version as u8).wrapping_mul(11))
            .wrapping_add(i as u8);
    }
    data
}

/// A benign campaign: low background RBER from cycle 0, ramping slightly
/// through the middle — nothing a healthy stack cannot correct inline.
fn benign_schedule() -> FaultSchedule {
    FaultSchedule::parse(
        "at 0 rber 1e-7\n\
         ramp 30..90 rber 1e-7..8e-7\n",
    )
    .expect("benign schedule must parse")
}

#[test]
fn every_stack_permutation_preserves_read_after_write() {
    let schedule = benign_schedule();
    for variant in &mut variants() {
        let Variant {
            name,
            stack,
            restripeable,
        } = variant;
        let mut rng = StdRng::seed_from_u64(0x3A7A ^ name.len() as u64);
        let mut versions = vec![0u32; BLOCKS as usize];
        assert_eq!(stack.num_blocks(), BLOCKS, "{name}: logical capacity");

        for block in 0..BLOCKS {
            stack
                .write(block, &pattern(block, 0))
                .unwrap_or_else(|e| panic!("{name}: fill of block {block} failed: {e}"));
        }

        for round in 0..ROUNDS {
            let block = rng.gen_range(0..BLOCKS);
            match rng.gen_range(0u32..4) {
                0 | 1 => {
                    versions[block as usize] += 1;
                    let data = pattern(block, versions[block as usize]);
                    stack
                        .write(block, &data)
                        .unwrap_or_else(|e| panic!("{name}: round {round} write failed: {e}"));
                    // Read-after-write: the block must echo immediately.
                    let out = stack
                        .read(block)
                        .unwrap_or_else(|e| panic!("{name}: round {round} readback failed: {e}"));
                    assert_eq!(out.data, data, "{name}: round {round} read-after-write");
                }
                2 => {
                    let out = stack
                        .read(block)
                        .unwrap_or_else(|e| panic!("{name}: round {round} read failed: {e}"));
                    assert_eq!(
                        out.data,
                        pattern(block, versions[block as usize]),
                        "{name}: round {round} diverged from the mirror"
                    );
                }
                _ => {
                    let rber = schedule.rber_at(round);
                    stack
                        .inject_bit_errors(rber)
                        .unwrap_or_else(|e| panic!("{name}: round {round} inject failed: {e}"));
                }
            }
        }

        for block in 0..BLOCKS {
            let out = stack
                .read(block)
                .unwrap_or_else(|e| panic!("{name}: closing read of {block} failed: {e}"));
            assert_eq!(
                out.data,
                pattern(block, versions[block as usize]),
                "{name}: closing sweep diverged at block {block}"
            );
        }

        // Restripeable permutations must also survive the in-place §V-E
        // transition with the mirror intact.
        if *restripeable {
            stack
                .restripe()
                .unwrap_or_else(|e| panic!("{name}: restripe failed: {e}"));
            for block in 0..BLOCKS {
                let out = stack
                    .read(block)
                    .unwrap_or_else(|e| panic!("{name}: post-restripe read failed: {e}"));
                assert_eq!(
                    out.data,
                    pattern(block, versions[block as usize]),
                    "{name}: post-restripe sweep diverged at block {block}"
                );
            }
        }
    }
}
