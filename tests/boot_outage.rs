//! Outage scenarios driven by the retention model: the paper's "a week to
//! a year without refresh" survival claim, end to end.

use pmck::chipkill::{ChipkillConfig, ChipkillMemory};
use pmck::nvram::{rber_at, MemoryTech};
use pmck_rt::rng::Rng;
use pmck_rt::rng::StdRng;

fn outage_cycle(tech: MemoryTech, seconds: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = ChipkillMemory::new(128, ChipkillConfig::default());
    let data: Vec<[u8; 64]> = (0..mem.num_blocks())
        .map(|a| {
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut b[..]);
            mem.write_block(a, &b).unwrap();
            b
        })
        .collect();
    let rber = rber_at(tech, seconds);
    mem.inject_bit_errors(rber, &mut rng);
    mem.boot_scrub().expect("scrub succeeds");
    assert!(mem.verify_consistent());
    for (a, b) in data.iter().enumerate() {
        assert_eq!(&mem.read_block(a as u64).unwrap().data, b, "block {a}");
    }
}

#[test]
fn pcm3_survives_one_week_unrefreshed() {
    outage_cycle(MemoryTech::Pcm3Bit, 7.0 * 86400.0, 31);
}

#[test]
fn reram_survives_one_year_unrefreshed() {
    outage_cycle(MemoryTech::ReRam, 365.25 * 86400.0, 37);
}

#[test]
fn repeated_outages_accumulate_no_damage() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut mem = ChipkillMemory::new(64, ChipkillConfig::default());
    let data: Vec<[u8; 64]> = (0..mem.num_blocks())
        .map(|a| {
            let mut b = [0u8; 64];
            rng.fill_bytes(&mut b[..]);
            mem.write_block(a, &b).unwrap();
            b
        })
        .collect();
    // Ten consecutive outage+boot cycles at boot RBER.
    for cycle in 0..10 {
        mem.inject_bit_errors(1e-3, &mut rng);
        mem.boot_scrub()
            .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
    }
    for (a, b) in data.iter().enumerate() {
        assert_eq!(&mem.read_block(a as u64).unwrap().data, b);
    }
}

#[test]
fn writes_between_outages_survive() {
    let mut rng = StdRng::seed_from_u64(43);
    let mut mem = ChipkillMemory::new(64, ChipkillConfig::default());
    let mut truth: Vec<[u8; 64]> = vec![[0u8; 64]; mem.num_blocks() as usize];
    for cycle in 0..5u64 {
        // Update a random subset (mix of write paths), then crash.
        for _ in 0..20 {
            let a = rng.gen_range(0..mem.num_blocks());
            let mut v = [0u8; 64];
            rng.fill_bytes(&mut v[..]);
            if rng.gen_bool(0.5) {
                mem.write_block(a, &v).unwrap();
            } else {
                let old = mem.read_block(a).unwrap().data;
                let mut sum = [0u8; 64];
                for i in 0..64 {
                    sum[i] = old[i] ^ v[i];
                }
                mem.write_block_sum(a, &sum).unwrap();
            }
            truth[a as usize] = v;
        }
        mem.flush_eur(); // clean shutdown drains the EUR
        mem.inject_bit_errors(1e-3, &mut rng);
        mem.boot_scrub()
            .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
    }
    for (a, v) in truth.iter().enumerate() {
        assert_eq!(&mem.read_block(a as u64).unwrap().data, v, "block {a}");
    }
}
