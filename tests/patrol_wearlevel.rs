//! Integration: patrol scrubbing × Start-Gap wear leveling, composed
//! through the `BlockDevice` pipeline.
//!
//! The patrol layer walks *physical* block addresses while Start-Gap
//! remaps logical→physical above it, one block per gap move. A scrub
//! step landing mid-remap must still observe consistent VLEW code bits —
//! the gap move rewrites a block (updating its chips' VLEWs via the
//! EUR), and the scrubber re-encodes whatever stripe its cursor is on,
//! so any window where the two disagree would show up as a VLEW verify
//! failure or as data corruption on readback.
//!
//! Both campaigns build their stack exclusively through
//! [`StackBuilder`]: `chipkill` base, manual-step patrol below the
//! wear-level remap.

use pmck::chipkill::{ChipkillConfig, LayerId, Stack, StackBuilder};
use pmck::rt::rng::{Rng, StdRng};

const LOGICAL_BLOCKS: u64 = 96;
/// Aggressive gap cadence: a gap move every 4 writes keeps remaps
/// happening constantly under the scrubber.
const GAP_MOVE_INTERVAL: u64 = 4;

fn stack(seed: u64) -> Stack {
    StackBuilder::proposal(LOGICAL_BLOCKS, ChipkillConfig::default())
        .patrolled(3, 0)
        .wear_levelled(GAP_MOVE_INTERVAL)
        .seed(seed)
        .build()
}

fn pattern(block: u64, version: u32) -> [u8; 64] {
    let mut data = [0u8; 64];
    for (i, byte) in data.iter_mut().enumerate() {
        *byte = (block as u8)
            .wrapping_mul(31)
            .wrapping_add(version as u8)
            .wrapping_add(i as u8);
    }
    data
}

/// Phase 1: no fault injection. With only writes (driving gap moves),
/// demand reads, and patrol steps in flight, the rank must verify
/// consistent at *every* checkpoint — remap and scrub may interleave at
/// any granularity without ever leaving VLEW or RS state torn.
#[test]
fn scrub_mid_remap_sees_consistent_vlew_code_bits() {
    let mut stack = stack(0x9A7);
    let mut rng = StdRng::seed_from_u64(0x9A7);
    let mut versions = vec![0u32; LOGICAL_BLOCKS as usize];

    for block in 0..LOGICAL_BLOCKS {
        stack.write(block, &pattern(block, 0)).unwrap();
    }

    for round in 0..400 {
        let block = rng.gen_range(0..LOGICAL_BLOCKS);
        match rng.gen_range(0u32..3) {
            0 => {
                versions[block as usize] += 1;
                stack
                    .write(block, &pattern(block, versions[block as usize]))
                    .unwrap();
            }
            1 => {
                let out = stack.read(block).unwrap();
                assert_eq!(
                    out.data,
                    pattern(block, versions[block as usize]),
                    "round {round}: read of logical block {block} diverged"
                );
            }
            _ => {
                stack.patrol_step().unwrap();
            }
        }
        // The patrol cursor is independent of the gap position, so some
        // steps land exactly on the block being remapped; with no
        // injected faults, consistency must hold at every round.
        if round % 25 == 0 {
            assert!(
                stack.verify_consistent().unwrap(),
                "round {round}: VLEW/RS state inconsistent mid-campaign"
            );
        }
    }

    let wearlevel = stack.layer(LayerId::Wearlevel).expect("wear-level layer");
    assert!(
        wearlevel.gap_moves > 0,
        "the campaign must have exercised remaps"
    );
    let patrol = stack.layer(LayerId::Patrol).expect("patrol layer");
    assert!(patrol.patrol_steps > 0, "patrol must have run");
    assert!(stack.verify_consistent().unwrap());
    for block in 0..LOGICAL_BLOCKS {
        let out = stack.read(block).unwrap();
        assert_eq!(out.data, pattern(block, versions[block as usize]));
    }
}

/// Phase 2: the same interleaving with low-rate bit-error injection.
/// Demand reads must always return mirror-accurate data while faults are
/// outstanding; after a closing patrol pass plus boot scrub the rank
/// must verify consistent again and every block must read back clean.
#[test]
fn patrol_under_wear_leveling_repairs_injected_errors() {
    let mut stack = stack(0xF417);
    let mut rng = StdRng::seed_from_u64(0xF417);
    let mut versions = vec![0u32; LOGICAL_BLOCKS as usize];

    for block in 0..LOGICAL_BLOCKS {
        stack.write(block, &pattern(block, 0)).unwrap();
    }

    let mut injected_total = 0usize;
    for round in 0..400 {
        let block = rng.gen_range(0..LOGICAL_BLOCKS);
        match rng.gen_range(0u32..4) {
            0 => {
                versions[block as usize] += 1;
                stack
                    .write(block, &pattern(block, versions[block as usize]))
                    .unwrap();
            }
            1 => {
                injected_total += stack.inject_bit_errors(5e-6).unwrap();
            }
            2 => {
                let out = stack.read(block).unwrap();
                assert_eq!(
                    out.data,
                    pattern(block, versions[block as usize]),
                    "round {round}: read of logical block {block} diverged"
                );
            }
            _ => {
                stack.patrol_step().unwrap();
            }
        }
    }

    assert!(injected_total > 0, "the campaign must have injected errors");
    assert!(
        stack
            .layer(LayerId::Wearlevel)
            .expect("wear-level layer")
            .gap_moves
            > 0,
        "the campaign must have exercised remaps"
    );

    // Closing sweep: one full patrol pass repairs RS-visible damage, the
    // boot scrub repairs any remaining VLEW-level damage (including bits
    // that landed in parity storage), after which the whole rank must
    // verify and every logical block must read back its last write.
    let target = stack.layer(LayerId::Patrol).map_or(0, |s| s.patrol_passes) + 1;
    while stack.layer(LayerId::Patrol).map_or(0, |s| s.patrol_passes) < target {
        stack.patrol_step().unwrap();
    }
    stack.boot_scrub().unwrap();
    assert!(stack.verify_consistent().unwrap());
    for block in 0..LOGICAL_BLOCKS {
        let out = stack.read(block).unwrap();
        assert_eq!(out.data, pattern(block, versions[block as usize]));
    }
}
