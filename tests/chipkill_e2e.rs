//! End-to-end chip-failure scenarios across the whole failure lifecycle,
//! including the boot/runtime interaction and the baseline comparison.

use pmck::chipkill::{
    BaselineMemory, ChipFailureKind, ChipkillConfig, ChipkillMemory, ReadPath, RestripedMemory,
};
use pmck_rt::rng::StdRng;

fn pattern(a: u64) -> [u8; 64] {
    let mut b = [0u8; 64];
    for (i, x) in b.iter_mut().enumerate() {
        *x = (a as u8).wrapping_mul(131) ^ (i as u8).wrapping_mul(29);
    }
    b
}

fn filled(blocks: u64) -> ChipkillMemory {
    let mut mem = ChipkillMemory::new(blocks, ChipkillConfig::default());
    for a in 0..mem.num_blocks() {
        mem.write_block(a, &pattern(a)).unwrap();
    }
    mem
}

#[test]
fn chip_failure_plus_runtime_bit_errors_both_corrected() {
    // The hard case: a dead chip AND random bit errors in the survivors.
    let mut rng = StdRng::seed_from_u64(21);
    for chip in [0usize, 4, 8] {
        let mut mem = filled(64);
        mem.inject_bit_errors(2e-4, &mut rng);
        mem.fail_chip(chip, ChipFailureKind::RandomGarbage, &mut rng);
        for a in 0..mem.num_blocks() {
            let out = mem.read_block(a).expect("recoverable");
            assert_eq!(out.data, pattern(a), "chip {chip} block {a}");
        }
    }
}

#[test]
fn failure_during_outage_handled_at_boot() {
    // Chip dies while the system is off; boot scrub finds and rebuilds it.
    let mut rng = StdRng::seed_from_u64(23);
    let mut mem = filled(96);
    mem.inject_bit_errors(1e-3, &mut rng);
    mem.fail_chip(6, ChipFailureKind::StuckZero, &mut rng);
    let report = mem.boot_scrub().expect("scrub + rebuild");
    assert_eq!(report.chip_rebuilt, Some(6));
    assert!(mem.verify_consistent());
    for a in 0..mem.num_blocks() {
        let out = mem.read_block(a).unwrap();
        assert_eq!(out.data, pattern(a));
        assert_eq!(out.path, ReadPath::Clean, "rank fully healed");
    }
}

#[test]
fn restripe_then_full_lifecycle() {
    let mut rng = StdRng::seed_from_u64(25);
    let mut mem = filled(64);
    mem.fail_chip(2, ChipFailureKind::RandomGarbage, &mut rng);
    let mut rs = RestripedMemory::from_failed_rank(&mut mem).expect("restripe");
    // Writes and errors after reconfiguration.
    rs.write_block(10, &[0xEE; 64]).unwrap();
    rs.inject_bit_errors(5e-4, &mut rng);
    assert_eq!(rs.read_block(10).unwrap(), [0xEE; 64]);
    for a in 0..rs.num_blocks() {
        if a == 10 {
            continue;
        }
        assert_eq!(rs.read_block(a).unwrap(), pattern(a), "block {a}");
    }
}

#[test]
fn baseline_handles_bit_errors_but_not_chipkill() {
    let mut rng = StdRng::seed_from_u64(27);
    let blocks = 64u64;
    let mut base = BaselineMemory::new(blocks);
    for a in 0..blocks {
        base.write_block(a, &pattern(a)).unwrap();
    }
    // Bit errors at boot RBER: fine.
    base.inject_bit_errors(1e-3, &mut rng);
    for a in 0..blocks {
        assert_eq!(base.read_block(a).unwrap().data, pattern(a));
    }
    // A chip failure: catastrophic.
    base.fail_chip(1, ChipFailureKind::RandomGarbage, &mut rng);
    let lost = (0..blocks)
        .filter(|&a| match base.read_block(a) {
            Ok(out) => out.data != pattern(a),
            Err(_) => true,
        })
        .count();
    assert!(lost as u64 > blocks * 9 / 10, "lost {lost}/{blocks}");
}

#[test]
fn detected_double_failure_is_loud_not_silent() {
    let mut rng = StdRng::seed_from_u64(29);
    let mut mem = filled(32);
    mem.fail_chip(1, ChipFailureKind::RandomGarbage, &mut rng);
    mem.fail_chip(7, ChipFailureKind::RandomGarbage, &mut rng);
    let mut silent_corruption = 0;
    for a in 0..mem.num_blocks() {
        if let Ok(out) = mem.read_block(a) {
            if out.data != pattern(a) {
                silent_corruption += 1;
            }
        }
    }
    assert_eq!(
        silent_corruption, 0,
        "double failures must fail loudly (DUE), never silently corrupt"
    );
}
