//! EUR consistency across crates: the functional engine's C factor and
//! the timing simulator's C factor must agree for equivalent access
//! patterns (they implement the same §V-D registerfile).

use pmck::chipkill::{ChipkillConfig, ChipkillMemory};
use pmck::memsim::{MemConfig, MemRequest, MemoryController, NvramTiming, RankKind, NS};

fn run_mc_pattern(addrs: &[u64]) -> f64 {
    let mut mc = MemoryController::new(MemConfig::paper_hybrid(NvramTiming::reram()));
    let mut t = 0u64;
    for (i, &a) in addrs.iter().enumerate() {
        while mc
            .enqueue(MemRequest::write(i as u64, a, RankKind::Nvram))
            .is_err()
        {
            t += 1_000 * NS;
            mc.advance_to(t);
        }
    }
    while mc.pending() > 0 {
        t += 100_000 * NS;
        mc.advance_to(t);
        let _ = mc.drain_completions();
    }
    mc.finalize_eur();
    mc.eur().c_factor()
}

fn run_engine_pattern(addrs: &[u64]) -> f64 {
    let max = addrs.iter().copied().max().unwrap_or(0) + 1;
    let mut mem = ChipkillMemory::new(max, ChipkillConfig::default());
    for &a in addrs {
        mem.write_block_sum(a, &[0xFF; 64]).expect("in range");
    }
    mem.flush_eur();
    mem.c_factor()
}

#[test]
fn sequential_writes_coalesce_in_both_models() {
    // One full VLEW's worth of sequential blocks.
    let addrs: Vec<u64> = (0..32).collect();
    let mc_c = run_mc_pattern(&addrs);
    let engine_c = run_engine_pattern(&addrs);
    // The engine counts one register per (chip, stripe): 9 chips share
    // the stripe → 9/32. The MC models the rank-level row: 1/32. Both
    // must show strong coalescing (≪ 1).
    assert!(mc_c <= 0.05, "mc C = {mc_c}");
    assert!(engine_c <= 9.0 / 32.0 + 1e-9, "engine C = {engine_c}");
}

#[test]
fn scattered_writes_do_not_coalesce() {
    // One write per stripe/row: nothing to coalesce.
    let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
    let mc_c = run_mc_pattern(&addrs);
    assert!(mc_c >= 0.99, "mc C = {mc_c}");
}

#[test]
fn locality_ordering_is_preserved_across_models() {
    // Three patterns with decreasing locality must order identically in
    // both models.
    let seq: Vec<u64> = (0..64).collect();
    let stride: Vec<u64> = (0..64).map(|i| i * 32).collect(); // one per VLEW
    let scatter: Vec<u64> = (0..64).map(|i| i * 4096).collect();
    let mc = [
        run_mc_pattern(&seq),
        run_mc_pattern(&stride),
        run_mc_pattern(&scatter),
    ];
    assert!(mc[0] < mc[1] && mc[1] <= mc[2], "mc {mc:?}");
}
