//! Determinism/equivalence: a 4-shard [`ShardedService`] is bit-for-bit
//! a deterministic function of its seed and request stream, independent
//! of thread scheduling.
//!
//! For several seeds, the same benign campaign (writes, reads, scrubs,
//! low-rate injection, patrol steps, verifies) is driven twice:
//!
//! 1. through the sharded service in batches, and
//! 2. through four standalone [`Stack`]s — one per shard, seeded with
//!    the same derived stream seeds ([`stream_seed`]) — replaying each
//!    shard's share of the stream sequentially in batch order.
//!
//! The two executions must agree on every addressed response, on every
//! merged broadcast response, on the summed [`CoreStats`], and on the
//! final contents of every block.

use pmck::chipkill::{
    ChipkillConfig, CoreStats, PmemConfig, Request, Response, Stack, StackBuilder,
};
use pmck::rt::rng::{stream_seed, Rng, StdRng};
use pmck::service::ShardedService;

const SHARDS: usize = 4;
const BLOCKS_PER_SHARD: u64 = 32;
const ROUNDS: usize = 60;
const BATCH: usize = 24;

fn build_stack(blocks: u64, seed: u64) -> Stack {
    StackBuilder::proposal(blocks, ChipkillConfig::default())
        .patrolled(8, 0)
        .wear_levelled(4)
        .seed(seed)
        .build()
}

/// One benign batch of requests over the interleaved address space.
fn gen_batch(rng: &mut StdRng, total: u64, round: usize) -> Vec<Request> {
    let mut batch = Vec::with_capacity(BATCH + 1);
    for _ in 0..BATCH {
        let addr = rng.gen_range(0..total);
        let req = match rng.gen_range(0u32..8) {
            0..=2 => {
                let mut data = [0u8; 64];
                rng.fill_bytes(&mut data[..]);
                Request::Write { addr, data }
            }
            3..=5 => Request::Read(addr),
            6 => Request::Scrub(addr),
            _ => Request::PatrolStep,
        };
        batch.push(req);
    }
    // A sprinkle of whole-device traffic: low-rate injection (well
    // inside the RS threshold) and a consistency check.
    if round % 10 == 3 {
        batch.push(Request::InjectRber(2e-6));
    }
    if round % 10 == 7 {
        batch.push(Request::Verify);
    }
    batch
}

/// Replays `batch` against the standalone per-shard stacks in batch
/// order, producing the response the service should give each request:
/// addressed requests run on the owning shard; broadcasts run on every
/// shard in index order with their responses merged the way the service
/// merges them.
fn replay_batch(
    stacks: &mut [Stack],
    batch: &[Request],
) -> Vec<Result<Response, pmck::chipkill::CoreError>> {
    let n = stacks.len() as u64;
    batch
        .iter()
        .map(|req| match req.addr() {
            Some(addr) => {
                let shard = (addr % n) as usize;
                stacks[shard].submit(&req.with_addr(addr / n))
            }
            None => {
                let mut merged = None;
                for stack in stacks.iter_mut() {
                    let res = stack.submit(req);
                    merged = Some(match (merged, res) {
                        (None, r) => r,
                        (Some(Err(e)), _) => Err(e),
                        (Some(Ok(_)), Err(e)) => Err(e),
                        (Some(Ok(a)), Ok(b)) => Ok(merge(a, b)),
                    });
                }
                merged.expect("at least one shard")
            }
        })
        .collect()
}

/// The service's broadcast merge, restated for the benign request mix
/// this campaign uses.
fn merge(a: Response, b: Response) -> Response {
    match (a, b) {
        (Response::Patrolled(mut x), Response::Patrolled(y)) => {
            x.blocks_scrubbed += y.blocks_scrubbed;
            x.blocks_skipped += y.blocks_skipped;
            x.completed_pass &= y.completed_pass;
            Response::Patrolled(x)
        }
        (Response::Injected { bits: x }, Response::Injected { bits: y }) => {
            Response::Injected { bits: x + y }
        }
        (Response::Verified(x), Response::Verified(y)) => Response::Verified(x & y),
        (Response::Flushed { lines: x }, Response::Flushed { lines: y }) => {
            Response::Flushed { lines: x + y }
        }
        (Response::PowerLost { lost_lines: x }, Response::PowerLost { lost_lines: y }) => {
            Response::PowerLost { lost_lines: x + y }
        }
        (Response::Recovered(mut x), Response::Recovered(y)) => {
            x.merge(&y);
            Response::Recovered(x)
        }
        (first, _) => first,
    }
}

#[test]
fn four_shard_service_matches_sequential_replay() {
    for seed in [11u64, 42, 9001] {
        // The service and the standalone stacks derive per-shard seeds
        // the same way, so shard s behaves identically in both worlds.
        let mut svc = ShardedService::new(SHARDS, seed, |_, shard_seed| {
            build_stack(BLOCKS_PER_SHARD, shard_seed)
        });
        let mut stacks: Vec<Stack> = (0..SHARDS)
            .map(|s| build_stack(BLOCKS_PER_SHARD, stream_seed(seed, s as u64)))
            .collect();
        let total = svc.num_blocks();
        assert_eq!(total, SHARDS as u64 * BLOCKS_PER_SHARD);

        // The campaign stream itself comes from one workload RNG and is
        // fed verbatim to both executions.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE0_0111);
        for round in 0..ROUNDS {
            let batch = gen_batch(&mut rng, total, round);
            let got = svc.submit_batch(&batch);
            let want = replay_batch(&mut stacks, &batch);
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(
                    g, w,
                    "seed {seed} round {round} request {i}: {:?}",
                    batch[i]
                );
            }
        }

        // Summed engine counters agree exactly...
        let svc_stats = svc.core_stats().expect("chipkill base");
        let mut seq_stats = CoreStats::default();
        for stack in &stacks {
            seq_stats.merge(&stack.core_stats().expect("chipkill base"));
        }
        assert_eq!(
            svc_stats, seq_stats,
            "seed {seed}: summed CoreStats diverged"
        );

        // ...and so does every block's final content (compared after
        // the stats, since reads bump counters on both sides alike).
        for (shard, seq_stack) in stacks.iter_mut().enumerate() {
            for local in 0..seq_stack.num_blocks() {
                let svc_data = svc.with_shard(shard, |stack| {
                    let mut buf = [0u8; 64];
                    stack.read_into(local, &mut buf).map(|_| buf)
                });
                let mut buf = [0u8; 64];
                let seq_data = seq_stack.read_into(local, &mut buf).map(|_| buf);
                assert_eq!(
                    svc_data, seq_data,
                    "seed {seed}: shard {shard} block {local} contents diverged"
                );
            }
        }
        svc.shutdown();
    }
}

/// The persistent variant: a 4-shard service over `StackBuilder::persistent`
/// stacks, with `Flush`/`PowerCut`/`Recover` broadcasts mixed into the
/// campaign, stays bit-identical to sequential per-shard replay. Power
/// cuts roll unflushed writes back to the last fence on both sides, so
/// the merged broadcast responses, the summed counters, and the final
/// block contents must all agree exactly.
#[test]
fn persistent_shard_broadcasts_match_sequential_replay() {
    for seed in [5u64, 77] {
        let build = |blocks: u64, s: u64| -> Stack {
            StackBuilder::proposal(blocks, ChipkillConfig::default())
                .persistent(PmemConfig::default())
                .seed(s)
                .build()
        };
        let mut svc = ShardedService::new(SHARDS, seed, |_, s| build(BLOCKS_PER_SHARD, s));
        let mut stacks: Vec<Stack> = (0..SHARDS)
            .map(|s| build(BLOCKS_PER_SHARD, stream_seed(seed, s as u64)))
            .collect();
        let total = svc.num_blocks();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1_0E5);
        for round in 0..30 {
            let mut batch = Vec::with_capacity(BATCH + 2);
            for _ in 0..BATCH {
                let addr = rng.gen_range(0..total);
                batch.push(match rng.gen_range(0u32..6) {
                    0..=2 => {
                        let mut data = [0u8; 64];
                        rng.fill_bytes(&mut data[..]);
                        Request::Write { addr, data }
                    }
                    3..=4 => Request::Read(addr),
                    _ => Request::Scrub(addr),
                });
            }
            if round % 3 == 1 {
                batch.push(Request::Flush);
            }
            if round % 7 == 5 {
                // Cut power and immediately recover: writes since the
                // last flush are rolled back identically on both sides.
                batch.push(Request::PowerCut);
                batch.push(Request::Recover);
            }
            let got = svc.submit_batch(&batch);
            let want = replay_batch(&mut stacks, &batch);
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(
                    g, w,
                    "seed {seed} round {round} request {i}: {:?}",
                    batch[i]
                );
            }
        }

        let svc_stats = svc.core_stats().expect("chipkill base");
        let mut seq_stats = CoreStats::default();
        for stack in &stacks {
            seq_stats.merge(&stack.core_stats().expect("chipkill base"));
        }
        assert_eq!(
            svc_stats, seq_stats,
            "seed {seed}: summed CoreStats diverged"
        );

        for (shard, seq_stack) in stacks.iter_mut().enumerate() {
            for local in 0..seq_stack.num_blocks() {
                let svc_data = svc.with_shard(shard, |stack| {
                    let mut buf = [0u8; 64];
                    stack.read_into(local, &mut buf).map(|_| buf)
                });
                let mut buf = [0u8; 64];
                let seq_data = seq_stack.read_into(local, &mut buf).map(|_| buf);
                assert_eq!(
                    svc_data, seq_data,
                    "seed {seed}: shard {shard} block {local} contents diverged"
                );
            }
        }
        svc.shutdown();
    }
}

/// The streaming plane under backpressure: an 8-shard service driven
/// through [`ServiceClient`] tickets — deliberately overrunning the
/// ticket window every round so admission control must push back — stays
/// bit-identical to sequential per-shard replay.
///
/// Requests are streamed with `try_submit`; every
/// [`ServiceFailure::Backpressure`] rejection redeems the oldest
/// outstanding ticket and retries, so the window recycles under
/// pressure exactly as a real producer would drive it. Per-shard ring
/// FIFO plus shard-index-ordered broadcast merging is what makes this
/// equal to the batched plane — this test is the proof.
#[test]
fn eight_shard_streaming_under_backpressure_matches_sequential_replay() {
    use pmck::chipkill::ServiceFailure;
    use std::collections::VecDeque;

    const STREAM_SHARDS: usize = 8;
    const STREAM_ROUNDS: usize = 12;
    // More in-flight candidates than the ticket window, so every round
    // is guaranteed to hit window backpressure at least once.
    const STREAM_BATCH: usize = 300;

    for seed in [3u64, 19, 4242] {
        let mut svc = ShardedService::with_clients(STREAM_SHARDS, 1, seed, |_, shard_seed| {
            build_stack(BLOCKS_PER_SHARD, shard_seed)
        });
        let mut client = svc.take_client().expect("one spare lane");
        let mut stacks: Vec<Stack> = (0..STREAM_SHARDS)
            .map(|s| build_stack(BLOCKS_PER_SHARD, stream_seed(seed, s as u64)))
            .collect();
        let total = svc.num_blocks();
        let window = client.window();
        assert!(STREAM_BATCH > window, "batch must overrun the window");

        let mut rng = StdRng::seed_from_u64(seed ^ 0x57_12EA);
        let mut backpressured = 0u64;
        for round in 0..STREAM_ROUNDS {
            let mut batch = Vec::with_capacity(STREAM_BATCH);
            for i in 0..STREAM_BATCH {
                // Every third round skews hard onto one shard so the
                // per-shard submission ring (much smaller than the
                // window) fills too, not just the ticket window.
                let addr = if round % 3 == 2 {
                    let hot = (round / 3) % STREAM_SHARDS;
                    let local = rng.gen_range(0..BLOCKS_PER_SHARD);
                    local * STREAM_SHARDS as u64 + hot as u64
                } else {
                    rng.gen_range(0..total)
                };
                let req = match rng.gen_range(0u32..8) {
                    0..=2 => {
                        let mut data = [0u8; 64];
                        rng.fill_bytes(&mut data[..]);
                        Request::Write { addr, data }
                    }
                    3..=5 => Request::Read(addr),
                    6 => Request::Scrub(addr),
                    _ => Request::PatrolStep,
                };
                batch.push(req);
                if i == STREAM_BATCH / 2 && round % 4 == 1 {
                    batch.push(Request::Verify);
                }
            }

            // Stream the whole batch through the ticket API, redeeming
            // the oldest ticket whenever admission control pushes back.
            let mut out = vec![None; batch.len()];
            let mut fifo: VecDeque<(usize, pmck::service::Ticket)> = VecDeque::new();
            for (i, req) in batch.iter().enumerate() {
                loop {
                    match client.try_submit(req) {
                        Ok(t) => {
                            fifo.push_back((i, t));
                            break;
                        }
                        Err(pmck::chipkill::CoreError::Service(se))
                            if se.kind() == ServiceFailure::Backpressure =>
                        {
                            backpressured += 1;
                            let (j, t) = fifo.pop_front().expect("backpressure with no tickets");
                            out[j] = Some(client.wait_response(t));
                        }
                        Err(other) => panic!("seed {seed} round {round}: {other:?}"),
                    }
                }
            }
            for (j, t) in fifo.drain(..) {
                out[j] = Some(client.wait_response(t));
            }
            assert_eq!(client.in_flight(), 0);

            let want = replay_batch(&mut stacks, &batch);
            for (i, (g, w)) in out.iter().zip(want.iter()).enumerate() {
                let g = g.as_ref().expect("every request resolved");
                assert_eq!(
                    g, w,
                    "seed {seed} round {round} request {i}: {:?}",
                    batch[i]
                );
            }
        }
        assert!(
            backpressured > 0,
            "seed {seed}: the campaign never hit backpressure — the test \
             no longer exercises admission control"
        );

        let svc_stats = svc.core_stats().expect("chipkill base");
        let mut seq_stats = CoreStats::default();
        for stack in &stacks {
            seq_stats.merge(&stack.core_stats().expect("chipkill base"));
        }
        assert_eq!(
            svc_stats, seq_stats,
            "seed {seed}: summed CoreStats diverged"
        );

        for (shard, seq_stack) in stacks.iter_mut().enumerate() {
            for local in 0..seq_stack.num_blocks() {
                let svc_data = svc.with_shard(shard, |stack| {
                    let mut buf = [0u8; 64];
                    stack.read_into(local, &mut buf).map(|_| buf)
                });
                let mut buf = [0u8; 64];
                let seq_data = seq_stack.read_into(local, &mut buf).map(|_| buf);
                assert_eq!(
                    svc_data, seq_data,
                    "seed {seed}: shard {shard} block {local} contents diverged"
                );
            }
        }
        svc.shutdown();
    }
}
