//! Engine-level chipkill-erasure properties, corpus-seeded.
//!
//! The RS tier's eight check symbols are fully consumed as erasures once
//! a chip dies, so a *second* chip carrying even one scattered symbol
//! error is beyond the RS word's reach. Reconstruction still succeeds
//! because the erasure path decodes every survivor's VLEW before
//! rebuilding the dead chip — the §V-C layering this property pins. The
//! checked-in corpus seeds it with a crafted dead-chip-plus-stray-bit
//! case (`tests/corpus/engine-erasure-scattered-crafted.json`), replayed
//! before the generated ones.

use pmck::chipkill::{ChipkillConfig, ChipkillMemory, ReadPath};
use pmck::rt::rng::{Rng, StdRng};
use pmck_harness::{ChipkillErasureCase, Runner};

const BLOCKS: u64 = 32;
const TOTAL_CHIPS: usize = 9;
const CHIP_BYTES: usize = 8;

fn pattern(block: u64) -> [u8; 64] {
    let mut data = [0u8; 64];
    for (i, byte) in data.iter_mut().enumerate() {
        *byte = (block as u8).wrapping_mul(67).wrapping_add(i as u8 ^ 0x2D);
    }
    data
}

fn check(case: &ChipkillErasureCase) -> Result<(), String> {
    let mut mem = ChipkillMemory::new(BLOCKS, ChipkillConfig::default());
    for block in 0..mem.num_blocks() {
        mem.write_block(block, &pattern(block))
            .map_err(|e| format!("fill failed: {e}"))?;
    }
    let failed_chip = case.failed_chip % TOTAL_CHIPS;
    let mut rng = StdRng::seed_from_u64(0xE7A5);
    mem.fail_chip(
        failed_chip,
        pmck::chipkill::ChipFailureKind::StuckOne,
        &mut rng,
    );
    let error_block = case.error_block % mem.num_blocks();
    mem.corrupt_chip_byte(
        case.error_chip % TOTAL_CHIPS,
        error_block,
        case.error_byte % CHIP_BYTES,
        case.error_mask,
    );

    // The block carrying both the dead chip and the scattered error is
    // the hard one: read it first so detection happens there.
    let out = mem
        .read_block(error_block)
        .map_err(|e| format!("read of the doubly-damaged block failed: {e}"))?;
    if out.data != pattern(error_block) {
        return Err(format!(
            "block {error_block} reconstructed wrong data via {:?}",
            out.path
        ));
    }
    if !matches!(
        out.path,
        ReadPath::VlewFallback { .. } | ReadPath::ChipkillErasure { .. }
    ) {
        return Err(format!(
            "a dead chip cannot be served by {:?}; the RS tier has no margin left",
            out.path
        ));
    }
    if mem.detected_failed_chip() != Some(failed_chip) {
        return Err(format!(
            "decode paths detected {:?}, expected chip {failed_chip}",
            mem.detected_failed_chip()
        ));
    }
    // Every other block must reconstruct too.
    for block in 0..mem.num_blocks() {
        let out = mem
            .read_block(block)
            .map_err(|e| format!("block {block} failed after detection: {e}"))?;
        if out.data != pattern(block) {
            return Err(format!("block {block} diverged after detection"));
        }
    }
    Ok(())
}

#[test]
fn dead_chip_plus_scattered_bit_reconstructs() {
    let report = Runner::new("engine:erasure:scattered-bit")
        .seed(0xC41F)
        .cases(24)
        .run(
            |rng| {
                let failed_chip = rng.gen_range(0..TOTAL_CHIPS as u64) as usize;
                let error_chip = {
                    let pick = rng.gen_range(0..(TOTAL_CHIPS - 1) as u64) as usize;
                    if pick >= failed_chip {
                        pick + 1
                    } else {
                        pick
                    }
                };
                ChipkillErasureCase {
                    failed_chip,
                    error_chip,
                    error_block: rng.gen_range(0..BLOCKS),
                    error_byte: rng.gen_range(0..CHIP_BYTES as u64) as usize,
                    error_mask: (rng.gen_range(0..255u64) + 1) as u8,
                }
            },
            check,
        );
    assert!(
        report.corpus_replayed >= 1,
        "the crafted corpus case must be present and replayed"
    );
}
