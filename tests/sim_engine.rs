//! Timing-loop ↔ functional-stack coupling: the simulator's VLEW-fallback
//! latency events must come from real decode outcomes of the composed
//! chipkill stack, not from an RNG draw.

use pmck::sim::{NvramKind, Scheme, SimConfig, Simulator};
use pmck::workloads::WorkloadSpec;

fn tiny(scheme: Scheme) -> SimConfig {
    SimConfig {
        warmup_ops: 4_000,
        measure_ops: 10_000,
        ..SimConfig::quick(NvramKind::ReRam, scheme)
    }
}

/// The acceptance pin: every fallback force-fetch the timing loop charged
/// corresponds to exactly one demand read the functional engine served
/// through its VLEW fallback — the two counters agree for the same seed.
#[test]
fn fallback_events_equal_engine_fallback_counts() {
    let spec = WorkloadSpec::by_name("redis").unwrap();
    // Raise the injected RBER well past the §V-C design point so a short
    // run still produces a healthy number of fallbacks.
    let cfg = SimConfig {
        engine_rber: 1.5e-3,
        ..tiny(Scheme::Proposal { c_factor: 0.3 })
    };
    let r = Simulator::run_workload(spec, cfg, 21);
    let engine = r.engine.expect("proposal runs couple the engine");
    assert!(
        r.vlew_fallbacks > 0,
        "RBER 1.5e-3 must produce fallbacks in {} engine reads",
        engine.reads
    );
    assert_eq!(
        r.vlew_fallbacks, engine.fallbacks,
        "timing-loop fallback events must equal the engine's count"
    );
    // The per-layer breakdown exposes the same stack the coupling drove.
    let chipkill = r
        .layers
        .iter()
        .find(|(label, _)| label == "chipkill")
        .map(|(_, stats)| *stats)
        .expect("chipkill layer in the breakdown");
    assert_eq!(chipkill.vlew_fallbacks, engine.fallbacks);
    assert!(chipkill.reads >= engine.reads - chipkill.scrubs);
    let patrol = r
        .layers
        .iter()
        .find(|(label, _)| label == "patrol")
        .map(|(_, stats)| *stats)
        .expect("patrol layer in the breakdown");
    assert!(
        patrol.patrol_steps > 0,
        "patrol must run between injections"
    );
}

#[test]
fn coupled_runs_are_deterministic() {
    let spec = WorkloadSpec::by_name("btree").unwrap();
    let cfg = SimConfig {
        engine_rber: 1.5e-3,
        ..tiny(Scheme::Proposal { c_factor: 0.4 })
    };
    let a = Simulator::run_workload(spec, cfg, 5);
    let b = Simulator::run_workload(spec, cfg, 5);
    assert_eq!(a, b, "same seed → identical engine and layer counters");
}

#[test]
fn baseline_runs_have_no_engine_coupling() {
    let spec = WorkloadSpec::by_name("echo").unwrap();
    let r = Simulator::run_workload(spec, tiny(Scheme::Baseline), 13);
    assert_eq!(r.vlew_fallbacks, 0);
    assert!(r.engine.is_none());
    assert!(r.layers.is_empty());
}

/// At the paper's design point (RBER 2·10⁻⁴, one patrol pass per
/// injection interval) the emergent fallback rate stays near §V-C's
/// ~0.02% — a short run cannot pin the rate tightly, but it must stay
/// well under one in a thousand reads.
#[test]
fn design_point_fallback_rate_is_small() {
    let spec = WorkloadSpec::by_name("hashmap").unwrap();
    let r = Simulator::run_workload(spec, tiny(Scheme::Proposal { c_factor: 0.5 }), 17);
    let engine = r.engine.expect("proposal runs couple the engine");
    assert!(engine.reads > 0, "the workload must drive PM demand reads");
    assert_eq!(r.vlew_fallbacks, engine.fallbacks);
    assert!(
        engine.fallback_fraction() < 1e-3,
        "design-point fallback fraction {} too high",
        engine.fallback_fraction()
    );
}
