//! Cross-crate layout consistency: the functional engine, the analytic
//! models, and the codecs must agree on every geometry number the paper
//! quotes (Figure 6, §V-A).

use pmck::analysis::storage::{bch_code_bits, min_bch_t, vlew_plus_parity_cost};
use pmck::analysis::{BOOT_RBER, UE_TARGET};
use pmck::bch::BchCode;
use pmck::chipkill::ChipkillLayout;
use pmck::rs::RsCode;

#[test]
fn engine_layout_matches_analytic_model() {
    let layout = ChipkillLayout::default();
    let (t, analytic_cost) = vlew_plus_parity_cost(
        layout.vlew_data_bytes,
        BOOT_RBER,
        UE_TARGET,
        layout.data_chips,
    )
    .expect("feasible");
    // The analytic minimum t is exactly the strength the engine deploys.
    assert_eq!(t, BchCode::vlew().t());
    // And the storage costs agree to within rounding.
    assert!((analytic_cost - layout.total_storage_cost()).abs() < 1e-3);
}

#[test]
fn vlew_code_bytes_match_bch_parity_bits() {
    let layout = ChipkillLayout::default();
    let code = BchCode::vlew();
    assert_eq!(code.parity_bits().div_ceil(8), layout.vlew_code_bytes);
    assert_eq!(code.data_bits() / 8, layout.vlew_data_bytes);
    assert_eq!(
        bch_code_bits(code.t(), code.data_bits()),
        code.parity_bits(),
        "the paper's t(⌊log2 k⌋+1) formula is exact for this code"
    );
}

#[test]
fn rs_geometry_matches_block_layout() {
    let layout = ChipkillLayout::default();
    let code = RsCode::per_block();
    assert_eq!(code.data_symbols(), layout.block_bytes);
    assert_eq!(code.check_symbols(), layout.rs_check_bytes);
    assert_eq!(code.len(), layout.rs_codeword_bytes());
    // d−1 erasures exactly cover one chip's contribution.
    assert_eq!(code.max_erasures(), layout.chip_bytes);
}

#[test]
fn minimum_strengths_reproduce_section_3_and_5() {
    // §III-A: 14-bit EC for a 64 B block at 1e-3.
    assert_eq!(min_bch_t(512, BOOT_RBER, UE_TARGET, 64), Some(14));
    // §V-A: 22-bit EC for a 256 B VLEW at 1e-3.
    assert_eq!(min_bch_t(2048, BOOT_RBER, UE_TARGET, 64), Some(22));
}

#[test]
fn proposal_costs_no_more_than_baseline() {
    let layout = ChipkillLayout::default();
    let baseline = 140.0 / 512.0; // §III-A per-block 14-EC BCH
    assert!(
        layout.total_storage_cost() <= baseline + 1e-9,
        "chip failure protection must come at no additional storage cost"
    );
}
